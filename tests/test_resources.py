"""Unit tests for the resource-governance layer (repro.resources).

Covers the governor primitives in isolation — deadlines, budgets, run
contexts, trivalent verdicts, the sweep journal — plus the wiring of the
global governor counters into the hom engine's stats snapshot.
"""

import json
import os
import threading
import time

import pytest

from repro.exceptions import (
    BudgetExceededError,
    DeadlineExceededError,
    OperationCancelledError,
    ResourceError,
    ValidationError,
)
from repro.resources import (
    GOVERNOR,
    JOURNAL_VERSION,
    Budget,
    Deadline,
    PASSIVE_CONTEXT,
    RunContext,
    SweepJournal,
    Trivalent,
    Verdict,
    current_context,
    governed,
)


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_not_expired_initially(self):
        d = Deadline.after(60.0)
        assert not d.expired()
        assert 0 <= d.elapsed() < 1.0
        assert 59.0 < d.remaining() <= 60.0
        assert d.seconds == 60.0

    def test_zero_deadline_expires_immediately(self):
        d = Deadline(0.0)
        assert d.expired()
        assert d.remaining() <= 0

    def test_expires_after_sleeping_past_it(self):
        d = Deadline.after(0.01)
        time.sleep(0.02)
        assert d.expired()
        assert d.elapsed() >= 0.01

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValidationError):
            Deadline(-1.0)

    def test_repr_mentions_seconds(self):
        assert "60.0s" in repr(Deadline(60.0))


# ----------------------------------------------------------------------
# Budget
# ----------------------------------------------------------------------
class TestBudget:
    def test_charges_accumulate(self):
        b = Budget(10, unit="nodes")
        b.charge(3)
        b.charge(4)
        assert b.spent == 7
        assert b.remaining() == 3
        assert not b.exhausted()

    def test_trip_raises_structured_error(self):
        b = Budget(5, unit="nodes")
        b.charge(5, site="test.site")
        assert b.exhausted()
        with pytest.raises(BudgetExceededError) as excinfo:
            b.charge(1, site="test.site")
        err = excinfo.value
        assert err.budget == 5
        assert err.spent == 6
        assert err.site == "test.site"
        assert err.consumed["unit"] == "nodes"
        assert isinstance(err, ResourceError)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValidationError):
            Budget(-1)

    def test_zero_budget_trips_on_first_charge(self):
        with pytest.raises(BudgetExceededError):
            Budget(0).charge()


# ----------------------------------------------------------------------
# RunContext
# ----------------------------------------------------------------------
class TestRunContext:
    def test_passive_checkpoint_is_free(self):
        ctx = RunContext()
        for _ in range(100):
            ctx.checkpoint("test")
        assert ctx.checkpoints == 100

    def test_deadline_trip(self):
        ctx = RunContext(deadline=0.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            ctx.checkpoint("test.site")
        err = excinfo.value
        assert err.deadline_s == 0.0
        assert err.elapsed_s >= 0.0
        assert err.site == "test.site"
        assert "checkpoints" in err.consumed

    def test_budget_trip_through_checkpoint(self):
        ctx = RunContext(budget=3)
        ctx.checkpoint()
        ctx.checkpoint()
        ctx.checkpoint()
        with pytest.raises(BudgetExceededError):
            ctx.checkpoint()

    def test_checkpoint_cost_multiplier(self):
        ctx = RunContext(budget=10)
        with pytest.raises(BudgetExceededError):
            ctx.checkpoint("bulk", cost=11)

    def test_cancellation(self):
        ctx = RunContext()
        assert not ctx.cancelled
        ctx.cancel()
        assert ctx.cancelled
        with pytest.raises(OperationCancelledError):
            ctx.checkpoint("after.cancel")

    def test_cancellation_from_another_thread(self):
        ctx = RunContext()
        cancelled = threading.Event()

        def canceller():
            ctx.cancel()
            cancelled.set()

        t = threading.Thread(target=canceller)
        t.start()
        t.join()
        assert cancelled.is_set()
        with pytest.raises(OperationCancelledError):
            ctx.checkpoint()

    def test_injector_runs_before_budget_and_deadline(self):
        class Boom(ResourceError):
            pass

        def injector(ctx, site):
            raise Boom("injected", site=site)

        ctx = RunContext(deadline=0.0, budget=0, injector=injector)
        with pytest.raises(Boom):
            ctx.checkpoint("x")

    def test_ambient_installation_and_nesting(self):
        assert current_context() is PASSIVE_CONTEXT
        outer = RunContext(budget=100)
        inner = RunContext(budget=5)
        with outer:
            assert current_context() is outer
            with inner:
                assert current_context() is inner
            assert current_context() is outer
        assert current_context() is PASSIVE_CONTEXT

    def test_governed_helper(self):
        with governed(deadline=60.0, budget=10) as ctx:
            assert current_context() is ctx
            assert ctx.deadline is not None
            assert ctx.budget is not None
        assert current_context() is PASSIVE_CONTEXT

    def test_consumption_record(self):
        ctx = RunContext(deadline=60.0, budget=10)
        ctx.checkpoint()
        ctx.checkpoint()
        record = ctx.consumption()
        assert record["checkpoints"] == 2
        assert record["budget"] == 10
        assert record["spent"] == 2
        assert record["deadline_s"] == 60.0
        json.dumps(record)  # must be serializable


# ----------------------------------------------------------------------
# Verdict
# ----------------------------------------------------------------------
class TestVerdict:
    def test_true_false_properties(self):
        t = Verdict.true(reason="witness found", witness={"a": "b"})
        f = Verdict.false(reason="no mapping")
        assert t.is_true and not t.is_false and not t.is_unknown
        assert f.is_false and not f.is_true and not f.is_unknown
        assert t.definite and f.definite
        assert bool(t) is True
        assert bool(f) is False
        assert t.witness == {"a": "b"}

    def test_unknown_refuses_bool_coercion(self):
        u = Verdict.unknown(reason="deadline tripped")
        assert u.is_unknown and not u.definite
        with pytest.raises(ValidationError):
            bool(u)
        with pytest.raises(ValidationError):
            if u:  # pragma: no cover - the coercion itself raises
                pass

    def test_from_error_carries_consumption(self):
        err = BudgetExceededError(
            budget=5, spent=6, site="s", consumed={"unit": "nodes"}
        )
        v = Verdict.from_error(err)
        assert v.is_unknown
        assert "BudgetExceededError" in v.reason
        assert v.consumed.get("unit") == "nodes"

    def test_snapshot_is_json_serializable(self):
        v = Verdict.true(reason="ok", witness={"x": 1}, consumed={"n": 2})
        snap = v.snapshot()
        assert snap["value"] == "TRUE"
        assert snap["has_witness"] is True
        json.dumps(snap)

    def test_trivalent_values(self):
        assert {t.value for t in Trivalent} == {"TRUE", "FALSE", "UNKNOWN"}


# ----------------------------------------------------------------------
# SweepJournal
# ----------------------------------------------------------------------
class TestSweepJournal:
    def test_record_and_reload(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal(path)
        assert len(journal) == 0
        journal.record("a", {"width": 3})
        journal.record("b", {"width": 4})
        reloaded = SweepJournal(path)
        assert len(reloaded) == 2
        assert reloaded.is_done("a")
        assert "b" in reloaded
        assert reloaded.result("a") == {"width": 3}
        assert set(reloaded.keys()) == {"a", "b"}

    def test_rerecord_last_wins(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal(path)
        journal.record("a", 1)
        journal.record("a", 2)
        assert journal.result("a") == 2
        assert SweepJournal(path).result("a") == 2

    def test_corrupt_trailing_line_ignored(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal(path)
        journal.record("a", 1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "b", "result":')  # hard-kill torn write
        reloaded = SweepJournal(path)
        assert reloaded.is_done("a")
        assert not reloaded.is_done("b")

    def test_reset_deletes_file(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal(path)
        journal.record("a", 1)
        journal.reset()
        assert len(journal) == 0
        assert not (tmp_path / "sweep.jsonl").exists()
        assert len(SweepJournal(path)) == 0


class TestSweepJournalCrashSafety:
    """Journal format v2: checksums, torn tails, recovery, compaction."""

    def test_lines_are_checksummed_v2(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        SweepJournal(path).record("a", {"width": 3})
        with open(path, encoding="utf-8") as handle:
            entry = json.loads(handle.readline())
        assert entry["v"] == JOURNAL_VERSION
        assert len(entry["crc"]) == 8
        assert entry["entry"] == {"key": "a", "result": {"width": 3}}

    def test_legacy_v1_lines_load_and_are_counted(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"key": "old", "result": 7}\n')
        journal = SweepJournal(path)
        journal.record("new", 8)
        assert journal.result("old") == 7
        assert journal.result("new") == 8
        stats = journal.journal_stats()
        assert stats["legacy"] == 1
        assert stats["corrupt"] == 0
        assert stats["integrity"] == "ok"  # old format is not damage

    def test_garbled_interior_line_is_counted_not_silently_dropped(
        self, tmp_path
    ):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal(path)
        journal.record("a", 1)
        journal.record("b", 2)
        journal.record("c", 3)
        with open(path, "r+", encoding="utf-8") as handle:
            lines = handle.readlines()
            lines[1] = lines[1].replace('"', "'", 2)  # bit rot
            handle.seek(0)
            handle.writelines(lines)
            handle.truncate()
        reloaded = SweepJournal(path)
        assert reloaded.is_done("a") and reloaded.is_done("c")
        assert not reloaded.is_done("b")
        stats = reloaded.journal_stats()
        assert stats["corrupt"] == 1
        assert stats["integrity"] == "corrupt"

    def test_checksum_mismatch_rejects_a_tampered_record(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal(path)
        journal.record("a", 1)
        with open(path, encoding="utf-8") as handle:
            entry = json.loads(handle.readline())
        entry["entry"]["result"] = 999  # tamper without refreshing crc
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
        reloaded = SweepJournal(path)
        assert not reloaded.is_done("a")
        assert reloaded.journal_stats()["corrupt"] == 1

    def test_torn_tail_is_truncated_off_the_file(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal(path)
        journal.record("a", 1)
        journal.record("b", 2)
        intact_size = os.path.getsize(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 2, "crc": "0000')  # SIGKILL mid-write
        reloaded = SweepJournal(path)
        assert reloaded.is_done("a") and reloaded.is_done("b")
        stats = reloaded.journal_stats()
        assert stats["torn_tail"] == 1
        assert stats["integrity"] == "recovered"
        # the file itself was repaired, not just skipped-over
        assert os.path.getsize(path) == intact_size
        assert SweepJournal(path).journal_stats()["integrity"] == "ok"

    def test_compaction_is_atomic_and_purges_damage(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal(path)
        journal.record("a", 1)
        journal.record("a", 2)  # supersedes
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "legacy-k", "result": 5}\n')  # v1
            handle.write("not json at all\n")  # damage
        journal = SweepJournal(path)
        assert journal.needs_compaction()
        stats = journal.compact()
        assert stats["integrity"] == "ok"
        assert stats["legacy"] == stats["corrupt"] == 0
        assert stats["superseded"] == 0
        assert stats["compactions"] == 1
        assert not os.path.exists(path + ".tmp")
        reloaded = SweepJournal(path)
        assert reloaded.result("a") == 2  # last record won
        assert reloaded.result("legacy-k") == 5  # upgraded to v2
        assert reloaded.journal_stats()["lines"] == 2
        assert not reloaded.needs_compaction()

    def test_journal_stats_shape_is_json_serializable(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal(path)
        journal.record("a", 1)
        stats = journal.journal_stats()
        json.dumps(stats)
        assert set(stats) == {
            "path", "version", "records", "lines", "legacy", "corrupt",
            "superseded", "torn_tail", "compactions", "integrity",
        }


# ----------------------------------------------------------------------
# Governor counters and the engine snapshot
# ----------------------------------------------------------------------
class TestGovernorStats:
    def test_checkpoints_are_counted_globally(self):
        before = GOVERNOR.checkpoints
        RunContext().checkpoint()
        assert GOVERNOR.checkpoints == before + 1

    def test_trip_counters(self):
        before_deadline = GOVERNOR.deadline_hits
        before_budget = GOVERNOR.budget_trips
        before_cancel = GOVERNOR.cancellations
        with pytest.raises(DeadlineExceededError):
            RunContext(deadline=0.0).checkpoint()
        with pytest.raises(BudgetExceededError):
            RunContext(budget=0).checkpoint()
        ctx = RunContext()
        ctx.cancel()
        with pytest.raises(OperationCancelledError):
            ctx.checkpoint()
        assert GOVERNOR.deadline_hits == before_deadline + 1
        assert GOVERNOR.budget_trips == before_budget + 1
        assert GOVERNOR.cancellations == before_cancel + 1

    def test_snapshot_and_reset(self):
        RunContext().checkpoint()
        snap = GOVERNOR.snapshot()
        assert set(snap) == {
            "checkpoints", "deadline_hits", "budget_trips",
            "cancellations", "fallbacks", "unknown_verdicts",
            "retries", "quarantines", "hard_kills", "pool_rebuilds",
        }
        json.dumps(snap)

    def test_engine_snapshot_includes_governor(self):
        from repro.engine import HomEngine

        engine = HomEngine()
        snap = engine.snapshot()
        assert "governor" in snap
        assert "checkpoints" in snap["governor"]

    def test_engine_reset_stats_resets_governor(self):
        from repro.engine import HomEngine

        engine = HomEngine()
        RunContext().checkpoint()
        assert GOVERNOR.checkpoints > 0
        engine.reset_stats()
        assert GOVERNOR.checkpoints == 0

    def test_instrumentation_reexports_same_object(self):
        from repro.engine.instrumentation import GOVERNOR as G2

        assert G2 is GOVERNOR
