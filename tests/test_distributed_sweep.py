"""The sharded sweep runtime end to end, in-process.

Covers deterministic sharding, the runner loop (claim → run → release),
journal resume across runners, work-stealing from an expired lease, the
heartbeat threaded through the sweep, LeaseLostError propagation (a
lost lease aborts the shard instead of journaling bogus records), and
the shard-mode watchdog default that keeps hangs from pinning leases.
"""

import time

import pytest

from repro.distributed import (
    DEFAULT_SHARD_HARD_TIMEOUT_S,
    FencedShardJournal,
    LeaseManager,
    assign_shard,
    merge_journals,
    partition,
    run_sharded_sweep,
    shard_journal_paths,
)
from repro.distributed.journal import FencedShardJournal as _FSJ
from repro.distributed.runner import LeaseHeartbeat
from repro.distributed.sharding import journal_path
from repro.exceptions import LeaseLostError, ValidationError
from repro.parallel.executor import run_sweep
from repro.parallel.faults import faulty_task

GRID = [(f"i{n:02d}", ("ok", n)) for n in range(12)]
GRID_KEYS = [key for key, _ in GRID]


class FakeClock:
    def __init__(self, now=1_000_000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------
def test_assignment_is_deterministic_and_total():
    parts = partition(GRID, 4)
    assert sum(len(p) for p in parts) == len(GRID)
    for shard, part in enumerate(parts):
        for key, _ in part:
            assert assign_shard(key, 4) == shard
    # Pure function of the key: stable across calls and instances.
    assert partition(GRID, 4) == parts
    with pytest.raises(ValidationError):
        assign_shard("x", 0)


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------
def test_single_runner_completes_and_merges_clean(tmp_path):
    outcome = run_sharded_sweep(
        faulty_task, GRID, shard_dir=str(tmp_path), shards=3,
        runner_id="solo", lease_ttl_s=10.0,
    )
    assert outcome.complete
    assert not outcome.lost
    assert sorted(o["shard"] for o in outcome.owned) == [0, 1, 2]
    assert all(o["fence"] == 1 for o in outcome.owned)
    report = merge_journals(
        shard_journal_paths(str(tmp_path), 3), expected_keys=GRID_KEYS
    )
    assert report.clean
    assert {k: r["result"]["value"] for k, r in report.results.items()} == {
        key: int(key[1:]) for key in GRID_KEYS
    }


def test_second_runner_sees_complete_shards_and_runs_nothing(tmp_path):
    first = run_sharded_sweep(
        faulty_task, GRID, shard_dir=str(tmp_path), shards=3,
        runner_id="first", lease_ttl_s=10.0,
    )
    assert first.complete
    second = run_sharded_sweep(
        faulty_task, GRID, shard_dir=str(tmp_path), shards=3,
        runner_id="second", lease_ttl_s=10.0,
    )
    assert second.complete
    assert second.owned == []  # nothing left to claim


def test_runner_resumes_a_partially_journaled_shard(tmp_path):
    # A previous owner journaled part of shard 0 and released cleanly.
    parts = partition(GRID, 3)
    manager = LeaseManager(str(tmp_path), "earlier", ttl_s=10.0)
    lease = manager.start(manager.claim(0))
    journal = FencedShardJournal(
        journal_path(str(tmp_path), 0), fence=lease.fence, owner="earlier"
    )
    done_key, done_spec = parts[0][0]
    journal.record(done_key, {"status": "ok",
                              "result": {"value": done_spec[1]}})
    manager.release(lease)

    outcome = run_sharded_sweep(
        faulty_task, GRID, shard_dir=str(tmp_path), shards=3,
        runner_id="resumer", lease_ttl_s=10.0,
    )
    assert outcome.complete
    shard0 = next(o for o in outcome.owned if o["shard"] == 0)
    assert shard0["fence"] == 2
    assert shard0["sweep"]["resumed"] == 1
    report = merge_journals(
        shard_journal_paths(str(tmp_path), 3), expected_keys=GRID_KEYS
    )
    assert report.clean
    assert report.fences[done_key] == (1, "earlier")  # kept, not redone


def test_runner_steals_expired_lease_and_victim_is_fenced(tmp_path):
    clock = FakeClock()
    victim_mgr = LeaseManager(str(tmp_path), "victim", ttl_s=2.0,
                              clock=clock)
    held = victim_mgr.start(victim_mgr.claim(1))
    clock.advance(3.0)  # victim "dies": heartbeat goes stale

    outcome = run_sharded_sweep(
        faulty_task, GRID, shard_dir=str(tmp_path), shards=3,
        runner_id="thief", lease_ttl_s=2.0, clock=clock, max_wait_s=10.0,
    )
    assert outcome.complete
    stolen = next(o for o in outcome.owned if o["shard"] == 1)
    assert stolen["stolen"]
    assert stolen["fence"] == 2
    with pytest.raises(LeaseLostError):
        victim_mgr.renew(held)


def test_no_steal_leaves_expired_shards_alone(tmp_path):
    clock = FakeClock()
    victim_mgr = LeaseManager(str(tmp_path), "victim", ttl_s=2.0,
                              clock=clock)
    victim_mgr.start(victim_mgr.claim(1))
    clock.advance(3.0)
    outcome = run_sharded_sweep(
        faulty_task, GRID, shard_dir=str(tmp_path), shards=3,
        runner_id="polite", lease_ttl_s=2.0, clock=clock,
        steal=False, max_wait_s=0.5,
    )
    assert not outcome.complete
    assert all(o["shard"] != 1 for o in outcome.owned)


def test_stale_writer_line_is_fenced_out_on_merge(tmp_path):
    """The belt-and-braces end state: a stale pre-steal owner lands a
    record after the thief; merge keeps the thief's."""
    path = journal_path(str(tmp_path), 0)
    thief = _FSJ(path, fence=2, owner="thief")
    thief.record("x", {"status": "ok", "result": 1})
    stale = _FSJ.__new__(_FSJ)  # bypass load: simulate the old handle
    stale.path = path
    stale.fence = 1
    stale.owner = "victim"
    stale.guard = None
    stale._fences = {}
    stale._fenced_out = 0
    stale._results = {}
    stale._lines = 0
    stale._legacy = 0
    stale._corrupt = 0
    stale._superseded = 0
    stale._torn_tail = 0
    stale._compactions = 0
    stale.record("x", {"status": "ok", "result": 0})

    report = merge_journals([path])
    assert report.results["x"]["result"] == 1
    assert report.fenced_out == 1


# ---------------------------------------------------------------------------
# Heartbeats
# ---------------------------------------------------------------------------
def test_heartbeat_called_on_serial_path():
    calls = []
    outcome = run_sweep(
        faulty_task, GRID[:4], workers=1, heartbeat=lambda: calls.append(1)
    )
    assert outcome.computed == 4
    assert len(calls) >= 4  # at least once per instance


def test_lease_lost_during_sweep_aborts_without_bogus_records(tmp_path):
    journal_file = str(tmp_path / "j.jsonl")

    class Bomb:
        interval_s = 0.0

        def __init__(self):
            self.calls = 0

        def __call__(self):
            self.calls += 1
            if self.calls >= 3:
                raise LeaseLostError(shard=0, owner="me", fence=1,
                                     holder="them", holder_fence=2)

    bomb = Bomb()
    journal = _FSJ(journal_file, fence=1, owner="me", guard=bomb)
    with pytest.raises(LeaseLostError):
        run_sweep(faulty_task, GRID, workers=1, journal=journal,
                  heartbeat=bomb)
    # Whatever was journaled before the loss is ok-status, never an
    # "error" record fabricated from the lease failure.
    reloaded = _FSJ(journal_file, fence=2, owner="check")
    assert 0 < len(reloaded) < len(GRID)
    assert all(
        reloaded.result(key)["status"] == "ok" for key in reloaded.keys()
    )


def test_heartbeat_rate_limiting(tmp_path):
    manager = LeaseManager(str(tmp_path), "r1", ttl_s=9.0)
    lease = manager.start(manager.claim(0))
    heartbeat = LeaseHeartbeat(manager, lease, interval_s=10.0)
    assert heartbeat.interval_s == 10.0
    for _ in range(50):
        heartbeat()
    assert heartbeat.renewals == 0  # interval not reached
    fast = LeaseHeartbeat(manager, heartbeat.lease, interval_s=0.01)
    time.sleep(0.02)
    fast()
    assert fast.renewals == 1
    # Default interval is TTL/3.
    assert LeaseHeartbeat(manager, fast.lease).interval_s == pytest.approx(3.0)


def test_lost_shard_is_recorded_and_runner_moves_on(tmp_path):
    """A heartbeat that discovers a theft mid-shard marks the shard
    lost; the runner's outcome reports it and completes the rest."""
    # The saboteur's clock runs far ahead, so every lease it inspects
    # looks expired and is instantly stealable.
    sabotage_mgr = LeaseManager(str(tmp_path), "saboteur", ttl_s=60.0,
                                clock=lambda: time.time() + 1e6)
    grid = [(f"k{n}", ("ok", n)) for n in range(6)]

    from repro.distributed import runner as runner_mod

    original = runner_mod.LeaseHeartbeat

    class SabotagedHeartbeat(original):
        """Steal the lease out from under the runner at first renewal."""

        def __call__(self):
            sabotage_mgr.claim(self.lease.shard)  # force fence past ours
            self._last = -1e9  # defeat rate limiting
            original.__call__(self)

    import unittest.mock as mock

    with mock.patch.object(runner_mod, "LeaseHeartbeat",
                           SabotagedHeartbeat):
        outcome = run_sharded_sweep(
            faulty_task, grid, shard_dir=str(tmp_path), shards=1,
            runner_id="target", lease_ttl_s=30.0,
            max_wait_s=0.2, steal=False,
        )
    assert outcome.lost
    assert outcome.lost[0]["holder"] == "saboteur"
    assert not outcome.owned


# ---------------------------------------------------------------------------
# The watchdog gap fix
# ---------------------------------------------------------------------------
def test_shard_mode_defaults_a_hard_timeout(tmp_path, monkeypatch):
    """Without a deadline, plain sweeps leave the watchdog off; shard
    mode must not — a hang would pin the lease.  With the default hard
    timeout patched small, a hanging instance is killed and quarantined
    and the sweep still completes."""
    monkeypatch.setattr(
        "repro.distributed.runner.DEFAULT_SHARD_HARD_TIMEOUT_S", 0.4
    )
    from repro.parallel.retry import RetryPolicy

    grid = [("fast", ("ok", 1)), ("hang", ("hang", 30.0, 2))]
    outcome = run_sharded_sweep(
        faulty_task, grid, shard_dir=str(tmp_path), shards=1,
        runner_id="r1", lease_ttl_s=30.0,
        retry_policy=RetryPolicy(max_attempts=1, base_delay=0.01),
    )
    assert outcome.complete, "the hang pinned the shard"
    sweep = outcome.owned[0]["sweep"]
    assert sweep["hard_kills"] >= 1
    assert sweep["quarantined"] == 1
    assert sweep["results"]["fast"]["status"] == "ok"
    assert sweep["results"]["hang"]["status"] == "quarantined"
    assert DEFAULT_SHARD_HARD_TIMEOUT_S == 30.0  # the real default


def test_explicit_deadline_disables_the_shard_default(tmp_path):
    """A configured deadline keeps the normal grace-factor behaviour;
    an explicitly governed quick sweep runs serial in-process."""
    outcome = run_sharded_sweep(
        faulty_task, GRID[:4], shard_dir=str(tmp_path), shards=1,
        runner_id="r1", lease_ttl_s=10.0, deadline_s=10.0,
    )
    assert outcome.complete
    assert outcome.owned[0]["sweep"]["results"]
