"""Unit tests for stage unfolding (Theorem 7.1)."""

import pytest

from repro.datalog import (
    evaluate_naive,
    parse_program,
    stage_ucq,
    stage_ucqs,
    transitive_closure_program,
    nonlinear_transitive_closure_program,
    verify_stage_against_evaluation,
)
from repro.exceptions import BudgetExceededError
from repro.structures import (
    GRAPH_VOCABULARY,
    directed_cycle,
    directed_path,
    random_directed_graph,
)


class TestStageShapes:
    def test_stage_zero_empty(self):
        stages = stage_ucqs(transitive_closure_program(), 0)
        assert len(stages[0]["T"]) == 0

    def test_stage_one_is_base_rule(self):
        stages = stage_ucqs(transitive_closure_program(), 1)
        assert len(stages[1]["T"]) == 1  # just E(x, y)

    def test_stage_m_is_paths_up_to_m(self):
        stages = stage_ucqs(transitive_closure_program(), 3)
        # after minimization: paths of length 1..m (longer subsumed by
        # nothing; shorter not contained in longer)
        assert len(stages[2]["T"]) == 2
        assert len(stages[3]["T"]) == 3

    def test_nonlinear_doubles(self):
        stages = stage_ucqs(nonlinear_transitive_closure_program(), 3)
        # stage 2: paths of length 1, 2; stage 3: lengths 1..4
        assert len(stages[2]["T"]) == 2
        assert len(stages[3]["T"]) == 4

    def test_budget(self):
        with pytest.raises(BudgetExceededError):
            stage_ucqs(nonlinear_transitive_closure_program(), 6, budget=5)


class TestStageSemantics:
    @pytest.mark.parametrize("m", [0, 1, 2, 3])
    def test_tc_stages_match_evaluation(self, m):
        assert verify_stage_against_evaluation(
            transitive_closure_program(), directed_path(5), "T", m
        )

    def test_stages_on_cycle(self):
        assert verify_stage_against_evaluation(
            transitive_closure_program(), directed_cycle(4), "T", 2
        )

    def test_stages_on_random(self):
        for seed in range(4):
            s = random_directed_graph(4, 0.3, seed)
            assert verify_stage_against_evaluation(
                transitive_closure_program(), s, "T", 2
            )

    def test_nonlinear_stages_match(self):
        for m in (1, 2, 3):
            assert verify_stage_against_evaluation(
                nonlinear_transitive_closure_program(),
                directed_path(6), "T", m,
            )

    def test_multi_idb_stages(self):
        program = parse_program(
            """
            A(x, y) <- E(x, y).
            B(x, y) <- A(x, z), E(z, y).
            """,
            GRAPH_VOCABULARY,
        )
        stages = stage_ucqs(program, 2)
        p4 = directed_path(4)
        fixpoint = evaluate_naive(program, p4)
        assert stages[2]["B"].evaluate(p4) == set(fixpoint.stage("B", 2))

    def test_repeated_variable_unification(self):
        # rule head uses an IDB whose disjunct head repeats a variable
        program = parse_program(
            """
            D(x, x) <- E(x, x).
            Out(x, y) <- D(x, z), E(z, y).
            """,
            GRAPH_VOCABULARY,
        )
        stages = stage_ucqs(program, 2)
        from repro.structures import Structure

        s = Structure(GRAPH_VOCABULARY, [0, 1],
                      {"E": [(0, 0), (0, 1)]})
        fixpoint = evaluate_naive(program, s)
        assert stages[2]["Out"].evaluate(s) == set(
            fixpoint.stage("Out", 2)
        )

    def test_stage_ucq_wrapper(self):
        u = stage_ucq(transitive_closure_program(), "T", 2)
        assert u.arity == 2
        assert len(u) == 2
