"""Unit tests for unions of conjunctive queries."""

import pytest

from repro.cq import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    ucq_from_formula,
    ucq_of,
)
from repro.exceptions import UnsupportedFragmentError, ValidationError
from repro.logic import Bottom, parse_formula, satisfies
from repro.structures import (
    GRAPH_VOCABULARY,
    directed_cycle,
    directed_path,
    random_directed_graph,
    single_loop,
)


def cq(text):
    return ConjunctiveQuery.from_formula(
        parse_formula(text, GRAPH_VOCABULARY), GRAPH_VOCABULARY
    )


def fo(text):
    return parse_formula(text, GRAPH_VOCABULARY)


class TestConstruction:
    def test_ucq_of(self):
        u = ucq_of([cq("exists x. E(x,x)"), cq("exists x y. E(x,y) & E(y,x)")])
        assert len(u) == 2 and u.arity == 0

    def test_empty_iterable_rejected(self):
        with pytest.raises(ValidationError):
            ucq_of([])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            UnionOfConjunctiveQueries(
                GRAPH_VOCABULARY, 0, (cq("exists y. E(x, y)"),)
            )

    def test_empty_union_is_false(self):
        u = UnionOfConjunctiveQueries(GRAPH_VOCABULARY, 0, ())
        assert not u.holds_in(directed_cycle(3))
        assert isinstance(u.to_formula(), Bottom)


class TestFromFormula:
    def test_distribution(self):
        u = ucq_from_formula(
            fo("exists x. (E(x,x) | exists y. (E(x,y) & E(y,x)))"),
            GRAPH_VOCABULARY,
        )
        assert len(u) == 2

    def test_non_ep_rejected(self):
        with pytest.raises(UnsupportedFragmentError):
            ucq_from_formula(fo("forall x. E(x,x)"), GRAPH_VOCABULARY)

    def test_semantics_match(self):
        formula = fo(
            "exists x. (E(x,x) | exists y. (E(x,y) & E(y,x)))"
        )
        u = ucq_from_formula(formula, GRAPH_VOCABULARY)
        for seed in range(8):
            s = random_directed_graph(4, 0.35, seed)
            assert u.holds_in(s) == satisfies(s, formula)

    def test_free_variables_become_head(self):
        u = ucq_from_formula(
            fo("E(x, y) | (exists z. E(x, z) & E(z, y))"), GRAPH_VOCABULARY
        )
        assert u.arity == 2
        answers = u.evaluate(directed_path(4))
        assert (0, 1) in answers and (0, 2) in answers
        assert (0, 3) not in answers


class TestSemantics:
    def test_union_of_answers(self):
        u = ucq_of([cq("exists y. E(x, y)"), cq("exists y. E(y, x)")])
        assert u.evaluate(directed_path(3)) == {(0,), (1,), (2,)}

    def test_boolean_union(self):
        u = ucq_of([cq("exists x. E(x,x)"),
                    cq("exists x y z. E(x,y) & E(y,z) & E(z,x)")])
        assert u.holds_in(single_loop())
        assert u.holds_in(directed_cycle(3))
        assert not u.holds_in(directed_cycle(4))

    def test_to_formula_equivalent(self):
        u = ucq_of([cq("exists x. E(x,x)"), cq("exists x y. E(x,y) & E(y,x)")])
        f = u.to_formula()
        for seed in range(6):
            s = random_directed_graph(4, 0.4, seed)
            assert u.holds_in(s) == satisfies(s, f)


class TestMinimization:
    def test_minimized_drops_redundant(self):
        u = ucq_of([
            cq("exists a b c. E(a,b) & E(b,c)"),
            cq("exists a b c d. E(a,b) & E(b,c) & E(c,d)"),
        ])
        m = u.minimized()
        assert len(m) == 1
        assert u.is_equivalent_to(m)

    def test_containment_api(self):
        small = ucq_of([cq("exists x. E(x,x)")])
        big = ucq_of([cq("exists x. E(x,x)"), cq("exists x y. E(x,y)")])
        assert small.is_contained_in(big)
        assert not big.is_contained_in(small)

    def test_str(self):
        u = ucq_of([cq("exists x. E(x,x)"), cq("exists x y. E(x,y)")])
        assert "UNION" in str(u)
        empty = UnionOfConjunctiveQueries(GRAPH_VOCABULARY, 0, ())
        assert str(empty) == "false"
