"""Unit tests for structure classes and their closure properties."""

from repro.core import (
    all_finite_structures,
    bounded_degree_class,
    bounded_treewidth_class,
    closed_under_disjoint_unions_on,
    closed_under_substructures_on,
    cores_bounded_degree_class,
    cores_bounded_treewidth_class,
    excluded_clique_minor_class,
)
from repro.structures import (
    bicycle_structure,
    clique_structure,
    directed_cycle,
    directed_path,
    grid_structure,
    star_structure,
    undirected_cycle,
    undirected_path,
)


class TestMembership:
    def test_all_structures(self):
        cls = all_finite_structures()
        assert directed_cycle(3) in cls

    def test_bounded_degree(self):
        cls = bounded_degree_class(2)
        assert undirected_path(5) in cls
        assert undirected_cycle(5) in cls
        assert star_structure(3) not in cls

    def test_bounded_treewidth(self):
        t2 = bounded_treewidth_class(2)  # treewidth < 2 = forests
        assert undirected_path(5) in t2
        assert undirected_cycle(5) not in t2
        t3 = bounded_treewidth_class(3)
        assert undirected_cycle(5) in t3
        assert grid_structure(3, 3) not in t3

    def test_excluded_minor(self):
        k4_free = excluded_clique_minor_class(4)
        assert undirected_cycle(6) in k4_free
        assert clique_structure(4) not in k4_free
        assert grid_structure(3, 3) not in k4_free

    def test_cores_bounded_degree(self):
        cls = cores_bounded_degree_class(3)
        # bicycles have core K4 of degree 3 (Section 6.2)
        assert bicycle_structure(5) in cls
        assert bicycle_structure(7) in cls

    def test_cores_bounded_treewidth(self):
        # grids are bipartite: core K2, treewidth 1 < 2 (Section 6.2)
        h_t2 = cores_bounded_treewidth_class(2)
        assert grid_structure(3, 3) in h_t2
        assert undirected_cycle(5) not in h_t2

    def test_t_k_properly_inside_h_t_k(self):
        """Section 6.2: T(2) properly contained in H(T(2)) — grids witness."""
        t2 = bounded_treewidth_class(2)
        h_t2 = cores_bounded_treewidth_class(2)
        grid = grid_structure(3, 3)
        assert grid not in t2
        assert grid in h_t2
        # and T(2) ⊆ H(T(2)) on samples
        for s in (undirected_path(4), star_structure(4)):
            assert s in t2 and s in h_t2


class TestClosure:
    def test_bounded_degree_closed(self):
        cls = bounded_degree_class(3)
        samples = [undirected_cycle(4), undirected_path(4)]
        assert closed_under_substructures_on(cls, samples)
        assert closed_under_disjoint_unions_on(cls, samples)

    def test_bounded_treewidth_closed(self):
        cls = bounded_treewidth_class(3)
        samples = [undirected_cycle(5), undirected_path(5)]
        assert closed_under_substructures_on(cls, samples)
        assert closed_under_disjoint_unions_on(cls, samples)

    def test_excluded_minor_closed(self):
        cls = excluded_clique_minor_class(4)
        samples = [undirected_cycle(5), undirected_path(4)]
        assert closed_under_substructures_on(cls, samples)
        assert closed_under_disjoint_unions_on(cls, samples)

    def test_non_closed_class_detected(self):
        from repro.core import StructureClass

        # "exactly 3 facts" is not closed under substructures
        cls = StructureClass("3 facts", lambda s: s.num_facts() == 3)
        assert not closed_under_substructures_on(cls, [directed_cycle(3)])

    def test_filter(self):
        cls = bounded_degree_class(2)
        members = cls.filter([undirected_path(3), star_structure(4)])
        assert len(members) == 1
