"""Power-loss durability of the sweep journal: directory fsyncs and
crash-atomic compaction.

An fsync on the journal *file* is not enough: the directory entry
created by the first ``open`` and the ``os.replace`` that lands a
compaction both live in the parent directory's metadata, which POSIX
leaves volatile until the directory itself is fsynced.  These tests spy
on the exact syscall order and inject a crash into the rename to pin
the contract down.
"""

import os

import pytest

from repro.resources import SweepJournal
from repro.resources import checkpointing as cp


class SyscallSpy:
    """Record the order of file-fsync / rename / dir-fsync calls."""

    def __init__(self, monkeypatch, tmp_path):
        self.events = []
        self.tmp_path = str(tmp_path)
        real_fsync, real_replace, real_fsync_dir = (
            os.fsync, os.replace, cp._fsync_dir
        )

        self._inside_dir_fsync = False

        def spy_fsync(fd):
            # _fsync_dir's own internal os.fsync is part of the
            # fsync_dir event, not a separate file fsync.
            if not self._inside_dir_fsync:
                self.events.append(("fsync", fd))
            return real_fsync(fd)

        def spy_replace(src, dst):
            self.events.append(("replace", src, dst))
            return real_replace(src, dst)

        def spy_fsync_dir(directory):
            self.events.append(("fsync_dir", directory))
            self._inside_dir_fsync = True
            try:
                return real_fsync_dir(directory)
            finally:
                self._inside_dir_fsync = False

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        monkeypatch.setattr(cp, "_fsync_dir", spy_fsync_dir)

    def kinds(self):
        return [event[0] for event in self.events]


def test_first_record_fsyncs_the_parent_directory(monkeypatch, tmp_path):
    journal = SweepJournal(str(tmp_path / "sweep.jsonl"))
    spy = SyscallSpy(monkeypatch, tmp_path)
    journal.record("a", {"status": "ok"})
    # File first (the blocks), then the directory (the entry).
    assert spy.kinds() == ["fsync", "fsync_dir"]
    assert spy.events[-1][1] == str(tmp_path)

    spy.events.clear()
    journal.record("b", {"status": "ok"})
    # The journal already exists: no directory fsync on later appends.
    assert spy.kinds() == ["fsync"]


def test_compact_orders_fsync_replace_dirfsync(monkeypatch, tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    journal = SweepJournal(path)
    journal.record("a", {"status": "ok", "result": 1})
    journal.record("a", {"status": "ok", "result": 2})  # superseding line
    assert journal.needs_compaction()

    spy = SyscallSpy(monkeypatch, tmp_path)
    journal.compact()
    assert spy.kinds() == ["fsync", "replace", "fsync_dir"], (
        "compaction must fsync the tmp file BEFORE renaming it over the "
        "journal and fsync the directory AFTER — any other order can "
        "lose the compaction (or worse, the journal) to power loss"
    )
    _, src, dst = spy.events[1]
    assert src == path + ".tmp"
    assert dst == path
    assert spy.events[2][1] == str(tmp_path)


def test_reset_fsyncs_the_directory_after_unlink(monkeypatch, tmp_path):
    journal = SweepJournal(str(tmp_path / "sweep.jsonl"))
    journal.record("a", {"status": "ok"})
    spy = SyscallSpy(monkeypatch, tmp_path)
    journal.reset()
    assert "fsync_dir" in spy.kinds()
    assert not os.path.exists(journal.path)


def test_crash_during_compaction_rename_keeps_old_journal(
    monkeypatch, tmp_path
):
    """A crash injected into ``os.replace`` must leave the *old*
    journal intact and loadable — atomic compaction means old file or
    new file, never a mix, never neither."""
    path = str(tmp_path / "sweep.jsonl")
    journal = SweepJournal(path)
    journal.record("a", {"status": "ok", "result": 1})
    journal.record("a", {"status": "ok", "result": 2})
    journal.record("b", {"status": "ok", "result": 3})
    with open(path, "rb") as fh:
        before = fh.read()

    def crashing_replace(src, dst):
        raise OSError("injected crash at the rename")

    monkeypatch.setattr(os, "replace", crashing_replace)
    with pytest.raises(OSError, match="injected crash"):
        journal.compact()
    monkeypatch.undo()

    with open(path, "rb") as fh:
        assert fh.read() == before, "old journal modified by failed compact"
    recovered = SweepJournal(path)
    assert recovered.integrity() == "ok"
    assert recovered.result("a") == {"status": "ok", "result": 2}
    assert recovered.result("b") == {"status": "ok", "result": 3}
    # The orphaned tmp file is harmless and overwritten next time.
    assert os.path.exists(path + ".tmp")
