"""Unit tests for Section 6.2: Boolean queries, cores, wheels and bicycles."""

import pytest

from repro.core import (
    bicycle_core_is_k4,
    bicycle_report,
    bicycle_sweep,
    core_degree,
    core_treewidth,
    corollary_6_4_witness,
    in_h_t_k,
    wheel_is_core,
)
from repro.structures import (
    bicycle_structure,
    clique_structure,
    grid_structure,
    star_structure,
    undirected_cycle,
    undirected_path,
    wheel_structure,
)


class TestCoreMeasures:
    def test_core_degree_of_bipartite(self):
        # bipartite structures have core K2: degree 1
        assert core_degree(grid_structure(3, 3)) == 1
        assert core_degree(undirected_path(5)) == 1

    def test_core_treewidth_of_bipartite(self):
        assert core_treewidth(grid_structure(3, 3)) == 1

    def test_core_treewidth_of_core(self):
        assert core_treewidth(undirected_cycle(5)) == 2

    def test_h_t_k_membership(self):
        # Section 6.2: bipartite ⊆ H(T(2)); grids witness properness
        assert in_h_t_k(grid_structure(3, 4), 2)
        assert not in_h_t_k(undirected_cycle(5), 2)
        assert in_h_t_k(undirected_cycle(5), 3)


class TestWheels:
    @pytest.mark.parametrize("n", [5, 7])
    def test_odd_wheels_are_cores(self, n):
        assert wheel_is_core(n)

    @pytest.mark.parametrize("n", [4, 6])
    def test_even_wheels_not_cores(self, n):
        assert not wheel_is_core(n)

    def test_wheels_4_colorable(self):
        from repro.homomorphism import has_homomorphism

        for n in (4, 5, 6, 7):
            assert has_homomorphism(wheel_structure(n), clique_structure(4))


class TestBicycles:
    @pytest.mark.parametrize("n", [5, 7])
    def test_core_is_k4(self, n):
        assert bicycle_core_is_k4(n)

    def test_report_matches_paper(self):
        report = bicycle_report(5)
        assert report.core_size == 4
        assert report.core_degree == 3
        assert report.expansion_is_core
        assert report.expansion_core_degree == 5

    def test_sweep_shows_unbounded_expansion_degree(self):
        """The Section 6.2 punchline: plain cores have constant degree 3
        while the expansions' cores have degree n -> unbounded."""
        reports = bicycle_sweep([5, 7, 9])
        assert all(r.core_degree == 3 for r in reports)
        degrees = [r.expansion_core_degree for r in reports]
        assert degrees == [5, 7, 9]
        assert all(r.expansion_is_core for r in reports)


class TestCorollary64:
    def test_core_witness_vs_structure_witness(self):
        # the star's core is K2: trivially dense, no witness needed even
        # though the structure itself is large
        star = star_structure(20)
        witness = corollary_6_4_witness(star, s=0, d=1, m=3)
        assert witness is None  # core K2 has no 3-element scattered set

    def test_large_core_produces_witness(self):
        cycle = undirected_cycle(31)  # odd: its own core
        witness = corollary_6_4_witness(cycle, s=0, d=2, m=4)
        assert witness is not None

    def test_even_cycle_core_collapses(self):
        # an even cycle is bipartite: its core K2 has no witness at all
        cycle = undirected_cycle(30)
        assert corollary_6_4_witness(cycle, s=0, d=2, m=4) is None
