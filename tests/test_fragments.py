"""Unit tests for fragment classification."""

from repro.logic import (
    constants_used,
    distinct_variable_count,
    is_cq_formula,
    is_cqk,
    is_existential,
    is_existential_positive,
    is_existential_positive_k,
    is_positive,
    parse_formula,
    quantifier_rank,
)
from repro.structures import GRAPH_VOCABULARY


def fo(text, vocab=GRAPH_VOCABULARY):
    return parse_formula(text, vocab)


class TestExistentialPositive:
    def test_cq_is_ep(self):
        assert is_existential_positive(fo("exists x y. E(x, y) & E(y, x)"))

    def test_disjunction_allowed(self):
        assert is_existential_positive(fo("exists x. (E(x, x) | exists y. E(x, y))"))

    def test_equality_allowed(self):
        assert is_existential_positive(fo("exists x y. E(x, y) & x = y"))

    def test_negation_excluded(self):
        assert not is_existential_positive(fo("exists x. ~E(x, x)"))

    def test_forall_excluded(self):
        assert not is_existential_positive(fo("forall x. E(x, x)"))

    def test_constants_allowed(self):
        assert is_existential_positive(fo("true"))


class TestOtherFragments:
    def test_positive_allows_forall(self):
        assert is_positive(fo("forall x. exists y. E(x, y)"))
        assert not is_positive(fo("forall x. ~E(x, x)"))

    def test_existential_allows_negated_atoms(self):
        assert is_existential(fo("exists x y. E(x, y) & ~E(y, x)"))
        assert not is_existential(fo("exists x. ~(exists y. E(x, y))"))
        assert not is_existential(fo("forall x. E(x, x)"))

    def test_cq_formula(self):
        assert is_cq_formula(fo("exists x. (E(x, y) & exists z. E(y, z))"))
        assert not is_cq_formula(fo("E(x, y) | E(y, x)"))
        assert not is_cq_formula(fo("~E(x, y)"))

    def test_cq_equality_flag(self):
        eq = fo("exists x y. E(x, y) & x = y")
        assert is_cq_formula(eq, allow_equality=True)
        assert not is_cq_formula(eq, allow_equality=False)


class TestVariableCounting:
    def test_distinct_count_with_reuse(self):
        f = fo(
            "exists x1 x2. (E(x1, x2) & (exists x1. (E(x2, x1) "
            "& exists x2. E(x1, x2))))"
        )
        assert distinct_variable_count(f) == 2
        assert is_cqk(f, 2)
        assert not is_cqk(f, 1)

    def test_epk(self):
        f = fo("exists x. (E(x, x) | exists y. E(x, y))")
        assert is_existential_positive_k(f, 2)
        assert not is_existential_positive_k(f, 1)

    def test_quantifier_rank(self):
        assert quantifier_rank(fo("E(x, y)")) == 0
        assert quantifier_rank(fo("exists x. E(x, x)")) == 1
        assert quantifier_rank(fo("forall x. exists y. E(x, y)")) == 2
        assert quantifier_rank(
            fo("(exists x. E(x, x)) & (exists y. exists z. E(y, z))")
        ) == 2


class TestConstantsUsed:
    def test_collects_constants(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c1", "c2"])
        f = parse_formula("E(c1, x) & x = c2", vocab)
        assert constants_used(f) == {"c1", "c2"}

    def test_none(self):
        assert constants_used(fo("E(x, y)")) == set()
