"""Unit tests for naive and semi-naive Datalog evaluation."""

import pytest

from repro.datalog import (
    evaluate_naive,
    evaluate_semi_naive,
    nonlinear_transitive_closure_program,
    parse_program,
    query,
    reach_from_source_program,
    same_generation_program,
    transitive_closure_program,
)
from repro.exceptions import ValidationError
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    directed_cycle,
    directed_path,
    random_directed_graph,
)


def tc_pairs(n):
    """Expected transitive closure of the directed path P_n."""
    return {(i, j) for i in range(n) for j in range(n) if i < j}


class TestNaive:
    def test_tc_on_path(self):
        result = evaluate_naive(transitive_closure_program(), directed_path(5))
        assert set(result.relations["T"]) == tc_pairs(5)

    def test_tc_on_cycle_is_complete(self):
        result = evaluate_naive(transitive_closure_program(), directed_cycle(4))
        assert len(result.relations["T"]) == 16

    def test_stages_monotone(self):
        result = evaluate_naive(transitive_closure_program(), directed_path(6))
        for earlier, later in zip(result.stages, result.stages[1:]):
            assert earlier["T"] <= later["T"]

    def test_stage_semantics(self):
        # stage m of TC on a path = pairs at distance <= m
        result = evaluate_naive(transitive_closure_program(), directed_path(6))
        for m in range(1, result.rounds + 1):
            expected = {(i, j) for i in range(6) for j in range(6)
                        if 0 < j - i <= m}
            assert set(result.stage("T", m)) == expected

    def test_stage_clamps_at_fixpoint(self):
        result = evaluate_naive(transitive_closure_program(), directed_path(3))
        assert result.stage("T", 99) == result.relations["T"]

    def test_rounds_on_path(self):
        result = evaluate_naive(transitive_closure_program(), directed_path(5))
        assert result.rounds == 4

    def test_missing_edb_rejected(self):
        other = Structure(Vocabulary({"R": 2}), [0], {})
        with pytest.raises(ValidationError):
            evaluate_naive(transitive_closure_program(), other)


class TestSemiNaive:
    def test_agrees_with_naive(self):
        programs = [
            transitive_closure_program(),
            nonlinear_transitive_closure_program(),
        ]
        for seed in range(6):
            s = random_directed_graph(5, 0.3, seed)
            for program in programs:
                naive = evaluate_naive(program, s)
                semi = evaluate_semi_naive(program, s)
                assert naive.relations == semi.relations

    def test_nonlinear_fewer_rounds(self):
        p_linear = transitive_closure_program()
        p_square = nonlinear_transitive_closure_program()
        long_path = directed_path(16)
        linear_rounds = evaluate_naive(p_linear, long_path).rounds
        square_rounds = evaluate_naive(p_square, long_path).rounds
        assert square_rounds < linear_rounds

    def test_same_generation(self):
        # binary tree parent relation: leaves of equal depth are same-gen
        vocab = Vocabulary({"Par": 2})
        s = Structure(
            vocab,
            ["root", "l", "r", "ll", "rr"],
            {"Par": [("l", "root"), ("r", "root"),
                     ("ll", "l"), ("rr", "r")]},
        )
        result = evaluate_semi_naive(same_generation_program(), s)
        sg = set(result.relations["SG"])
        assert ("l", "r") in sg and ("ll", "rr") in sg
        assert ("l", "rr") not in sg

    def test_multiple_idbs(self):
        reach = reach_from_source_program()
        vocab = reach.edb_vocabulary
        s = Structure(
            vocab,
            [0, 1, 2, 3],
            {"E": [(0, 1), (1, 2)], "S": [(0,)]},
        )
        result = evaluate_semi_naive(reach, s)
        assert set(result.relations["Reach"]) == {(0,), (1,), (2,)}


class TestQueryHelper:
    def test_engines(self):
        s = directed_path(4)
        for engine in ("naive", "semi-naive"):
            assert set(query(transitive_closure_program(), s, "T",
                             engine)) == tc_pairs(4)

    def test_unknown_engine(self):
        with pytest.raises(ValidationError):
            query(transitive_closure_program(), directed_path(2), "T", "magic")

    def test_unknown_predicate(self):
        with pytest.raises(ValidationError):
            query(transitive_closure_program(), directed_path(2), "Z")


class TestConstantsInPrograms:
    def test_rule_with_constant(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        program = parse_program("Hit(x) <- E(x, c).", vocab)
        s = Structure(vocab, [0, 1, 2],
                      {"E": [(0, 1), (2, 1), (1, 0)]}, {"c": 1})
        result = evaluate_naive(program, s)
        assert set(result.relations["Hit"]) == {(0,), (2,)}
