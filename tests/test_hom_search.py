"""Unit tests for homomorphism search."""

import pytest

from repro.exceptions import ValidationError
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    directed_clique,
    directed_cycle,
    directed_path,
    random_directed_graph,
    single_loop,
    undirected_cycle,
    undirected_path,
)
from repro.homomorphism import (
    HomomorphismSearch,
    count_homomorphisms,
    find_homomorphism,
    find_homomorphism_avoiding,
    find_injective_homomorphism,
    has_homomorphism,
    is_homomorphism,
    iter_homomorphisms,
)


class TestBasicSearch:
    def test_path_to_cycle(self):
        hom = find_homomorphism(directed_path(4), directed_cycle(3))
        assert hom is not None
        assert is_homomorphism(directed_path(4), directed_cycle(3), hom)

    def test_cycle_to_path_fails(self):
        assert not has_homomorphism(directed_cycle(3), directed_path(5))

    def test_cycle_lengths(self):
        # C_m -> C_n iff n divides m (directed cycles)
        assert has_homomorphism(directed_cycle(6), directed_cycle(3))
        assert has_homomorphism(directed_cycle(6), directed_cycle(2))
        assert not has_homomorphism(directed_cycle(6), directed_cycle(4))
        assert not has_homomorphism(directed_cycle(3), directed_cycle(6))

    def test_everything_maps_to_loop(self):
        loop = single_loop()
        for s in (directed_cycle(4), directed_path(3), directed_clique(3)):
            assert has_homomorphism(s, loop)

    def test_loop_needs_loop(self):
        assert not has_homomorphism(single_loop(), directed_cycle(3))

    def test_undirected_coloring(self):
        # odd cycle not 2-colorable: no hom C5 -> K2
        k2 = undirected_path(2)
        assert not has_homomorphism(undirected_cycle(5), k2)
        assert has_homomorphism(undirected_cycle(4), k2)

    def test_vocab_mismatch(self):
        other = Structure(Vocabulary({"R": 1}), [0], {})
        with pytest.raises(ValidationError):
            find_homomorphism(directed_path(2), other)

    def test_empty_source(self):
        empty = Structure(GRAPH_VOCABULARY, [], {})
        assert find_homomorphism(empty, directed_path(2)) == {}

    def test_empty_target_nonempty_source(self):
        empty = Structure(GRAPH_VOCABULARY, [], {})
        assert find_homomorphism(directed_path(2), empty) is None


class TestVerifier:
    def test_accepts_valid(self):
        hom = {0: 0, 1: 1, 2: 2, 3: 0}
        assert is_homomorphism(directed_path(4), directed_cycle(3), hom)

    def test_rejects_partial(self):
        assert not is_homomorphism(directed_path(3), directed_cycle(3), {0: 0})

    def test_rejects_fact_violation(self):
        assert not is_homomorphism(
            directed_path(2), directed_cycle(3), {0: 0, 1: 2}
        )

    def test_rejects_out_of_range(self):
        assert not is_homomorphism(
            directed_path(2), directed_cycle(3), {0: 0, 1: 99}
        )

    def test_constants_must_be_preserved(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        a = Structure(vocab, [0, 1], {"E": [(0, 1)]}, {"c": 0})
        b = Structure(vocab, [0, 1], {"E": [(0, 1), (1, 0)]}, {"c": 1})
        assert not is_homomorphism(a, b, {0: 0, 1: 1})
        assert is_homomorphism(a, b, {0: 1, 1: 0})


class TestCounting:
    def test_count_edges(self):
        # homs P2 -> G = number of edges of G
        g = random_directed_graph(5, 0.4, seed=1)
        assert count_homomorphisms(directed_path(2), g) == len(g.relation("E"))

    def test_count_into_clique(self):
        # P3 -> K3 (directed, loopless): 3 * 2 * 2 walks of length 2
        assert count_homomorphisms(directed_path(3), directed_clique(3)) == 12

    def test_iter_all_distinct(self):
        homs = list(iter_homomorphisms(directed_path(3), directed_cycle(3)))
        assert len(homs) == len({tuple(sorted(h.items())) for h in homs})

    def test_count_single_vertex(self):
        one = Structure(GRAPH_VOCABULARY, [0], {})
        assert count_homomorphisms(one, directed_cycle(4)) == 4


class TestConstraints:
    def test_injective(self):
        hom = find_injective_homomorphism(directed_path(3), directed_cycle(5))
        assert hom is not None
        assert len(set(hom.values())) == 3

    def test_injective_impossible(self):
        assert find_injective_homomorphism(
            directed_path(4), directed_cycle(3)
        ) is None

    def test_pinned(self):
        search = HomomorphismSearch(
            directed_path(2), directed_cycle(3), pinned={0: 1}
        )
        hom = search.first()
        assert hom == {0: 1, 1: 2}

    def test_pinned_unsatisfiable(self):
        # pin both endpoints to the same vertex: no loop in C3
        search = HomomorphismSearch(
            directed_path(2), directed_cycle(3), pinned={0: 1, 1: 1}
        )
        assert search.first() is None

    def test_pin_unknown_element(self):
        with pytest.raises(ValidationError):
            HomomorphismSearch(
                directed_path(2), directed_cycle(3), pinned={99: 0}
            )

    def test_avoiding(self):
        hom = find_homomorphism_avoiding(
            directed_path(2), directed_cycle(3), [0]
        )
        assert hom is not None
        assert 0 not in hom.values()

    def test_avoiding_everything(self):
        assert find_homomorphism_avoiding(
            directed_path(2), directed_cycle(3), [0, 1, 2]
        ) is None

    def test_constants_pin_automatically(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        a = Structure(vocab, [0, 1], {"E": [(0, 1)]}, {"c": 0})
        b = Structure(vocab, [0, 1, 2],
                      {"E": [(0, 1), (1, 2), (2, 0)]}, {"c": 1})
        hom = find_homomorphism(a, b)
        assert hom is not None and hom[0] == 1


class TestHigherArity:
    def test_ternary_relation(self):
        vocab = Vocabulary({"T": 3})
        a = Structure(vocab, [0, 1], {"T": [(0, 1, 0)]})
        b = Structure(vocab, ["x", "y"], {"T": [("x", "y", "x")]})
        hom = find_homomorphism(a, b)
        assert hom == {0: "x", 1: "y"}

    def test_repeated_positions_constrain(self):
        vocab = Vocabulary({"T": 3})
        a = Structure(vocab, [0, 1], {"T": [(0, 0, 1)]})
        b = Structure(vocab, ["x", "y"], {"T": [("x", "y", "y")]})
        assert find_homomorphism(a, b) is None


class TestVerifierExtraKeys:
    """The superset-mapping policy: extra keys are tolerated unless they
    shadow a constant symbol (see ``is_homomorphism``)."""

    def test_superset_mapping_accepted(self):
        hom = {0: 0, 1: 1, 2: 2, 3: 0, 99: 1, "junk": 2}
        assert is_homomorphism(directed_path(4), directed_cycle(3), hom)

    def test_extra_key_shadowing_source_constant_rejected(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        a = Structure(vocab, [0, 1], {"E": [(0, 1)]}, {"c": 0})
        b = Structure(vocab, [0, 1], {"E": [(0, 1), (1, 0)]}, {"c": 0})
        assert is_homomorphism(a, b, {0: 0, 1: 1})
        # the stray "c" entry shadows the constant symbol c
        assert not is_homomorphism(a, b, {0: 0, 1: 1, "c": 1})

    def test_extra_key_shadowing_target_constant_rejected(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        plain = GRAPH_VOCABULARY
        a = Structure(plain, [0, 1], {"E": [(0, 1)]})
        b = Structure(plain, [0, 1], {"E": [(0, 1)]})
        assert is_homomorphism(a, b, {0: 0, 1: 1, "c": 0})  # no constants
        a2 = Structure(vocab, [0, 1], {"E": [(0, 1)]}, {"c": 0})
        b2 = Structure(vocab, [0, 1], {"E": [(0, 1)]}, {"c": 0})
        assert not is_homomorphism(a2, b2, {0: 0, 1: 1, "c": 0})

    def test_constant_named_element_is_not_extra(self):
        # an element literally called "c" that IS in the universe is fine
        vocab = Vocabulary({"E": 2}, ["c"])
        a = Structure(vocab, ["c", 1], {"E": [("c", 1)]}, {"c": "c"})
        b = Structure(vocab, ["c", 1], {"E": [("c", 1)]}, {"c": "c"})
        assert is_homomorphism(a, b, {"c": "c", 1: 1})


class TestVerifierDegenerateStructures:
    def test_empty_universe_source(self):
        empty = Structure(GRAPH_VOCABULARY, [], {})
        assert is_homomorphism(empty, directed_cycle(3), {})
        assert is_homomorphism(empty, empty, {})

    def test_empty_universe_with_extra_keys(self):
        empty = Structure(GRAPH_VOCABULARY, [], {})
        assert is_homomorphism(empty, directed_cycle(3), {"x": 0})

    def test_empty_source_vocab_mismatch(self):
        empty = Structure(GRAPH_VOCABULARY, [], {})
        other = Structure(Vocabulary({"R": 1}), [0], {})
        assert not is_homomorphism(empty, other, {})

    def test_constant_only_structures(self):
        vocab = Vocabulary({}, ["c"])
        a = Structure(vocab, [0], {}, {"c": 0})
        b = Structure(vocab, ["x", "y"], {}, {"c": "x"})
        assert is_homomorphism(a, b, {0: "x"})
        assert not is_homomorphism(a, b, {0: "y"})  # constant not preserved
        assert not is_homomorphism(a, b, {})        # not total

    def test_constant_only_search_agrees(self):
        vocab = Vocabulary({}, ["c"])
        a = Structure(vocab, [0, 1], {}, {"c": 0})
        b = Structure(vocab, ["x"], {}, {"c": "x"})
        hom = find_homomorphism(a, b)
        assert hom == {0: "x", 1: "x"}
        assert is_homomorphism(a, b, hom)
