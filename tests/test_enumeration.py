"""Unit tests for exhaustive structure enumeration and canonical forms."""

import pytest

from repro.exceptions import BudgetExceededError
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    are_isomorphic_small,
    canonical_form,
    connected_structures,
    enumerate_structures,
    enumerate_structures_up_to,
)
from repro.homomorphism import are_isomorphic


class TestEnumeration:
    def test_size_one_digraphs(self):
        # one element: E ⊆ {(0,0)} -> 2 structures, both canonical
        out = list(enumerate_structures(GRAPH_VOCABULARY, 1))
        assert len(out) == 2

    def test_size_two_digraphs_up_to_iso(self):
        # 2 elements, 4 possible edges -> 16 labeled, 10 up to iso
        out = list(enumerate_structures(GRAPH_VOCABULARY, 2))
        assert len(out) == 10

    def test_labeled_count(self):
        out = list(
            enumerate_structures(GRAPH_VOCABULARY, 2, up_to_isomorphism=False)
        )
        assert len(out) == 16

    def test_representatives_pairwise_nonisomorphic(self):
        out = list(enumerate_structures(GRAPH_VOCABULARY, 2))
        for i, a in enumerate(out):
            for b in out[i + 1:]:
                assert not are_isomorphic(a, b)

    def test_up_to_accumulates_sizes(self):
        out = list(enumerate_structures_up_to(GRAPH_VOCABULARY, 2))
        assert len(out) == 12  # 2 of size 1 + 10 of size 2

    def test_budget(self):
        vocab = Vocabulary({"T": 3})
        with pytest.raises(BudgetExceededError):
            list(enumerate_structures(vocab, 3, up_to_isomorphism=False,
                                      budget=10))

    def test_constants_unsupported(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        with pytest.raises(BudgetExceededError):
            list(enumerate_structures(vocab, 1))

    def test_unary_vocabulary(self):
        vocab = Vocabulary({"P": 1})
        out = list(enumerate_structures(vocab, 2))
        # P ⊆ {0,1} up to iso: {}, {0}, {0,1} -> 3
        assert len(out) == 3


class TestCanonicalForm:
    def test_isomorphic_structures_same_form(self):
        a = Structure(GRAPH_VOCABULARY, [0, 1, 2], {"E": [(0, 1), (1, 2)]})
        b = Structure(GRAPH_VOCABULARY, ["x", "y", "z"],
                      {"E": [("z", "x"), ("x", "y")]})
        assert canonical_form(a) == canonical_form(b)
        assert are_isomorphic_small(a, b)

    def test_nonisomorphic_differ(self):
        a = Structure(GRAPH_VOCABULARY, [0, 1], {"E": [(0, 1)]})
        b = Structure(GRAPH_VOCABULARY, [0, 1], {"E": [(0, 1), (1, 0)]})
        assert canonical_form(a) != canonical_form(b)
        assert not are_isomorphic_small(a, b)

    def test_size_mismatch(self):
        a = Structure(GRAPH_VOCABULARY, [0], {})
        b = Structure(GRAPH_VOCABULARY, [0, 1], {})
        assert not are_isomorphic_small(a, b)

    def test_constants_in_form(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        a = Structure(vocab, [0, 1], {"E": [(0, 1)]}, {"c": 0})
        b = Structure(vocab, [0, 1], {"E": [(0, 1)]}, {"c": 1})
        assert canonical_form(a) != canonical_form(b)


class TestConnectedEnumeration:
    def test_connected_filter(self):
        out = list(connected_structures(GRAPH_VOCABULARY, 2))
        # connected Gaifman graph on 2 elements needs at least one edge
        assert all(s.num_facts() > 0 for s in out)
        # of the 10 classes, exactly 3 lack a cross edge (E within loops)
        assert len(out) == 7
