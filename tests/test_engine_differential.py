"""Differential harness: the memoized engine vs a brute-force oracle.

Randomized (seeded) structure pairs are fed both to the engine and to a
naive oracle that enumerates *every* mapping of universes and validates
each with ``is_homomorphism``.  The harness asserts

* existence agreement on 500+ randomized cases (both query directions),
* that every witness the engine returns actually passes
  ``is_homomorphism`` — including witnesses served from the cache on a
  repeated query.
"""

import itertools

import pytest

from repro.engine import HomEngine
from repro.homomorphism import is_homomorphism
from repro.structures import Structure, Vocabulary, random_structure

GRAPH = Vocabulary({"E": 2})
COLORED = Vocabulary({"E": 2, "P": 1})

# One engine for the whole module so repeated pairs exercise the cache.
ENGINE = HomEngine()


def brute_force_has_homomorphism(source: Structure, target: Structure) -> bool:
    """Oracle: try every mapping universe(source) → universe(target)."""
    if source.vocabulary.relations != target.vocabulary.relations:
        return False
    src = list(source.universe)
    if not src:
        return is_homomorphism(source, target, {})
    tgt = list(target.universe)
    if not tgt:
        return False
    for images in itertools.product(tgt, repeat=len(src)):
        if is_homomorphism(source, target, dict(zip(src, images))):
            return True
    return False


def _random_pair(vocabulary, seed):
    size_a = 1 + seed % 4
    size_b = 1 + (seed // 4) % 4
    density_a = 0.15 + 0.2 * (seed % 3)
    density_b = 0.15 + 0.2 * ((seed // 3) % 3)
    a = random_structure(vocabulary, size_a, density_a, seed=2 * seed)
    b = random_structure(vocabulary, size_b, density_b, seed=2 * seed + 1)
    return a, b


def _check_pair(a, b):
    """One differential case: engine vs oracle, twice (second is cached)."""
    expected = brute_force_has_homomorphism(a, b)
    for attempt in range(2):
        witness = ENGINE.find_homomorphism(a, b)
        assert (witness is not None) == expected, (
            f"engine disagrees with oracle on attempt {attempt}: "
            f"{a!r} -> {b!r}"
        )
        if witness is not None:
            assert is_homomorphism(a, b, witness), (
                f"engine returned an invalid witness on attempt {attempt}"
            )


@pytest.mark.parametrize("seed", range(150))
def test_differential_graph_pairs(seed):
    a, b = _random_pair(GRAPH, seed)
    _check_pair(a, b)
    _check_pair(b, a)


@pytest.mark.parametrize("seed", range(100))
def test_differential_colored_pairs(seed):
    a, b = _random_pair(COLORED, seed)
    _check_pair(a, b)
    _check_pair(b, a)


def test_harness_covers_500_cases():
    """The parametrized sweeps above check >= 500 (pair, direction) cases."""
    assert 2 * 150 + 2 * 100 >= 500


def test_cache_hits_occurred():
    """The repeated queries in the sweeps actually hit the memo cache."""
    assert ENGINE.cache.hits >= 250
    assert ENGINE.stats.cache_hits == ENGINE.cache.hits


def test_differential_empty_and_degenerate():
    empty = Structure(GRAPH, [])
    loopy = Structure(GRAPH, [0], {"E": [(0, 0)]})
    edge = Structure(GRAPH, [0, 1], {"E": [(0, 1)]})
    for a, b in itertools.product([empty, loopy, edge], repeat=2):
        _check_pair(a, b)
