"""Unit tests for homomorphism counting and Lovász vectors."""

from itertools import combinations

import pytest

from repro.homomorphism import are_isomorphic, is_core
from repro.homomorphism.counting import (
    automorphism_count,
    endomorphism_count,
    lovasz_agrees_with_isomorphism,
    lovasz_distinguishes,
    lovasz_vector,
    surjective_hom_count,
)
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    directed_clique,
    directed_cycle,
    directed_path,
    enumerate_structures,
    single_loop,
    undirected_cycle,
)


class TestBasicCounts:
    def test_endomorphisms_of_cycle(self):
        # endos of a directed cycle = rotations
        assert endomorphism_count(directed_cycle(4)) == 4

    def test_automorphisms_of_cycle(self):
        assert automorphism_count(directed_cycle(5)) == 5

    def test_automorphisms_of_path(self):
        assert automorphism_count(directed_path(4)) == 1

    def test_core_has_endos_equal_autos(self):
        for s in (directed_cycle(3), directed_path(3), single_loop()):
            assert is_core(s)
            assert endomorphism_count(s) == automorphism_count(s)

    def test_non_core_has_more_endos(self):
        s = undirected_cycle(4)  # core K2
        assert endomorphism_count(s) > automorphism_count(s)

    def test_surjective_count(self):
        # surjective homs C6 -> C3: the 3 rotated windings
        assert surjective_hom_count(directed_cycle(6), directed_cycle(3)) == 3
        assert surjective_hom_count(directed_path(2), directed_cycle(3)) == 0


class TestLovaszVectors:
    def test_vector_positions_are_counts(self):
        v = lovasz_vector(directed_cycle(3), 1)
        # size-1 test structures: a lone point (3 homs) and a loop (0)
        assert sorted(v) == [0, 3]

    def test_isomorphic_structures_same_vector(self):
        a = directed_cycle(3)
        b = a.rename({0: "x", 1: "y", 2: "z"})
        assert lovasz_vector(a, 2) == lovasz_vector(b, 2)

    def test_distinguishes_non_isomorphic(self):
        assert lovasz_distinguishes(directed_cycle(3), directed_path(3), 2)
        assert lovasz_distinguishes(single_loop(), directed_clique(2), 1)

    def test_finer_than_hom_equivalence(self):
        # C3 and C3+C3 are hom-equivalent but Lovász-distinct
        from repro.structures import disjoint_union

        one = directed_cycle(3)
        two = disjoint_union(one, one)
        assert lovasz_distinguishes(one, two, 1)

    def test_lovasz_theorem_on_all_two_element_structures(self):
        """Lovász: vector equality == isomorphism (exhaustive, size 2)."""
        structures = list(enumerate_structures(GRAPH_VOCABULARY, 2))
        for a, b in combinations(structures, 2):
            assert not are_isomorphic(a, b)
            assert lovasz_distinguishes(a, b, 2), (a, b)

    @pytest.mark.parametrize("pair", [
        (directed_cycle(3), directed_cycle(3)),
        (directed_path(2), directed_path(2)),
        (directed_path(2), single_loop()),
    ])
    def test_agreement_helper(self, pair):
        assert lovasz_agrees_with_isomorphism(*pair)
