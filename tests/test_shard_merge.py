"""Multi-journal merge: fencing, torn tails, damage, grid coverage.

Hand-crafted shard journals exercise every conflict the merge tool must
resolve: duplicate keys across fences (a stale pre-steal writer racing
its thief), torn tails from hard kills, checksum-corrupt interior
lines, absent journals, and grids with missing or unexpected keys.
"""

import json
import os
import zlib

import pytest

from repro.cli import main
from repro.distributed.journal import FencedShardJournal
from repro.distributed.merge import (
    merge_journals,
    normalize_results,
    read_done_keys,
    scan_shard_journal,
    write_combined_journal,
)
from repro.distributed.sharding import journal_path, shard_journal_paths
from repro.resources import SweepJournal


def _write_fenced(path, records, fence, owner):
    """Append checksummed records stamped with one writer's fence."""
    journal = FencedShardJournal(path, fence=fence, owner=owner)
    for key, result in records:
        journal.record(key, result)


# ---------------------------------------------------------------------------
# Fence resolution
# ---------------------------------------------------------------------------
def test_duplicate_keys_resolve_to_highest_fence(tmp_path):
    """A stale fence-1 line *after* the thief's fence-2 line (the
    classic post-steal race) loses; and vice versa."""
    path = str(tmp_path / "shard.jsonl")
    _write_fenced(path, [("x", {"status": "ok", "result": 1})], 2, "thief")
    _write_fenced(path, [("x", {"status": "ok", "result": 0})], 1, "victim")

    scan = scan_shard_journal(path)
    assert len(scan.records) == 2
    report = merge_journals([path])
    assert report.results["x"] == {"status": "ok", "result": 1}
    assert report.fences["x"] == (2, "thief")
    assert report.fenced_out == 1
    assert report.duplicate_keys == ["x"]
    assert not report.clean  # a fenced-out writer is a finding


def test_stale_line_before_thief_line_also_loses(tmp_path):
    path = str(tmp_path / "shard.jsonl")
    _write_fenced(path, [("x", {"status": "ok", "result": 0})], 1, "victim")
    _write_fenced(path, [("x", {"status": "ok", "result": 1})], 2, "thief")
    report = merge_journals([path])
    assert report.results["x"] == {"status": "ok", "result": 1}
    assert report.fenced_out == 1


def test_same_fence_re_record_is_superseded_not_fenced(tmp_path):
    path = str(tmp_path / "shard.jsonl")
    _write_fenced(
        path,
        [("x", {"status": "ok", "result": 0}),
         ("x", {"status": "ok", "result": 7})],
        1, "only",
    )
    report = merge_journals([path])
    assert report.results["x"]["result"] == 7  # later line wins
    assert report.fenced_out == 0
    assert report.duplicate_keys == ["x"]
    assert report.clean


def test_reloading_a_journal_fences_out_stale_lines(tmp_path):
    """FencedShardJournal itself applies the same rule on reload."""
    path = str(tmp_path / "shard.jsonl")
    _write_fenced(path, [("x", {"status": "ok", "result": 1})], 2, "thief")
    _write_fenced(path, [("x", {"status": "ok", "result": 0})], 1, "victim")
    journal = FencedShardJournal(path, fence=3, owner="reader")
    assert journal.result("x") == {"status": "ok", "result": 1}
    assert journal.key_fence("x") == (2, "thief")
    assert journal.journal_stats()["fenced_out"] == 1


# ---------------------------------------------------------------------------
# Damage
# ---------------------------------------------------------------------------
def test_torn_tail_is_recovered_not_a_finding(tmp_path):
    path = str(tmp_path / "shard.jsonl")
    _write_fenced(path, [("x", {"status": "ok", "result": 1})], 1, "r1")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"v": 2, "crc": "dead', )  # mid-write SIGKILL
    scan = scan_shard_journal(path)
    assert scan.torn_tail == 1
    assert scan.integrity() == "recovered"
    report = merge_journals([path], expected_keys=["x"])
    assert report.clean
    # Read-only: the torn tail must still be on disk afterwards.
    with open(path, encoding="utf-8") as fh:
        assert fh.read().endswith('"crc": "dead')


def test_corrupt_interior_line_is_a_finding(tmp_path):
    path = str(tmp_path / "shard.jsonl")
    _write_fenced(path, [("x", {"status": "ok", "result": 1})], 1, "r1")
    entry = {"key": "y", "result": {"status": "ok", "result": 2}}
    bad_crc = f"{zlib.crc32(b'not the payload') & 0xFFFFFFFF:08x}"
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"v": 2, "crc": bad_crc, "entry": entry}) + "\n")
    scan = scan_shard_journal(path)
    assert scan.corrupt == 1
    assert scan.integrity() == "corrupt"
    report = merge_journals([path], expected_keys=["x", "y"])
    assert not report.clean
    assert report.corrupt_lines == 1
    assert report.missing == ["y"]  # the damaged record is truly lost


def test_missing_journal_is_a_finding(tmp_path):
    present = str(tmp_path / "shard-0000.jsonl")
    absent = str(tmp_path / "shard-0001.jsonl")
    _write_fenced(present, [("x", {"status": "ok"})], 1, "r1")
    report = merge_journals([present, absent], expected_keys=["x"])
    assert not report.clean
    stats = {s["path"]: s for s in report.shards}
    assert stats[present]["integrity"] == "ok"
    assert stats[absent]["integrity"] == "missing"


def test_grid_coverage_missing_and_unexpected(tmp_path):
    path = str(tmp_path / "shard.jsonl")
    _write_fenced(
        path,
        [("b", {"status": "ok"}), ("stray", {"status": "ok"})],
        1, "r1",
    )
    report = merge_journals([path], expected_keys=["a", "b"])
    assert report.missing == ["a"]
    assert report.unexpected == ["stray"]
    assert report.findings == 2
    # Expected keys come first, in grid order; strays after.
    assert list(report.results) == ["b", "stray"]


def test_legacy_v1_lines_load_at_fence_zero(tmp_path):
    path = str(tmp_path / "shard.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"key": "old", "result": {"status": "ok"}}) + "\n")
    _write_fenced(path, [("old", {"status": "ok", "result": 9})], 1, "r1")
    scan = scan_shard_journal(path)
    assert scan.legacy == 1
    report = merge_journals([path])
    assert report.results["old"]["result"] == 9
    assert report.fenced_out == 1  # the fence-0 legacy line lost


# ---------------------------------------------------------------------------
# Outputs
# ---------------------------------------------------------------------------
def test_combined_journal_resumes_as_plain_sweep_journal(tmp_path):
    shard_a = str(tmp_path / "a.jsonl")
    shard_b = str(tmp_path / "b.jsonl")
    _write_fenced(shard_a, [("k1", {"status": "ok", "result": 1})], 1, "r1")
    _write_fenced(shard_b, [("k2", {"status": "ok", "result": 2})], 3, "r2")
    report = merge_journals([shard_a, shard_b], expected_keys=["k1", "k2"])
    combined = str(tmp_path / "combined.jsonl")
    write_combined_journal(combined, report)
    journal = SweepJournal(combined)
    assert journal.integrity() == "ok"
    assert len(journal) == 2
    assert journal.result("k2") == {"status": "ok", "result": 2}


def test_read_done_keys_is_read_only_and_fence_aware(tmp_path):
    path = str(tmp_path / "shard.jsonl")
    _write_fenced(path, [("x", {"status": "ok"})], 1, "r1")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"torn')
    before = os.path.getsize(path)
    done = read_done_keys(path)
    assert done == {"x": 1}
    assert os.path.getsize(path) == before  # no truncation


def test_normalize_strips_exactly_the_volatile_fields():
    results = {
        "k": {
            "status": "ok",
            "elapsed_s": 0.123,
            "result": {"value": 1, "nodes": 42, "backtracks": 7},
        },
        "q": {"status": "unknown", "error": "DeadlineExceededError",
              "elapsed_s": 9.9},
    }
    slim = normalize_results(results)
    assert slim["k"] == {"status": "ok", "result": {"value": 1}}
    assert slim["q"] == {"status": "unknown",
                         "error": "DeadlineExceededError"}
    # The input is not mutated.
    assert results["k"]["elapsed_s"] == 0.123


# ---------------------------------------------------------------------------
# The CLI
# ---------------------------------------------------------------------------
def test_cli_merge_exit_0_when_clean(tmp_path, capsys):
    path = str(journal_path(str(tmp_path), 0))
    os.makedirs(os.path.dirname(path), exist_ok=True)
    _write_fenced(path, [("x", {"status": "ok"})], 1, "r1")
    code = main(["merge-journals", path])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"]
    assert payload["instances"] == 1


def test_cli_merge_exit_2_on_findings(tmp_path, capsys):
    shard_dir = str(tmp_path)
    path = journal_path(shard_dir, 0)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    _write_fenced(path, [("x", {"status": "ok", "result": 1})], 2, "thief")
    _write_fenced(path, [("x", {"status": "ok", "result": 0})], 1, "victim")
    code = main(["merge-journals", "--shard-dir", shard_dir, "--shards", "2"])
    assert code == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["fenced_out"] == 1
    # shard 1's journal never existed: reported per shard.
    integrity = [s["integrity"] for s in payload["shards"]]
    assert integrity == ["corrupt", "missing"] or integrity == [
        "ok", "missing"
    ]
    assert payload["results"]["x"]["result"] == 1


def test_cli_merge_requires_inputs(tmp_path, capsys):
    assert main(["merge-journals"]) == 2
    assert main(["merge-journals", "--shard-dir", str(tmp_path)]) == 2
    capsys.readouterr()


def test_cli_merge_normalize_and_output(tmp_path, capsys):
    path = str(tmp_path / "shard.jsonl")
    _write_fenced(
        path,
        [("x", {"status": "ok", "elapsed_s": 1.0,
                "result": {"value": 3, "nodes": 5}})],
        1, "r1",
    )
    combined = str(tmp_path / "combined.jsonl")
    code = main(["merge-journals", path, "--normalize",
                 "--output", combined])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["results"]["x"] == {
        "status": "ok", "result": {"value": 3}
    }
    # --normalize affects the report only; the combined journal keeps
    # the full records.
    journal = SweepJournal(combined)
    assert journal.result("x")["elapsed_s"] == 1.0
    assert shard_journal_paths(str(tmp_path), 1)  # layout helper sanity
