"""Hand-crafted journal files exercising every v2 recovery path.

Unlike the round-trip tests in ``test_resources.py`` (which write
through :meth:`SweepJournal.record`), every journal here is built from
raw bytes, so the exact on-disk shape — torn tails, checksum mismatches,
legacy v1 lines, superseding records, blank lines, malformed JSON — is
pinned down, and ``journal_stats`` is asserted counter-by-counter.
"""

import json
import os
import zlib

from repro.resources import SweepJournal


def _crc(entry: dict) -> str:
    payload = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(payload.encode('utf-8')) & 0xFFFFFFFF:08x}"


def v2_line(key: str, result) -> str:
    """A well-formed v2 journal line (checksummed), newline included."""
    entry = {"key": key, "result": result}
    return json.dumps(
        {"v": 2, "crc": _crc(entry), "entry": entry}, sort_keys=True
    ) + "\n"


def v1_line(key: str, result) -> str:
    """A legacy (pre-checksum) line, newline included."""
    return json.dumps({"key": key, "result": result}) + "\n"


def write_journal(tmp_path, content: str) -> str:
    path = str(tmp_path / "journal.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    return path


def stats_of(path: str) -> dict:
    return SweepJournal(path).journal_stats()


class TestCleanJournals:
    def test_missing_file_stats(self, tmp_path):
        stats = stats_of(str(tmp_path / "absent.jsonl"))
        assert stats["records"] == 0
        assert stats["lines"] == 0
        assert stats["legacy"] == stats["corrupt"] == 0
        assert stats["superseded"] == stats["torn_tail"] == 0
        assert stats["integrity"] == "ok"

    def test_empty_file_is_ok(self, tmp_path):
        stats = stats_of(write_journal(tmp_path, ""))
        assert stats["records"] == 0 and stats["lines"] == 0
        assert stats["integrity"] == "ok"

    def test_blank_lines_count_as_lines_not_corruption(self, tmp_path):
        path = write_journal(
            tmp_path, v2_line("a", 1) + "\n" + "   \n" + v2_line("b", 2)
        )
        stats = stats_of(path)
        assert stats["records"] == 2
        assert stats["lines"] == 4  # both blanks are complete lines
        assert stats["corrupt"] == 0
        assert stats["integrity"] == "ok"

    def test_inner_key_order_does_not_matter(self, tmp_path):
        # the checksum covers the *canonical* (sorted, compact)
        # serialization, so a semantically equal line with reordered
        # inner keys and extra whitespace still verifies
        entry = {"result": 5, "key": "a"}
        line = json.dumps({"entry": entry, "crc": _crc(entry), "v": 2})
        journal = SweepJournal(write_journal(tmp_path, line + "\n"))
        assert journal.result("a") == 5
        assert journal.journal_stats()["integrity"] == "ok"


class TestTornTails:
    def test_partial_json_tail_truncated(self, tmp_path):
        intact = v2_line("a", 1) + v2_line("b", 2)
        path = write_journal(tmp_path, intact + '{"v": 2, "crc": "ab')
        journal = SweepJournal(path)
        stats = journal.journal_stats()
        assert stats["records"] == 2
        assert stats["lines"] == 2  # the torn chunk is not a line
        assert stats["torn_tail"] == 1
        assert stats["corrupt"] == 0
        assert stats["integrity"] == "recovered"
        # the file is repaired in place, byte-exact
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == intact

    def test_valid_json_without_newline_is_still_torn(self, tmp_path):
        # a record whose final "\n" never hit the disk cannot be trusted
        # complete, even if it happens to parse
        path = write_journal(
            tmp_path, v2_line("a", 1) + v2_line("b", 2).rstrip("\n")
        )
        journal = SweepJournal(path)
        assert journal.is_done("a")
        assert not journal.is_done("b")
        stats = journal.journal_stats()
        assert stats["records"] == 1
        assert stats["torn_tail"] == 1
        assert stats["integrity"] == "recovered"

    def test_file_that_is_one_torn_line_truncates_to_empty(self, tmp_path):
        path = write_journal(tmp_path, '{"v": 2')
        journal = SweepJournal(path)
        stats = journal.journal_stats()
        assert stats["records"] == stats["lines"] == 0
        assert stats["torn_tail"] == 1
        assert stats["integrity"] == "recovered"
        assert os.path.getsize(path) == 0

    def test_reload_after_recovery_is_clean(self, tmp_path):
        path = write_journal(tmp_path, v2_line("a", 1) + '{"partial')
        SweepJournal(path)  # first load truncates
        stats = stats_of(path)
        assert stats["torn_tail"] == 0
        assert stats["integrity"] == "ok"
        assert stats["records"] == 1


class TestBadChecksums:
    def test_wrong_crc_is_corrupt(self, tmp_path):
        entry = {"key": "a", "result": 1}
        line = json.dumps({"v": 2, "crc": "00000000", "entry": entry})
        journal = SweepJournal(write_journal(tmp_path, line + "\n"))
        assert not journal.is_done("a")
        stats = journal.journal_stats()
        assert stats["records"] == 0
        assert stats["lines"] == 1
        assert stats["corrupt"] == 1
        assert stats["integrity"] == "corrupt"

    def test_uppercase_crc_does_not_verify(self, tmp_path):
        entry = {"key": "a", "result": 1}
        line = json.dumps(
            {"v": 2, "crc": _crc(entry).upper(), "entry": entry}
        )
        stats = stats_of(write_journal(tmp_path, line + "\n"))
        assert stats["corrupt"] == 1

    def test_tampered_result_detected(self, tmp_path):
        entry = {"key": "a", "result": 1}
        crc = _crc(entry)
        entry["result"] = 999  # bit rot after the checksum was computed
        line = json.dumps({"v": 2, "crc": crc, "entry": entry})
        journal = SweepJournal(write_journal(tmp_path, line + "\n"))
        assert journal.result("a") is None
        assert journal.journal_stats()["corrupt"] == 1

    def test_structural_damage_variants(self, tmp_path):
        content = "".join([
            "not json at all\n",                    # unparseable
            "[1, 2, 3]\n",                          # parses, not a dict
            '"just a string"\n',                    # parses, not a dict
            '{"v": 2, "crc": "00000000"}\n',        # crc without entry
            '{"v": 2, "crc": "00000000", "entry": [1]}\n',  # entry not dict
            json.dumps({
                "v": 2,
                "crc": _crc({"result": 1}),
                "entry": {"result": 1},             # entry without key
            }) + "\n",
            v2_line("good", 42),
        ])
        journal = SweepJournal(write_journal(tmp_path, content))
        stats = journal.journal_stats()
        assert journal.result("good") == 42
        assert stats["records"] == 1
        assert stats["lines"] == 7
        assert stats["corrupt"] == 6
        assert stats["integrity"] == "corrupt"


class TestLegacyLines:
    def test_pure_v1_journal(self, tmp_path):
        path = write_journal(
            tmp_path, v1_line("a", 1) + v1_line("b", {"w": 2})
        )
        journal = SweepJournal(path)
        assert journal.result("a") == 1
        assert journal.result("b") == {"w": 2}
        stats = journal.journal_stats()
        assert stats["records"] == 2
        assert stats["legacy"] == 2
        assert stats["corrupt"] == 0
        assert stats["integrity"] == "ok"  # old format is not damage

    def test_v1_and_v2_interleaved_last_wins(self, tmp_path):
        path = write_journal(
            tmp_path,
            v1_line("a", "old") + v2_line("a", "new") + v2_line("b", 1)
            + v1_line("b", 2),
        )
        journal = SweepJournal(path)
        assert journal.result("a") == "new"   # v2 supersedes v1
        assert journal.result("b") == 2       # v1 supersedes v2 too
        stats = journal.journal_stats()
        assert stats["records"] == 2
        assert stats["legacy"] == 2
        assert stats["superseded"] == 2
        assert SweepJournal(path).needs_compaction()


class TestSupersededCounting:
    def test_exact_superseded_count(self, tmp_path):
        path = write_journal(
            tmp_path,
            v2_line("a", 1) + v2_line("a", 2) + v2_line("a", 3)
            + v2_line("b", 1) + v2_line("b", 2),
        )
        journal = SweepJournal(path)
        stats = journal.journal_stats()
        assert stats["records"] == 2
        assert stats["lines"] == 5
        assert stats["superseded"] == 3  # two rewrites of a, one of b
        assert journal.result("a") == 3 and journal.result("b") == 2

    def test_compaction_purges_and_zeroes_counters(self, tmp_path):
        path = write_journal(
            tmp_path,
            v1_line("a", 1) + v2_line("a", 2) + "garbage\n"
            + v2_line("b", 1),
        )
        journal = SweepJournal(path)
        assert journal.needs_compaction()
        stats = journal.compact()
        assert stats["records"] == 2
        assert stats["lines"] == 2
        assert stats["legacy"] == stats["corrupt"] == 0
        assert stats["superseded"] == 0
        assert stats["compactions"] == 1
        assert stats["integrity"] == "ok"
        # the rewritten file reloads with pristine counters
        reloaded = stats_of(path)
        assert reloaded["records"] == reloaded["lines"] == 2
        assert reloaded["integrity"] == "ok"


class TestCompositeJournal:
    def test_everything_at_once_exact_counters(self, tmp_path):
        path = write_journal(tmp_path, "".join([
            v1_line("a", "v1"),                   # legacy
            v2_line("a", "v2"),                   # supersedes a
            "\n",                                 # blank (benign)
            "корр\n",                             # unparseable (corrupt)
            v2_line("b", [1, 2]),
            v1_line("b", [3]),                    # legacy, supersedes b
            '{"v": 2, "crc": "deadbeef", "entry": {"key": "c", '
            '"result": 0}}\n',                    # bad crc (corrupt)
            v2_line("d", None),
            '{"v": 2, "crc": "to',                # torn tail
        ]))
        journal = SweepJournal(path)
        stats = journal.journal_stats()
        assert stats["records"] == 3              # a, b, d (c rejected)
        assert stats["lines"] == 8                # torn chunk excluded
        assert stats["legacy"] == 2
        assert stats["corrupt"] == 2
        assert stats["superseded"] == 2
        assert stats["torn_tail"] == 1
        assert stats["integrity"] == "corrupt"    # damage beats recovery
        assert journal.result("a") == "v2"
        assert journal.result("b") == [3]
        assert journal.result("d") is None and journal.is_done("d")
        # appending after recovery keeps the file well-formed
        journal.record("e", 5)
        reloaded = SweepJournal(path)
        assert reloaded.result("e") == 5
        assert reloaded.journal_stats()["torn_tail"] == 0
