"""Unit tests for the density condition (Theorem 3.2 / Corollary 3.3)."""

from repro.core import (
    corollary_3_3_witnesses,
    density_condition_holds,
    enumerate_minimal_models,
    has_scattered_witness,
    minimal_models_density_report,
)
from repro.logic import parse_formula
from repro.structures import (
    GRAPH_VOCABULARY,
    clique_structure,
    star_structure,
    undirected_path,
)


def fo(text):
    return parse_formula(text, GRAPH_VOCABULARY)


class TestWitnessSearch:
    def test_star_yields_witness(self):
        # the star becomes scattered after removing its hub (Section 4)
        witness = has_scattered_witness(star_structure(15), s=1, d=1, m=5)
        assert witness is not None
        assert len(witness.removed) <= 1
        assert len(witness.scattered) >= 5

    def test_long_path_yields_witness_without_removal(self):
        witness = has_scattered_witness(undirected_path(20), s=0, d=1, m=4)
        assert witness is not None
        assert witness.removed == ()

    def test_clique_is_dense(self):
        # cliques never produce scattered sets after 1 removal
        assert density_condition_holds(clique_structure(6), s=1, d=1, m=2)

    def test_small_structure_dense(self):
        assert density_condition_holds(undirected_path(3), s=0, d=1, m=3)


class TestCorollary33:
    def test_family_of_paths(self):
        family = [undirected_path(n) for n in (3, 10, 20)]
        witnesses = corollary_3_3_witnesses(family, s=0, d=1, m=3)
        # large members yield witnesses; tiny ones may not
        assert witnesses[1] is not None
        assert witnesses[2] is not None


class TestTheorem32OnRealMinimalModels:
    def test_minimal_models_of_preserved_query_are_dense(self):
        """Theorem 3.2 instantiated: the minimal models of a preserved FO
        query are small and dense (no scattered witness at these params)."""
        walk3 = fo("exists x y z. E(x, y) & E(y, z) & E(z, x)")
        models = enumerate_minimal_models(
            walk3, GRAPH_VOCABULARY, 3, assume_preserved=True
        )
        report = minimal_models_density_report(models, s=0, d=1, m=2)
        assert report["models"] == 2
        assert report["dense"] == 2
        assert report["max_size"] == 3

    def test_report_structure(self):
        report = minimal_models_density_report([], 0, 1, 2)
        assert report["models"] == 0 and report["max_size"] == 0
