"""Unit tests for exact and heuristic treewidth."""

import pytest

from repro.exceptions import BudgetExceededError
from repro.graphtheory import (
    Graph,
    binary_tree,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    grid_graph,
    has_treewidth_less_than,
    k_tree,
    min_degree_order,
    min_fill_order,
    path_graph,
    random_graph,
    star_graph,
    treewidth_decomposition,
    treewidth_exact,
    treewidth_lower_bound,
    treewidth_upper_bound,
)

KNOWN_TREEWIDTHS = [
    (path_graph(8), 1),
    (star_graph(6), 1),
    (binary_tree(3), 1),
    (cycle_graph(5), 2),
    (cycle_graph(8), 2),
    (complete_graph(4), 3),
    (complete_graph(6), 5),
    (complete_bipartite_graph(3, 3), 3),
    (grid_graph(2, 5), 2),
    (grid_graph(3, 3), 3),
    (grid_graph(3, 4), 3),
]


class TestExact:
    @pytest.mark.parametrize("graph,expected", KNOWN_TREEWIDTHS)
    def test_known_values(self, graph, expected):
        assert treewidth_exact(graph) == expected

    def test_empty_and_trivial(self):
        assert treewidth_exact(Graph()) == 0
        assert treewidth_exact(empty_graph(5)) == 0
        assert treewidth_exact(path_graph(1)) == 0

    def test_disconnected_max_over_components(self):
        g = complete_graph(4).disjoint_union(path_graph(5))
        assert treewidth_exact(g) == 3

    def test_k_trees(self):
        for k in (1, 2, 3):
            assert treewidth_exact(k_tree(k, 9, seed=k)) == k

    def test_budget_guard(self):
        # A big random graph whose bounds don't close should hit the limit.
        g = random_graph(30, 0.4, seed=1)
        lower = treewidth_lower_bound(g)
        upper, _ = treewidth_upper_bound(g)
        if lower != upper:
            with pytest.raises(BudgetExceededError):
                treewidth_exact(g, limit=5)

    def test_membership_helper(self):
        assert has_treewidth_less_than(path_graph(6), 2)
        assert not has_treewidth_less_than(grid_graph(3, 3), 3)
        assert not has_treewidth_less_than(path_graph(3), 0)


class TestBounds:
    @pytest.mark.parametrize("graph,expected", KNOWN_TREEWIDTHS)
    def test_upper_bound_is_upper(self, graph, expected):
        upper, decomp = treewidth_upper_bound(graph)
        assert upper >= expected
        decomp.validate(graph)
        assert decomp.width() == upper

    @pytest.mark.parametrize("graph,expected", KNOWN_TREEWIDTHS)
    def test_lower_bound_is_lower(self, graph, expected):
        assert treewidth_lower_bound(graph) <= expected

    def test_heuristics_exact_on_trees(self):
        g = binary_tree(4)
        upper, _ = treewidth_upper_bound(g)
        assert upper == 1

    def test_orders_are_permutations(self):
        g = grid_graph(3, 3)
        for order_fn in (min_fill_order, min_degree_order):
            order = order_fn(g)
            assert sorted(order, key=repr) == sorted(g.vertices, key=repr)


class TestOptimalDecomposition:
    @pytest.mark.parametrize("graph,expected", KNOWN_TREEWIDTHS[:7])
    def test_decomposition_achieves_treewidth(self, graph, expected):
        td = treewidth_decomposition(graph)
        td.validate(graph)
        assert td.width() == expected

    def test_random_cross_check(self):
        for seed in range(5):
            g = random_graph(9, 0.35, seed=seed)
            td = treewidth_decomposition(g)
            td.validate(g)
            assert td.width() == treewidth_exact(g)
