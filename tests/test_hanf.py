"""Unit tests for Hanf locality."""

import pytest

from repro.exceptions import ValidationError
from repro.logic import ef_equivalent
from repro.logic.ef_games import acyclicity_separating_pair
from repro.logic.hanf import (
    hanf_equivalent,
    hanf_radius,
    hanf_type_multiset,
    neighborhood_substructure,
    neighborhood_type,
)
from repro.structures import (
    directed_cycle,
    directed_path,
    random_directed_graph,
    single_loop,
)


class TestNeighborhoodTypes:
    def test_ball_contents(self):
        sub = neighborhood_substructure(directed_path(5), 2, 1)
        assert sub.size() == 3
        assert sub.has_fact("__center__", (2,))

    def test_radius_zero(self):
        sub = neighborhood_substructure(directed_path(3), 1, 0)
        assert sub.size() == 1

    def test_unknown_center(self):
        with pytest.raises(ValidationError):
            neighborhood_substructure(directed_path(2), 99, 1)

    def test_interior_types_agree_across_structures(self):
        t1 = neighborhood_type(directed_path(5), 2, 1)
        t2 = neighborhood_type(directed_path(9), 4, 1)
        assert t1 == t2

    def test_endpoint_type_differs(self):
        assert neighborhood_type(directed_path(5), 0, 1) != \
            neighborhood_type(directed_path(5), 2, 1)

    def test_cycle_interiors_look_like_path_interiors(self):
        # a long cycle's radius-1 ball is a 3-path, same as path interiors
        t_cycle = neighborhood_type(directed_cycle(7), 3, 1)
        t_path = neighborhood_type(directed_path(7), 3, 1)
        assert t_cycle == t_path


class TestMultisets:
    def test_acyclicity_pair_has_equal_multisets(self):
        cyclic, acyclic = acyclicity_separating_pair(6)
        assert hanf_type_multiset(cyclic, 1) == hanf_type_multiset(acyclic, 1)

    def test_loop_type_unique(self):
        counts = hanf_type_multiset(single_loop(), 1)
        assert sum(counts.values()) == 1

    def test_radius_values(self):
        assert hanf_radius(0) == 0
        assert hanf_radius(1) == 1
        assert hanf_radius(2) == 4
        with pytest.raises(ValidationError):
            hanf_radius(-1)


class TestHanfCriterion:
    def test_soundness_against_ef(self):
        """hanf_equivalent(A, B, m) == True must imply ef_equivalent."""
        structures = [
            directed_path(3), directed_path(4), directed_cycle(3),
            directed_cycle(4), single_loop(),
            random_directed_graph(3, 0.4, 1),
        ]
        cyclic, acyclic = acyclicity_separating_pair(5)
        structures += [cyclic, acyclic]
        for a in structures:
            for b in structures:
                if hanf_equivalent(a, b, 1):
                    assert ef_equivalent(a, b, 1), (a, b)

    def test_detects_acyclicity_pair(self):
        cyclic, acyclic = acyclicity_separating_pair(8)
        assert hanf_equivalent(cyclic, acyclic, 1)

    def test_isomorphic_always_equivalent(self):
        a = directed_cycle(5)
        assert hanf_equivalent(a, a, 2)

    def test_threshold_override(self):
        # with threshold 1 the criterion only compares type supports
        a, b = directed_path(4), directed_path(6)
        assert hanf_equivalent(a, b, 1, threshold=1)
