"""Unit tests for JSON serialization."""

import pytest

from repro.exceptions import ValidationError
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    bicycle_with_hub_constant,
    directed_cycle,
    disjoint_union,
    directed_path,
    load_structure,
    save_structure,
    structure_from_dict,
    structure_from_json,
    structure_to_dict,
    structure_to_json,
    vocabulary_from_dict,
    vocabulary_to_dict,
)


class TestVocabularyRoundTrip:
    def test_basic(self):
        v = Vocabulary({"E": 2, "P": 1}, ["c"])
        assert vocabulary_from_dict(vocabulary_to_dict(v)) == v

    def test_no_constants(self):
        assert vocabulary_from_dict(
            vocabulary_to_dict(GRAPH_VOCABULARY)
        ) == GRAPH_VOCABULARY


class TestStructureRoundTrip:
    def test_simple(self):
        s = directed_cycle(4)
        assert structure_from_dict(structure_to_dict(s)) == s

    def test_json_string(self):
        s = directed_path(3)
        assert structure_from_json(structure_to_json(s)) == s

    def test_with_constants(self):
        s = bicycle_with_hub_constant(5)
        assert structure_from_json(structure_to_json(s)) == s

    def test_tagged_tuple_elements(self):
        s = disjoint_union(directed_path(2), directed_cycle(3))
        restored = structure_from_json(structure_to_json(s))
        assert restored == s
        assert (0, 0) in restored.universe_set

    def test_string_elements(self):
        s = Structure(GRAPH_VOCABULARY, ["a", "b"], {"E": [("a", "b")]})
        assert structure_from_json(structure_to_json(s)) == s

    def test_unserializable_element_rejected(self):
        s = Structure(GRAPH_VOCABULARY, [frozenset({1})], {})
        with pytest.raises(ValidationError):
            structure_to_json(s)

    def test_file_round_trip(self, tmp_path):
        s = directed_cycle(5)
        path = str(tmp_path / "cycle.json")
        save_structure(s, path)
        assert load_structure(path) == s

    def test_json_is_stable(self):
        s = directed_cycle(3)
        assert structure_to_json(s) == structure_to_json(s)

    def test_malformed_encoded_element(self):
        with pytest.raises(ValidationError):
            structure_from_dict(
                {
                    "vocabulary": {"relations": {"E": 2}, "constants": []},
                    "universe": [["bogus", 1]],
                    "relations": {},
                    "constants": {},
                }
            )
