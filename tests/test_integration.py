"""Integration tests: full cross-module pipelines from the paper.

Each test runs one of the experiments end-to-end at a small scale,
crossing at least three subpackages.
"""

from repro.core import (
    bicycle_sweep,
    bounded_treewidth_class,
    check_preserved_under_homomorphisms,
    finite_vcqk,
    lemma_4_2_witness,
    lemma_7_3_witness,
    minimal_models_are_cores,
    rewrite_to_ucq,
    ucq_equivalent_to_query_on,
)
from repro.cq import path_sentence_two_variables, ucq_from_formula
from repro.datalog import (
    bounded_recursive_program,
    certificate_defines_query,
    find_boundedness_certificate,
    stage_ucqs,
    transitive_closure_program,
    unboundedness_evidence,
)
from repro.graphtheory import random_tree, star_graph, treewidth_exact
from repro.homomorphism import has_homomorphism
from repro.logic import parse_formula
from repro.pebble import duplicator_wins, proposition_7_9_agrees
from repro.structures import (
    GRAPH_VOCABULARY,
    directed_cycle,
    directed_path,
    gaifman_graph,
    graph_as_structure,
    random_directed_graph,
    single_loop,
)


def fo(text):
    return parse_formula(text, GRAPH_VOCABULARY)


class TestRewritingPipelineE6:
    """FO sentence -> preservation check -> minimal models -> UCQ -> verify."""

    def test_full_pipeline_on_t2(self):
        query = fo("exists x y z. E(x, y) & E(y, z) & E(z, x)")
        samples = [random_directed_graph(4, 0.35, s) for s in range(8)]
        samples += [directed_cycle(3), directed_path(4), single_loop()]

        # 1. sampled preservation check passes
        assert check_preserved_under_homomorphisms(query, samples) is None

        # 2. rewrite on the full class and on T(3)
        t3 = bounded_treewidth_class(3)
        result = rewrite_to_ucq(
            query, GRAPH_VOCABULARY, structure_class=t3, max_size=3,
            verification_sample=[s for s in samples if t3.contains(s)],
        )

        # 3. minimal models are cores (Section 6.2's observation)
        assert minimal_models_are_cores(result.minimal_models)

        # 4. the UCQ agrees with the query everywhere we can check
        members = [s for s in samples if t3.contains(s)]
        assert ucq_equivalent_to_query_on(result.ucq, query, members)

    def test_ep_input_round_trips(self):
        """An EP sentence rewritten through minimal models stays equivalent
        to its direct UCQ normal form."""
        formula = fo("exists x. (E(x, x) | exists y. (E(x, y) & E(y, x)))")
        direct = ucq_from_formula(formula, GRAPH_VOCABULARY)
        via_models = rewrite_to_ucq(formula, GRAPH_VOCABULARY, max_size=2)
        assert direct.is_equivalent_to(via_models.ucq)


class TestDatalogPipelineE8:
    """Theorem 7.5 in action: certificates vs stage growth."""

    def test_bounded_side(self):
        program = bounded_recursive_program()
        cert = find_boundedness_certificate(program, "P")
        assert cert is not None
        samples = [random_directed_graph(4, 0.4, s) for s in range(5)]
        assert certificate_defines_query(cert, program, samples)

    def test_unbounded_side(self):
        tc = transitive_closure_program()
        assert find_boundedness_certificate(tc, "T", max_stage=3) is None
        rounds = unboundedness_evidence(tc, directed_path, [3, 5, 7])
        assert rounds[-1] > rounds[0]

    def test_stages_evaluate_correctly_along_the_way(self):
        from repro.datalog import verify_stage_against_evaluation

        tc = transitive_closure_program()
        for m in (1, 2, 3):
            assert verify_stage_against_evaluation(
                tc, directed_path(5), "T", m
            )


class TestPebblePipelineE9E11:
    def test_proposition_7_9_sweep(self):
        for n in (3, 4, 5):
            assert proposition_7_9_agrees(directed_path(n))
            assert proposition_7_9_agrees(directed_cycle(n))

    def test_pebble_game_vs_cqk_sentences(self):
        """Theorem 7.6 sampled: game outcome == CQ^2 sentence transfer."""
        from repro.logic import satisfies

        structures = [directed_path(n) for n in (2, 3, 4)]
        structures += [directed_cycle(3), directed_cycle(4)]
        sentences = [path_sentence_two_variables(n) for n in (1, 2, 3)]
        for a in structures:
            for b in structures:
                game = duplicator_wins(a, b, 2)
                transfer = all(
                    satisfies(b, f) for f in sentences if satisfies(a, f)
                )
                # game win implies sentence transfer (soundness direction)
                if game:
                    assert transfer


class TestLemma42PipelineE3:
    def test_treewidth_pipeline(self):
        """Graph family -> exact treewidth -> Lemma 4.2 witness -> verify."""
        for n in (20, 30):
            g = random_tree(n, seed=n)
            assert treewidth_exact(g) == 1
            witness = lemma_4_2_witness(g, 2, 1, 4)
            assert witness is not None

    def test_structure_level_round_trip(self):
        g = star_graph(20)
        s = graph_as_structure(g)
        assert treewidth_exact(gaifman_graph(s)) == 1
        witness = lemma_4_2_witness(gaifman_graph(s), 2, 2, 5)
        assert witness is not None


class TestSection62PipelineE7:
    def test_bicycles_end_to_end(self):
        reports = bicycle_sweep([5, 7])
        assert [r.core_degree for r in reports] == [3, 3]
        assert [r.expansion_core_degree for r in reports] == [5, 7]


class TestSection7PipelineE10:
    def test_lemma_7_3_with_homomorphism_check(self):
        sentence = finite_vcqk(
            [path_sentence_two_variables(n) for n in (1, 2, 3)], 2
        )
        target = directed_cycle(4)
        witness = lemma_7_3_witness(sentence, target)
        assert witness.treewidth < 2
        assert has_homomorphism(witness.minimal_model, target)
