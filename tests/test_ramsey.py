"""Unit tests for Ramsey bounds and witnesses."""

from itertools import combinations, product

import pytest

from repro.exceptions import ValidationError
from repro.graphtheory import (
    complete_graph,
    cycle_graph,
    empty_graph,
    find_monochromatic_subset,
    is_monochromatic,
    paper_r,
    path_graph,
    ramsey_bound,
    ramsey_graph_witness,
)


class TestBound:
    def test_pigeonhole_case(self):
        # k = 1: l * m elements can avoid a monochromatic (m+1)-set,
        # l * m + 1 cannot.
        assert ramsey_bound(2, 1, 3) == 6
        assert ramsey_bound(3, 1, 2) == 6

    def test_trivial_small_m(self):
        # m < k: any k-set works, so N = k - 1
        assert ramsey_bound(2, 3, 2) == 2

    def test_monotone_in_m(self):
        values = [ramsey_bound(2, 2, m) for m in (2, 3, 4)]
        assert values == sorted(values)

    def test_k0(self):
        assert ramsey_bound(2, 0, 5) == 5

    def test_invalid(self):
        with pytest.raises(ValidationError):
            ramsey_bound(0, 1, 1)

    def test_paper_alias(self):
        assert paper_r(2, 1, 4) == ramsey_bound(2, 1, 4)

    def test_pigeonhole_exhaustive(self):
        """Exhaustive: with > l*m elements, some color class has > m."""
        l, m = 2, 2
        n = ramsey_bound(l, 1, m) + 1
        for coloring_tuple in product(range(l), repeat=n):
            def coloring(sub, c=coloring_tuple):
                return c[sub[0]]

            found = find_monochromatic_subset(range(n), 1, coloring, m)
            assert found is not None

    def test_graph_case_statement_holds_at_bound(self):
        """For the (2,2) case, verify on K_6-style instances (the classical
        R(3,3)=6 fact) rather than at the astronomically larger bound."""
        n = 6
        # any 2-coloring of K_6's edges has a monochromatic triangle:
        # spot-check a few structured colorings
        colorings = []
        colorings.append(lambda pair: 0)
        colorings.append(lambda pair: (pair[0] + pair[1]) % 2)
        colorings.append(lambda pair: 1 if abs(pair[0] - pair[1]) in (1, 5) else 0)
        for coloring in colorings:
            found = find_monochromatic_subset(range(n), 2, coloring, 2)
            assert found is not None
            assert is_monochromatic(sorted(found), 2, coloring)


class TestWitnessSearch:
    def test_finds_clique(self):
        kind, vertices = ramsey_graph_witness(complete_graph(5), 2)
        assert kind == "clique" and len(vertices) == 3

    def test_finds_independent(self):
        kind, vertices = ramsey_graph_witness(empty_graph(5), 2)
        assert kind == "independent" and len(vertices) == 3

    def test_below_bound_may_fail(self):
        # C5 has neither a triangle nor an independent set of size 3? It
        # does have one (e.g. {0, 2}, size 2 only for m=2 -> need > 2).
        result = ramsey_graph_witness(cycle_graph(5), 2)
        assert result is None  # C5 is the R(3,3) > 5 witness

    def test_path_independent(self):
        kind, vertices = ramsey_graph_witness(path_graph(7), 2)
        assert kind == "independent"

    def test_monochromatic_checker(self):
        coloring = lambda pair: 0
        assert is_monochromatic([1, 2, 3], 2, coloring)

    def test_target_smaller_than_k(self):
        found = find_monochromatic_subset(range(4), 3, lambda s: 0, 1)
        assert found is not None and len(found) == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            find_monochromatic_subset(range(3), -1, lambda s: 0, 1)


class TestBitCap:
    def test_tower_guard(self):
        from repro.exceptions import BudgetExceededError

        # r(4, 3, 7) would need ~10^900 digits
        with pytest.raises(BudgetExceededError):
            ramsey_bound(4, 3, 7)

    def test_cap_parameter(self):
        from repro.exceptions import BudgetExceededError

        with pytest.raises(BudgetExceededError):
            ramsey_bound(2, 2, 30, bit_cap=100)
        assert ramsey_bound(2, 2, 3) > 0
