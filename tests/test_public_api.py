"""Tests of the public API surface: imports, __all__, exceptions."""

import importlib

import pytest

import repro
from repro.exceptions import (
    BudgetExceededError,
    ReproError,
    UnsupportedFragmentError,
    ValidationError,
)

SUBPACKAGES = [
    "repro.structures",
    "repro.homomorphism",
    "repro.logic",
    "repro.cq",
    "repro.datalog",
    "repro.graphtheory",
    "repro.pebble",
    "repro.core",
]


class TestImports:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        module = importlib.import_module(name)
        assert module is not None

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_has_no_duplicates(self, name):
        module = importlib.import_module(name)
        exported = getattr(module, "__all__", [])
        assert len(exported) == len(set(exported))

    def test_top_level_all(self):
        for symbol in repro.__all__:
            assert hasattr(repro, symbol)

    def test_cli_importable(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.prog == "repro"


class TestExceptionHierarchy:
    def test_subclasses(self):
        assert issubclass(ValidationError, ReproError)
        assert issubclass(UnsupportedFragmentError, ReproError)
        assert issubclass(BudgetExceededError, ReproError)

    def test_catchable_as_base(self):
        from repro.structures import GRAPH_VOCABULARY, Structure

        with pytest.raises(ReproError):
            Structure(GRAPH_VOCABULARY, [0], {"E": [(0,)]})

    def test_library_never_raises_bare_exceptions(self):
        """Spot-check: common misuse raises typed errors, not KeyError."""
        from repro.structures import GRAPH_VOCABULARY, directed_path

        s = directed_path(2)
        with pytest.raises(ReproError):
            s.relation("Nope")
        with pytest.raises(ReproError):
            s.constant("c")
        with pytest.raises(ReproError):
            GRAPH_VOCABULARY.arity("Nope")


class TestDocstrings:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_public_callables_documented(self, name):
        module = importlib.import_module(name)
        undocumented = []
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            # type aliases (Dict[...], FrozenSet[...]) are "callable" but
            # carry no docstring of their own: restrict to repro-defined
            # functions and classes
            if not getattr(obj, "__module__", "").startswith("repro"):
                continue
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(symbol)
        assert not undocumented, f"{name}: {undocumented}"
