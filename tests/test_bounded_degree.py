"""Unit tests for Lemma 3.4 / Theorem 3.5 (bounded degree)."""

import pytest

from repro.core import (
    lemma_3_4_bound,
    lemma_3_4_sweep,
    lemma_3_4_witness,
    theorem_3_5_applies,
)
from repro.exceptions import ValidationError
from repro.graphtheory import (
    cycle_graph,
    grid_graph,
    is_scattered,
    path_graph,
    random_regular_graph,
    star_graph,
)
from repro.structures import clique_structure, undirected_cycle


class TestLemma34Witness:
    def test_cycle_witness(self):
        g = cycle_graph(40)
        witness = lemma_3_4_witness(g, k=2, d=2, m=5)
        assert witness is not None
        assert len(witness.scattered) == 5
        assert is_scattered(g, list(witness.scattered), 2)

    def test_bound_guarantee(self):
        """Above N = m * k^d the witness always exists (the lemma)."""
        k, d, m = 2, 2, 4
        bound = lemma_3_4_bound(k, d, m)
        for n in (bound + 1, bound + 5):
            witness = lemma_3_4_witness(path_graph(n), k, d, m)
            assert witness is not None
            assert witness.above_bound()

    def test_regular_graphs(self):
        for seed in range(3):
            g = random_regular_graph(60, 3, seed=seed)
            witness = lemma_3_4_witness(g, k=3, d=1, m=4)
            if witness is not None:
                assert is_scattered(g, list(witness.scattered), 1)

    def test_below_bound_may_fail(self):
        # the clique K4 (degree 3) has no 1-scattered pair
        from repro.graphtheory import complete_graph

        assert lemma_3_4_witness(complete_graph(4), 3, 1, 2) is None

    def test_degree_violation_rejected(self):
        with pytest.raises(ValidationError):
            lemma_3_4_witness(star_graph(5), k=2, d=1, m=2)

    def test_grid_degree4(self):
        g = grid_graph(6, 6)
        witness = lemma_3_4_witness(g, k=4, d=1, m=4)
        assert witness is not None


class TestTheorem35:
    def test_applies(self):
        assert theorem_3_5_applies(undirected_cycle(6), 2)
        assert not theorem_3_5_applies(clique_structure(5), 3)


class TestSweep:
    def test_rows(self):
        graphs = [cycle_graph(n) for n in (10, 20, 40)]
        rows = lemma_3_4_sweep(graphs, k=2, d=1, m=3)
        assert len(rows) == 3
        assert all(r["found"] for r in rows)
        assert rows[0]["bound"] == 3 * 2

    def test_theorem_shape(self):
        """Every above-bound row must have found=True — the lemma's shape."""
        graphs = [cycle_graph(n) for n in range(10, 60, 10)]
        rows = lemma_3_4_sweep(graphs, k=2, d=2, m=4)
        for row in rows:
            if row["above_bound"]:
                assert row["found"]
