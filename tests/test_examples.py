"""Smoke tests: every example script runs end to end.

Each example is executed in-process (importing its ``main``) so failures
surface with real tracebacks and coverage is attributed.  The slowest
example (planar_scattered) is included because its runtime is dominated
by a one-off staged construction, still well under a minute.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart",
    "query_rewriting",
    "datalog_boundedness",
    "planar_scattered",
    "pebble_games_csp",
    "preservation_landscape",
    "data_exchange",
]


def _load(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_quickstart_mentions_all_sections(capsys):
    module = _load("quickstart")
    module.main()
    out = capsys.readouterr().out
    for heading in ("structures", "homomorphisms", "cores",
                    "Chandra-Merlin", "SPJU", "Datalog"):
        assert heading in out


def test_rewriting_example_rejects_unpreserved(capsys):
    module = _load("query_rewriting")
    module.main()
    out = capsys.readouterr().out
    assert "NOT preserved" in out
    assert "UNION" in out or "<-" in out
