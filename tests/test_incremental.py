"""The incremental engine: deltas, fingerprints, invalidation, warm starts.

Unit coverage for :mod:`repro.incremental` plus the observability
satellites: the entry-bounded memo cache under a 10k-decision stream,
the fine-grained ``invalidate_edit`` keep/evict split, the
``REPRO_NO_INCR`` ablation switch, and the ``repro stats --reset``
regression (distributed/lease and journal counters must reset too).
"""

import random

import pytest

from repro.datalog.evaluation import evaluate_semi_naive
from repro.datalog.program import parse_program
from repro.distributed.leases import LeaseManager
from repro.engine.cache import HomCache
from repro.engine.engine import HomEngine
from repro.engine.fingerprint import structure_fingerprint
from repro.engine.instrumentation import DISTRIBUTED, INCREMENTAL
from repro.exceptions import (
    BudgetExceededError,
    ValidationError,
)
from repro.homomorphism.search import is_homomorphism
from repro.incremental import (
    Delta,
    IncrementalCoreSession,
    IncrementalFixpoint,
    IncrementalHomSession,
    apply_delta,
    incremental_containment_session,
    incremental_enabled,
)
from repro.resources import SweepJournal, governed
from repro.structures import (
    Structure,
    Vocabulary,
    directed_cycle,
    directed_path,
    undirected_cycle,
    undirected_path,
)

GRAPH = Vocabulary({"E": 2})


def rebuilt(structure):
    """A fresh instance equal to ``structure`` (no cached WL state)."""
    return Structure(
        structure.vocabulary,
        structure.universe,
        {
            name: structure.relation(name)
            for name in structure.vocabulary.relation_names
        },
        structure.constants,
    )


# ----------------------------------------------------------------------
# Delta semantics
# ----------------------------------------------------------------------
class TestDelta:
    def test_inverse_swaps_adds_and_removes(self):
        d = Delta(
            add_elements=(9,),
            add_facts=[("E", (0, 1))],
            remove_facts=[("E", (1, 2))],
        )
        inv = d.inverse()
        assert inv.remove_elements == (9,)
        assert inv.remove_facts == (("E", (0, 1)),)
        assert inv.add_facts == (("E", (1, 2)),)
        assert inv.inverse() == d

    def test_touched_elements(self):
        d = Delta(add_elements=(9,), add_facts=[("E", (0, 1))])
        assert d.touched_elements() == frozenset({9, 0, 1})

    def test_direction_predicates(self):
        assert Delta(add_facts=[("E", (0, 1))]).hardens()
        assert not Delta(add_facts=[("E", (0, 1))]).loosens()
        assert Delta(remove_facts=[("E", (0, 1))]).loosens()
        assert Delta().is_empty()

    def test_apply_then_inverse_round_trips(self):
        s = undirected_path(4)
        d = Delta(add_facts=[("E", (0, 3)), ("E", (3, 0))])
        edited, record = apply_delta(s, d)
        assert edited.has_fact("E", (0, 3))
        back, record2 = apply_delta(edited, d.inverse())
        assert back == s
        assert record2.new_fingerprint == record.old_fingerprint

    def test_rejects_adding_present_fact(self):
        s = undirected_path(3)
        with pytest.raises(ValidationError):
            apply_delta(s, Delta(add_facts=[("E", (0, 1))]))

    def test_rejects_removing_absent_fact(self):
        s = undirected_path(3)
        with pytest.raises(ValidationError):
            apply_delta(s, Delta(remove_facts=[("E", (0, 2))]))

    def test_rejects_removing_used_element(self):
        s = undirected_path(3)
        with pytest.raises(ValidationError):
            apply_delta(s, Delta(remove_elements=(1,)))

    def test_element_removal_with_its_facts_is_allowed(self):
        s = directed_path(3)  # E(0,1), E(1,2)
        d = Delta(
            remove_elements=(2,),
            remove_facts=[("E", (1, 2))],
        )
        edited, _ = apply_delta(s, d)
        assert edited.size() == 2
        assert not edited.has_fact("E", (1, 2))
        back, _ = apply_delta(edited, d.inverse())
        assert back == s

    def test_rejects_unknown_relation_and_bad_arity(self):
        s = undirected_path(3)
        with pytest.raises(ValidationError):
            apply_delta(s, Delta(add_facts=[("R", (0, 1))]))
        with pytest.raises(ValidationError):
            apply_delta(s, Delta(add_facts=[("E", (0, 1, 2))]))

    def test_empty_delta_record_is_unchanged(self):
        s = undirected_cycle(4)
        edited, record = apply_delta(s, Delta())
        assert edited == s
        assert record.unchanged()


# ----------------------------------------------------------------------
# Incremental fingerprints
# ----------------------------------------------------------------------
class TestIncrementalFingerprint:
    def test_matches_full_recompute_on_sparse_edit(self):
        rng = random.Random(3)
        n = 40
        s = Structure(
            GRAPH,
            range(n),
            {"E": [(i, (i + 1) % n) for i in range(n)]},
        )
        before = INCREMENTAL.fingerprint_delta_hits
        cur, _ = apply_delta(s, Delta(add_facts=[("E", (0, 2))]))
        for step in range(10):
            a = rng.randrange(n)
            b = (a + 1 + rng.randrange(3)) % n
            if cur.has_fact("E", (a, b)):
                d = Delta(remove_facts=[("E", (a, b))])
            else:
                d = Delta(add_facts=[("E", (a, b))])
            cur, record = apply_delta(cur, d)
            assert record.new_fingerprint == structure_fingerprint(
                rebuilt(cur)
            )
        assert INCREMENTAL.fingerprint_delta_hits > before

    def test_first_edit_falls_back_to_full(self):
        s = undirected_path(5)
        before = INCREMENTAL.fingerprint_full_recomputes
        _, record = apply_delta(s, Delta(add_facts=[("E", (0, 4))]))
        # The *source* has no retained history on the very first edit.
        assert INCREMENTAL.fingerprint_full_recomputes > before
        assert not record.incremental

    def test_chain_retains_history_and_goes_incremental(self):
        n = 30
        s = Structure(
            GRAPH, range(n), {"E": [(i, (i + 1) % n) for i in range(n)]}
        )
        cur, first = apply_delta(s, Delta(add_facts=[("E", (0, 5))]))
        cur, second = apply_delta(cur, Delta(remove_facts=[("E", (0, 5))]))
        assert second.incremental
        assert second.dirty_elements < n
        assert second.new_fingerprint == s.fingerprint()


# ----------------------------------------------------------------------
# Satellite: entry-bounded memo cache
# ----------------------------------------------------------------------
class TestEntryBoundedCache:
    def test_max_entries_cap_holds_under_10k_decision_stream(self):
        engine = HomEngine(cache_size=64, cache_entries=100)
        source, target = directed_path(2), directed_cycle(3)
        for i in range(10_000):
            engine.find_homomorphism(
                source, target, forbidden_images=frozenset({("pad", i)})
            )
            if i % 97 == 0:
                assert len(engine.cache) <= 100
                assert engine.cache.snapshot()["keys"] <= 64
        assert len(engine.cache) <= 100
        assert engine.cache.evictions > 0
        assert engine.stats.calls == 10_000

    def test_entry_cap_bounds_collision_buckets(self):
        cache = HomCache(maxsize=100, max_entries=3)
        for i in range(10):
            cache.put("k" * 32, (f"w{i}",), i)  # one key, many entries
        assert len(cache) <= 3

    def test_default_entry_cap_is_twice_maxsize(self):
        assert HomCache(maxsize=8).max_entries == 16

    def test_env_override(self, monkeypatch):
        from repro.engine.engine import _default_engine

        monkeypatch.setenv("REPRO_HOM_CACHE_ENTRIES", "17")
        assert _default_engine().cache.max_entries == 17


# ----------------------------------------------------------------------
# Fine-grained invalidation
# ----------------------------------------------------------------------
class TestInvalidateEdit:
    def test_only_edited_side_is_evicted(self):
        engine = HomEngine()
        a, b, c = undirected_path(3), undirected_cycle(4), directed_path(4)
        engine.exists_homomorphism(a, b)
        engine.exists_homomorphism(c, b)
        assert len(engine.cache) == 2
        before_kept = INCREMENTAL.incr_kept
        before_evicted = INCREMENTAL.incr_evictions
        _, record = apply_delta(a, Delta(add_facts=[("E", (0, 2))]))
        dropped = engine.invalidate_edit(record)
        assert dropped >= 1
        assert len(engine.cache) == 1  # the untouched (c, b) entry stays
        hits = engine.cache.hits
        engine.exists_homomorphism(c, b)
        assert engine.cache.hits == hits + 1
        assert INCREMENTAL.incr_evictions > before_evicted
        assert INCREMENTAL.incr_kept >= before_kept + 1

    def test_compiled_target_evicted_with_edit(self):
        engine = HomEngine()
        target = undirected_cycle(5)
        engine.exists_homomorphism(undirected_path(3), target)
        assert len(engine.compiled_targets) == 1
        _, record = apply_delta(target, Delta(add_facts=[("E", (0, 2))]))
        engine.invalidate_edit(record)
        assert len(engine.compiled_targets) == 0

    def test_identity_edit_evicts_nothing(self):
        engine = HomEngine()
        a, b = undirected_path(3), undirected_cycle(4)
        engine.exists_homomorphism(a, b)
        _, record = apply_delta(a, Delta())
        assert engine.invalidate_edit(record) == 0
        assert len(engine.cache) == 1


# ----------------------------------------------------------------------
# Warm-start sessions
# ----------------------------------------------------------------------
class TestWarmStart:
    def test_true_witness_survives_unrelated_edit(self):
        engine = HomEngine()
        session = IncrementalHomSession(
            directed_path(3), directed_cycle(4), engine=engine
        )
        assert session.decide().is_true
        before = INCREMENTAL.warm_hits
        verdict = session.edit_target(Delta(add_facts=[("E", (0, 2))]))
        assert verdict.is_true
        assert INCREMENTAL.warm_hits == before + 1
        assert is_homomorphism(
            session.source, session.target, verdict.witness
        )

    def test_false_preserved_under_source_hardening(self):
        engine = HomEngine()
        session = IncrementalHomSession(
            undirected_cycle(5), undirected_path(2), engine=engine
        )
        assert session.decide().is_false
        before = INCREMENTAL.warm_hits
        verdict = session.edit_source(
            Delta(add_facts=[("E", (0, 2)), ("E", (2, 0))])
        )
        assert verdict.is_false
        assert INCREMENTAL.warm_hits == before + 1

    def test_false_reconsidered_under_source_loosening(self):
        engine = HomEngine()
        # C5 -> P2 has no hom; removing the odd closing edge creates one.
        session = IncrementalHomSession(
            undirected_cycle(5), undirected_path(2), engine=engine
        )
        assert session.decide().is_false
        before = INCREMENTAL.warm_fallbacks
        verdict = session.edit_source(
            Delta(remove_facts=[("E", (4, 0)), ("E", (0, 4))])
        )
        assert verdict.is_true
        assert INCREMENTAL.warm_fallbacks == before + 1

    def test_broken_witness_falls_back(self):
        engine = HomEngine()
        session = IncrementalHomSession(
            directed_path(3), directed_cycle(4), engine=engine
        )
        assert session.decide().is_true
        # Removing the whole cycle edge set breaks any witness.
        target = session.target
        removals = [("E", tup) for _, tup in target.facts()]
        verdict = session.edit_target(Delta(remove_facts=removals))
        assert verdict.is_false

    def test_unknown_is_never_warm_started(self):
        from repro.structures import path_with_random_chords

        engine = HomEngine(cache_enabled=False)
        session = IncrementalHomSession(
            path_with_random_chords(80, 12, seed=0),
            undirected_cycle(7),
            engine=engine,
        )
        with governed(budget=1000):
            assert session.decide().is_unknown
        # After the trip, the next decision re-runs (and completes).
        verdict = session.edit_target(Delta(add_facts=[("E", (0, 2))]))
        assert verdict.is_true or verdict.is_false

    def test_core_session_warm_hit_and_fallback(self):
        engine = HomEngine()
        s = undirected_cycle(6)  # even cycle: core is one edge
        session = IncrementalCoreSession(s, engine=engine)
        assert session.core().size() == 2
        before = INCREMENTAL.warm_hits
        # An odd-distance chord keeps 2-colorability: the old witness
        # still maps, so the core is warm.
        core = session.edit(Delta(add_facts=[("E", (0, 3)), ("E", (3, 0))]))
        assert core.size() == 2
        assert INCREMENTAL.warm_hits == before + 1
        # An even-distance chord closes a triangle: witness breaks,
        # fallback recomputes.
        fallbacks = INCREMENTAL.warm_fallbacks
        core = session.edit(Delta(add_facts=[("E", (1, 3)), ("E", (3, 1))]))
        oracle = HomEngine(cache_enabled=False).core(
            rebuilt(session.structure)
        )
        assert core.size() == oracle.size()
        assert INCREMENTAL.warm_fallbacks == fallbacks + 1
        assert core.is_substructure_of(session.structure)

    def test_containment_session_matches_containment_verdict(self):
        from repro.cq import canonical_query
        from repro.cq.containment import containment_verdict

        q1 = canonical_query(directed_path(4))
        q2 = canonical_query(directed_path(3))
        session = incremental_containment_session(q1, q2)
        verdict = session.decide()
        want = containment_verdict(q1, q2)
        assert verdict.is_true == want.is_true
        assert verdict.is_false == want.is_false


# ----------------------------------------------------------------------
# DRed Datalog maintenance
# ----------------------------------------------------------------------
TC = parse_program(
    "T(x, y) <- E(x, y).\nT(x, z) <- E(x, y), T(y, z).", GRAPH
)


class TestIncrementalDatalog:
    def test_addition_extends_closure(self):
        fix = IncrementalFixpoint(TC, directed_path(3))
        assert fix.contains("T", (0, 2))
        before = INCREMENTAL.dred_applies
        fix.apply(Delta(add_facts=[("E", (2, 0))]))
        assert fix.contains("T", (2, 1))
        assert INCREMENTAL.dred_applies == before + 1
        want = evaluate_semi_naive(TC, fix.structure).relations
        assert fix.relation("T") == set(want["T"])

    def test_deletion_overdeletes_and_rederives(self):
        # Two parallel paths 0->1->3 and 0->2->3 plus direct 0->3:
        # deleting one path leaves T(0,3) rederivable.
        s = Structure(
            GRAPH,
            range(4),
            {"E": [(0, 1), (1, 3), (0, 2), (2, 3)]},
        )
        fix = IncrementalFixpoint(TC, s)
        assert fix.contains("T", (0, 3))
        over = INCREMENTAL.dred_overdeleted
        reder = INCREMENTAL.dred_rederived
        fix.apply(Delta(remove_facts=[("E", (0, 1))]))
        assert fix.contains("T", (0, 3))  # rederived via 0->2->3
        assert not fix.contains("T", (0, 1))
        assert INCREMENTAL.dred_overdeleted > over
        assert INCREMENTAL.dred_rederived > reder
        want = evaluate_semi_naive(TC, fix.structure).relations
        assert fix.relation("T") == set(want["T"])

    def test_decide_is_trivalent(self):
        fix = IncrementalFixpoint(TC, directed_path(4))
        assert fix.decide("T", (0, 3)).is_true
        assert fix.decide("T", (3, 0)).is_false

    def test_governor_trip_invalidates_state(self):
        fix = IncrementalFixpoint(TC, directed_path(6))
        fix.relation("T")
        before = INCREMENTAL.dred_full_recomputes
        with governed(budget=5):
            with pytest.raises(BudgetExceededError):
                fix.apply(Delta(add_facts=[("E", (5, 0))]))
        assert INCREMENTAL.dred_full_recomputes == before + 1
        # The half-maintained state was discarded: the next query
        # recomputes from scratch and is exact.
        want = evaluate_semi_naive(TC, fix.structure).relations
        assert fix.relation("T") == set(want["T"])

    def test_decide_unknown_under_budget(self):
        fix = IncrementalFixpoint(TC, directed_path(8))
        with governed(budget=3):
            verdict = fix.decide("T", (0, 7))
        assert verdict.is_unknown
        assert fix.decide("T", (0, 7)).is_true


# ----------------------------------------------------------------------
# Satellite: the REPRO_NO_INCR ablation switch
# ----------------------------------------------------------------------
class TestAblationSwitch:
    def test_switch_is_dynamic(self, monkeypatch):
        assert incremental_enabled()
        monkeypatch.setenv("REPRO_NO_INCR", "1")
        assert not incremental_enabled()
        monkeypatch.setenv("REPRO_NO_INCR", "0")
        assert incremental_enabled()

    def test_disabled_apply_still_exact(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_INCR", "1")
        n = 20
        s = Structure(
            GRAPH, range(n), {"E": [(i, (i + 1) % n) for i in range(n)]}
        )
        cur, first = apply_delta(s, Delta(add_facts=[("E", (0, 5))]))
        cur, second = apply_delta(cur, Delta(remove_facts=[("E", (0, 5))]))
        assert not second.incremental
        assert second.new_fingerprint == s.fingerprint()

    def test_disabled_warm_start_always_falls_back(self, monkeypatch):
        engine = HomEngine()
        session = IncrementalHomSession(
            directed_path(3), directed_cycle(4), engine=engine
        )
        assert session.decide().is_true
        monkeypatch.setenv("REPRO_NO_INCR", "1")
        hits = INCREMENTAL.warm_hits
        verdict = session.edit_target(Delta(add_facts=[("E", (0, 2))]))
        assert verdict.is_true
        assert INCREMENTAL.warm_hits == hits

    def test_disabled_datalog_recomputes(self, monkeypatch):
        fix = IncrementalFixpoint(TC, directed_path(4))
        fix.relation("T")
        monkeypatch.setenv("REPRO_NO_INCR", "1")
        before = INCREMENTAL.dred_full_recomputes
        fix.apply(Delta(add_facts=[("E", (3, 0))]))
        assert INCREMENTAL.dred_full_recomputes == before + 1
        want = evaluate_semi_naive(TC, fix.structure).relations
        assert fix.relation("T") == set(want["T"])


# ----------------------------------------------------------------------
# Satellite: stats --reset covers every counter family
# ----------------------------------------------------------------------
class TestStatsResetRegression:
    def test_reset_zeroes_distributed_and_journal_counters(self, tmp_path):
        engine = HomEngine()
        # Journal activity.
        journal = SweepJournal(str(tmp_path / "journal.jsonl"))
        journal.record("k1", {"v": 1})
        journal.record("k1", {"v": 2})
        journal.compact()
        # Lease activity.
        manager = LeaseManager(str(tmp_path / "shards"), "r1", ttl_s=30.0)
        lease = manager.claim(0)
        lease = manager.renew(lease)
        manager.release(lease)
        snap = DISTRIBUTED.snapshot()
        assert snap["journal_records"] >= 2
        assert snap["journal_compactions"] >= 1
        assert snap["lease_claims"] >= 1
        assert snap["lease_renewals"] >= 1
        assert snap["lease_releases"] >= 1
        engine.reset_stats()
        assert all(v == 0 for v in DISTRIBUTED.snapshot().values())
        assert all(
            v == 0 for v in INCREMENTAL.snapshot().values()
        )

    def test_snapshot_has_incremental_and_distributed_sections(self):
        snap = HomEngine().snapshot()
        assert "incremental" in snap
        assert "distributed" in snap
        assert "incr_evictions" in snap["incremental"]
        assert "lease_claims" in snap["distributed"]
