"""The incremental-differential tier: edit streams vs from-scratch.

Acceptance gate for the incremental engine — over 500 re-decisions
across randomized edit streams, every verdict produced by the warm
sessions / DRed fixpoints must agree with a from-scratch oracle on the
current (edited) structures.  The tier includes chaos ``evict``
interleavings (both engine caches cleared mid-stream) and governed
streams under fault injection where UNKNOWN is allowed but definite
verdicts must still match the oracle.  Zero disagreements, by
assertion, on every stream.
"""

import random

import pytest

from repro.datalog.evaluation import evaluate_semi_naive
from repro.datalog.program import parse_program
from repro.engine.engine import HomEngine
from repro.incremental import (
    Delta,
    IncrementalCoreSession,
    IncrementalFixpoint,
    IncrementalHomSession,
)
from repro.resources import governed
from repro.structures import Structure, Vocabulary, random_structure

from .chaos import FaultInjector, structure_pool

GRAPH = Vocabulary({"E": 2})

HOM_STREAMS = 30
HOM_STEPS = 12
GOVERNED_STREAMS = 10
GOVERNED_STEPS = 8
CORE_STREAMS = 10
CORE_STEPS = 6
DATALOG_STREAMS = 10
DATALOG_STEPS = 12

# 30*12 + 10*8 + 10*6 + 10*12 = 620 re-decisions >= the 500-case floor.
assert (
    HOM_STREAMS * HOM_STEPS
    + GOVERNED_STREAMS * GOVERNED_STEPS
    + CORE_STREAMS * CORE_STEPS
    + DATALOG_STREAMS * DATALOG_STEPS
    >= 500
)


def rebuilt(structure):
    """A fresh instance equal to ``structure`` (no cached WL state)."""
    return Structure(
        structure.vocabulary,
        structure.universe,
        {
            name: structure.relation(name)
            for name in structure.vocabulary.relation_names
        },
        structure.constants,
    )


def random_delta(rng, structure):
    """A small random valid edit of ``structure`` (never empty unless
    the structure admits nothing)."""
    universe = sorted(structure.universe)
    facts = sorted(structure.facts())
    roll = rng.random()
    if roll < 0.10:
        # Grow: a fresh element wired to an existing one.
        new = max((e for e in universe if isinstance(e, int)), default=-1) + 1
        anchor = rng.choice(universe)
        return Delta(add_elements=(new,), add_facts=[("E", (anchor, new))])
    if roll < 0.20:
        # Shrink: drop an isolated element if one exists.
        used = set()
        for _, tup in facts:
            used.update(tup)
        isolated = [
            e
            for e in universe
            if e not in used and e not in structure.constants.values()
        ]
        if isolated and len(universe) > 2:
            return Delta(remove_elements=(rng.choice(isolated),))
    if roll < 0.55 and len(facts) > 1:
        name, tup = facts[rng.randrange(len(facts))]
        return Delta(remove_facts=[(name, tup)])
    for _ in range(20):
        a, b = rng.choice(universe), rng.choice(universe)
        if not structure.has_fact("E", (a, b)):
            return Delta(add_facts=[("E", (a, b))])
    if facts:
        name, tup = facts[rng.randrange(len(facts))]
        return Delta(remove_facts=[(name, tup)])
    return Delta()


def oracle_verdict(source, target):
    """From-scratch governed decision on rebuilt structures: no shared
    caches, no retained WL history, no warm state."""
    return HomEngine(cache_enabled=False).decide_homomorphism(
        rebuilt(source), rebuilt(target)
    )


# ----------------------------------------------------------------------
# Homomorphism streams with evict interleavings
# ----------------------------------------------------------------------
def test_hom_streams_agree_with_oracle():
    pool = structure_pool()
    disagreements = []
    for stream in range(HOM_STREAMS):
        rng = random.Random(1000 + stream)
        engine = HomEngine()
        source = pool[rng.randrange(len(pool))]
        target = pool[rng.randrange(len(pool))]
        session = IncrementalHomSession(source, target, engine=engine)
        session.decide()
        for step in range(HOM_STEPS):
            if rng.random() < 0.5:
                delta = random_delta(rng, session.source)
                verdict = session.edit_source(delta)
            else:
                delta = random_delta(rng, session.target)
                verdict = session.edit_target(delta)
            want = oracle_verdict(session.source, session.target)
            if verdict.is_true != want.is_true or (
                verdict.is_false != want.is_false
            ):
                disagreements.append((stream, step, verdict, want))
            if verdict.is_true:
                from repro.homomorphism.search import is_homomorphism

                assert is_homomorphism(
                    session.source, session.target, verdict.witness
                ), (stream, step)
            # Chaos interleaving: cold caches must not change verdicts.
            if rng.random() < 0.25:
                engine.cache.clear()
                engine.compiled_targets.clear()
    assert disagreements == []


# ----------------------------------------------------------------------
# Governed streams under fault injection (UNKNOWN allowed)
# ----------------------------------------------------------------------
def test_governed_streams_definite_verdicts_agree():
    pool = structure_pool()
    unknowns = 0
    disagreements = []
    for stream in range(GOVERNED_STREAMS):
        rng = random.Random(2000 + stream)
        engine = HomEngine()
        injector = FaultInjector(seed=stream, rate=0.3, engine=engine)
        source = pool[rng.randrange(len(pool))]
        target = pool[rng.randrange(len(pool))]
        session = IncrementalHomSession(source, target, engine=engine)
        with governed(deadline=10.0, injector=injector):
            session.decide()
        for step in range(GOVERNED_STEPS):
            if rng.random() < 0.5:
                delta = random_delta(rng, session.source)
                editor, side = session.edit_source, "source"
            else:
                delta = random_delta(rng, session.target)
                editor, side = session.edit_target, "target"
            with governed(deadline=10.0, injector=injector):
                verdict = editor(delta)
            if verdict.is_unknown:
                unknowns += 1
                # A trip poisons nothing: clear the stale UNKNOWN by
                # re-deciding outside injection before the next step.
                session.last_verdict = None
                continue
            want = oracle_verdict(session.source, session.target)
            if verdict.is_true != want.is_true:
                disagreements.append((stream, step, side, verdict, want))
    assert disagreements == []
    assert unknowns >= 1  # the tier genuinely exercised UNKNOWN paths


# ----------------------------------------------------------------------
# Core streams
# ----------------------------------------------------------------------
def test_core_streams_agree_with_oracle():
    disagreements = []
    for stream in range(CORE_STREAMS):
        rng = random.Random(3000 + stream)
        engine = HomEngine()
        structure = random_structure(GRAPH, 4 + stream % 3, 0.4, seed=stream)
        session = IncrementalCoreSession(structure, engine=engine)
        session.core()
        for step in range(CORE_STEPS):
            delta = random_delta(rng, session.structure)
            core = session.edit(delta)
            oracle = HomEngine(cache_enabled=False).core(
                rebuilt(session.structure)
            )
            if core.size() != oracle.size():
                disagreements.append((stream, step, core, oracle))
            assert core.is_substructure_of(session.structure), (stream, step)
            if rng.random() < 0.25:
                engine.cache.clear()
                engine.compiled_targets.clear()
    assert disagreements == []


# ----------------------------------------------------------------------
# Datalog streams (tuple-exact)
# ----------------------------------------------------------------------
TC = parse_program(
    "T(x, y) <- E(x, y).\nT(x, z) <- E(x, y), T(y, z).", GRAPH
)


def test_datalog_streams_are_tuple_exact():
    for stream in range(DATALOG_STREAMS):
        rng = random.Random(4000 + stream)
        structure = random_structure(GRAPH, 5 + stream % 3, 0.3, seed=stream)
        fix = IncrementalFixpoint(TC, structure)
        fix.relation("T")
        for step in range(DATALOG_STEPS):
            delta = random_delta(rng, fix.structure)
            fix.apply(delta)
            want = evaluate_semi_naive(TC, rebuilt(fix.structure)).relations
            assert fix.relation("T") == set(want["T"]), (stream, step)
