"""Unit tests for CQ and UCQ containment (Chandra–Merlin, Sagiv–Yannakakis)."""

import pytest

from repro.cq import (
    ConjunctiveQuery,
    are_equivalent,
    containment_mapping,
    is_contained_in,
    remove_redundant_disjuncts,
    ucq_are_equivalent,
    ucq_is_contained_in,
)
from repro.exceptions import ValidationError
from repro.logic import parse_formula
from repro.structures import GRAPH_VOCABULARY, random_directed_graph


def cq(text):
    return ConjunctiveQuery.from_formula(
        parse_formula(text, GRAPH_VOCABULARY), GRAPH_VOCABULARY
    )


PATH2 = cq("exists a b c. E(a,b) & E(b,c)")
PATH3 = cq("exists a b c d. E(a,b) & E(b,c) & E(c,d)")
TRIANGLE = cq("exists x y z. E(x,y) & E(y,z) & E(z,x)")
LOOP = cq("exists x. E(x,x)")
EDGE = cq("exists x y. E(x,y)")


class TestBooleanContainment:
    def test_longer_path_contained_in_shorter(self):
        assert is_contained_in(PATH3, PATH2)
        assert not is_contained_in(PATH2, PATH3)

    def test_triangle_contained_in_path(self):
        assert is_contained_in(TRIANGLE, PATH2)

    def test_loop_contained_in_everything_pathlike(self):
        assert is_contained_in(LOOP, EDGE)
        assert is_contained_in(LOOP, PATH3)
        assert is_contained_in(LOOP, TRIANGLE)
        assert not is_contained_in(EDGE, LOOP)

    def test_equivalence_of_renamings(self):
        other = cq("exists u v w. E(u,v) & E(v,w)")
        assert are_equivalent(PATH2, other)

    def test_containment_mapping_witness(self):
        mapping = containment_mapping(PATH3, PATH2)
        assert mapping is not None

    def test_soundness_on_random_data(self):
        # containment implies answer inclusion on every structure
        samples = [random_directed_graph(4, 0.4, s) for s in range(8)]
        pairs = [(PATH3, PATH2), (TRIANGLE, PATH2), (LOOP, EDGE)]
        for q1, q2 in pairs:
            assert is_contained_in(q1, q2)
            for s in samples:
                assert q1.evaluate(s) <= q2.evaluate(s)


class TestNonBooleanContainment:
    def test_head_respected(self):
        q1 = cq("exists z. E(x, z) & E(z, y)")  # distance-2 pairs
        q2 = cq("exists z w. E(x, z) & E(w, y)")  # out-edge and in-edge
        assert is_contained_in(q1, q2)
        assert not is_contained_in(q2, q1)

    def test_head_order_matters(self):
        fwd = cq("E(x, y)")
        # reversed head: same body, head (y, x) — build manually
        rev = ConjunctiveQuery(GRAPH_VOCABULARY, ("y", "x"), fwd.body)
        assert not is_contained_in(fwd, rev)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            is_contained_in(EDGE, cq("E(x, y)"))

    def test_answers_inclusion_nonboolean(self):
        q1 = cq("E(x, y) & exists z. E(y, z)")
        q2 = cq("E(x, y)")
        assert is_contained_in(q1, q2)
        for seed in range(6):
            s = random_directed_graph(4, 0.5, seed)
            assert q1.evaluate(s) <= q2.evaluate(s)


class TestUCQContainment:
    def test_sagiv_yannakakis_positive(self):
        assert ucq_is_contained_in([PATH3, TRIANGLE], [PATH2])

    def test_sagiv_yannakakis_negative(self):
        assert not ucq_is_contained_in([PATH2], [PATH3, TRIANGLE])

    def test_empty_union_is_bottom(self):
        assert ucq_is_contained_in([], [PATH2])
        assert not ucq_is_contained_in([PATH2], [])

    def test_union_equivalence(self):
        assert ucq_are_equivalent([PATH2, PATH3], [PATH2])
        assert not ucq_are_equivalent([PATH2], [TRIANGLE])

    def test_disjunct_level_counterexample(self):
        # q1 ∪ q2 ⊆ p1 ∪ p2 can hold only via cross matching
        assert ucq_is_contained_in([TRIANGLE, PATH3], [PATH2, LOOP])


class TestRedundancyRemoval:
    def test_removes_subsumed(self):
        kept = remove_redundant_disjuncts([PATH2, PATH3, TRIANGLE])
        assert kept == [PATH2]

    def test_keeps_incomparable(self):
        two_cycle = cq("exists x y. E(x,y) & E(y,x)")
        # directed triangle and directed 2-cycle admit no homomorphism
        # either way, so neither disjunct subsumes the other
        kept = remove_redundant_disjuncts([two_cycle, TRIANGLE])
        assert len(kept) == 2

    def test_later_disjunct_can_subsume_earlier(self):
        kept = remove_redundant_disjuncts([PATH3, PATH2])
        assert kept == [PATH2]

    def test_equivalent_duplicates_collapse(self):
        other = cq("exists u v w. E(u,v) & E(v,w)")
        kept = remove_redundant_disjuncts([PATH2, other])
        assert len(kept) == 1

    def test_result_equivalent(self):
        union = [PATH2, PATH3, TRIANGLE, LOOP]
        kept = remove_redundant_disjuncts(union)
        assert ucq_are_equivalent(union, kept)
