"""Unit tests for repro.graphtheory.graphs."""

import pytest

from repro.exceptions import ValidationError
from repro.graphtheory import (
    Graph,
    bfs_distances,
    bipartition,
    connected_components,
    cycle_graph,
    grid_graph,
    is_bipartite,
    is_connected,
    is_forest,
    is_tree,
    neighborhood,
    path_graph,
    power_graph,
    star_graph,
)


class TestGraphConstruction:
    def test_vertices_preserve_order(self):
        g = Graph([3, 1, 2], [])
        assert g.vertices == (3, 1, 2)

    def test_duplicate_vertices_merged(self):
        g = Graph([1, 1, 2], [])
        assert g.num_vertices() == 2

    def test_duplicate_edges_merged(self):
        g = Graph([1, 2], [(1, 2), (2, 1)])
        assert g.num_edges() == 1

    def test_loop_rejected(self):
        with pytest.raises(ValidationError):
            Graph([1], [(1, 1)])

    def test_edge_with_unknown_vertex_rejected(self):
        with pytest.raises(ValidationError):
            Graph([1, 2], [(1, 3)])

    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices() == 0
        assert g.num_edges() == 0
        assert g.max_degree() == 0


class TestAccessors:
    def test_neighbors(self):
        g = path_graph(3)
        assert g.neighbors(1) == frozenset({0, 2})

    def test_neighbors_unknown_vertex(self):
        with pytest.raises(ValidationError):
            path_graph(3).neighbors(99)

    def test_degree(self):
        g = star_graph(5)
        assert g.degree(0) == 5
        assert g.degree(1) == 1

    def test_max_degree(self):
        assert star_graph(7).max_degree() == 7

    def test_has_edge_symmetric(self):
        g = path_graph(3)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_contains_and_iter(self):
        g = path_graph(3)
        assert 1 in g and 99 not in g
        assert list(g) == [0, 1, 2]
        assert len(g) == 3

    def test_edge_list_deterministic(self):
        g = cycle_graph(4)
        assert g.edge_list() == sorted(g.edge_list())

    def test_equality_and_hash(self):
        a = path_graph(3)
        b = Graph([0, 1, 2], [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != cycle_graph(3)


class TestDerivedGraphs:
    def test_subgraph_induced(self):
        g = cycle_graph(4)
        sub = g.subgraph([0, 1, 2])
        assert sub.num_vertices() == 3
        assert sub.num_edges() == 2  # the chord 0-3 and 2-3 vanish

    def test_subgraph_ignores_foreign_vertices(self):
        g = path_graph(3)
        sub = g.subgraph([0, 1, 99])
        assert sub.num_vertices() == 2

    def test_remove_vertices(self):
        g = star_graph(4)
        reduced = g.remove_vertices([0])
        assert reduced.num_edges() == 0
        assert reduced.num_vertices() == 4

    def test_with_and_without_edge(self):
        g = path_graph(3)
        g2 = g.with_edge(0, 2)
        assert g2.has_edge(0, 2)
        g3 = g2.without_edge(0, 2)
        assert g3 == g

    def test_relabel(self):
        g = path_graph(3)
        h = g.relabel({0: "a", 1: "b", 2: "c"})
        assert h.has_edge("a", "b")

    def test_relabel_requires_injective(self):
        with pytest.raises(ValidationError):
            path_graph(3).relabel({0: "a", 1: "a", 2: "c"})

    def test_relabel_requires_total(self):
        with pytest.raises(ValidationError):
            path_graph(3).relabel({0: "a"})

    def test_complement(self):
        g = path_graph(3)
        comp = g.complement()
        assert comp.has_edge(0, 2)
        assert not comp.has_edge(0, 1)
        assert comp.num_edges() == 1

    def test_disjoint_union(self):
        g = path_graph(2).disjoint_union(path_graph(3))
        assert g.num_vertices() == 5
        assert g.num_edges() == 3
        assert not is_connected(g)

    def test_contract_edge(self):
        g = path_graph(3)
        c = g.contract_edge(0, 1)
        assert c.num_vertices() == 2
        assert c.has_edge(0, 2)

    def test_contract_nonedge_rejected(self):
        with pytest.raises(ValidationError):
            path_graph(3).contract_edge(0, 2)

    def test_contract_triangle_gives_single_edge(self):
        c = cycle_graph(3).contract_edge(0, 1)
        assert c.num_vertices() == 2
        assert c.num_edges() == 1  # the loop is dropped, parallel merged


class TestTraversals:
    def test_bfs_distances_path(self):
        d = bfs_distances(path_graph(5), 0)
        assert d == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_unreachable_absent(self):
        g = Graph([0, 1], [])
        assert bfs_distances(g, 0) == {0: 0}

    def test_bfs_unknown_source(self):
        with pytest.raises(ValidationError):
            bfs_distances(path_graph(2), 42)

    def test_neighborhood_radii(self):
        g = path_graph(7)
        assert neighborhood(g, 3, 0) == frozenset({3})
        assert neighborhood(g, 3, 1) == frozenset({2, 3, 4})
        assert neighborhood(g, 3, 2) == frozenset({1, 2, 3, 4, 5})

    def test_neighborhood_negative_radius(self):
        with pytest.raises(ValidationError):
            neighborhood(path_graph(3), 0, -1)

    def test_connected_components(self):
        g = path_graph(2).disjoint_union(path_graph(2))
        comps = connected_components(g)
        assert len(comps) == 2

    def test_is_connected(self):
        assert is_connected(path_graph(5))
        assert not is_connected(Graph([0, 1], []))
        assert is_connected(Graph())

    def test_is_tree(self):
        assert is_tree(path_graph(4))
        assert is_tree(star_graph(5))
        assert not is_tree(cycle_graph(4))
        assert not is_tree(Graph([0, 1], []))

    def test_is_forest(self):
        assert is_forest(Graph([0, 1, 2], [(0, 1)]))
        assert not is_forest(cycle_graph(3))

    def test_bipartite(self):
        assert is_bipartite(grid_graph(3, 3))
        assert is_bipartite(cycle_graph(4))
        assert not is_bipartite(cycle_graph(5))

    def test_bipartition_is_valid(self):
        left, right = bipartition(grid_graph(2, 3))
        g = grid_graph(2, 3)
        for u, v in g.edge_list():
            assert (u in left) != (v in left)
        assert left | right == g.vertex_set

    def test_power_graph(self):
        g = path_graph(5)
        p2 = power_graph(g, 2)
        assert p2.has_edge(0, 2)
        assert not p2.has_edge(0, 3)

    def test_power_graph_zero_radius(self):
        assert power_graph(path_graph(3), 0).num_edges() == 0
