"""Unit tests for tree decompositions."""

import pytest

from repro.exceptions import ValidationError
from repro.graphtheory import (
    Graph,
    TreeDecomposition,
    cycle_graph,
    decomposition_from_elimination_order,
    elimination_order_width,
    grid_graph,
    path_graph,
    path_of_bags,
    star_graph,
)


def path_decomposition_of_path(n):
    """The natural width-1 decomposition of P_n."""
    return path_of_bags([{i, i + 1} for i in range(n - 1)])


class TestValidation:
    def test_valid_path_decomposition(self):
        g = path_graph(5)
        td = path_decomposition_of_path(5)
        td.validate(g)
        assert td.is_valid(g)
        assert td.width() == 1

    def test_missing_vertex_detected(self):
        g = path_graph(3)
        td = path_of_bags([{0, 1}])
        assert not td.is_valid(g)

    def test_missing_edge_detected(self):
        g = path_graph(3)
        td = path_of_bags([{0, 1}, {2}])
        assert not td.is_valid(g)

    def test_disconnected_occurrences_detected(self):
        g = path_graph(3)
        # vertex 0 appears in bags 0 and 2 but not bag 1
        td = path_of_bags([{0, 1}, {1, 2}, {0, 2}])
        assert not td.is_valid(g)

    def test_empty_bag_rejected(self):
        g = path_graph(2)
        td = path_of_bags([{0, 1}, set()])
        with pytest.raises(ValidationError):
            td.validate(g)

    def test_non_tree_rejected(self):
        g = path_graph(2)
        tree = Graph([0, 1, 2], [(0, 1), (1, 2), (2, 0)])
        td = TreeDecomposition(tree, {0: frozenset({0, 1}),
                                      1: frozenset({0, 1}),
                                      2: frozenset({0, 1})})
        with pytest.raises(ValidationError):
            td.validate(g)

    def test_bag_with_foreign_vertex_rejected(self):
        g = path_graph(2)
        td = path_of_bags([{0, 1, 99}])
        with pytest.raises(ValidationError):
            td.validate(g)

    def test_width_of_empty(self):
        td = TreeDecomposition(Graph(), {})
        assert td.width() == -1


class TestEliminationOrders:
    def test_path_order_width_one(self):
        g = path_graph(6)
        width = elimination_order_width(g, list(range(6)))
        assert width == 1

    def test_cycle_order_width_two(self):
        g = cycle_graph(6)
        assert elimination_order_width(g, list(range(6))) == 2

    def test_bad_order_star_from_center(self):
        g = star_graph(5)
        # eliminating the hub first creates a clique of the leaves
        width = elimination_order_width(g, [0, 1, 2, 3, 4, 5])
        assert width == 5

    def test_decomposition_from_order_validates(self):
        g = grid_graph(3, 3)
        order = list(g.vertices)
        td = decomposition_from_elimination_order(g, order)
        td.validate(g)
        assert td.width() == elimination_order_width(g, order)

    def test_order_must_be_permutation(self):
        with pytest.raises(ValidationError):
            decomposition_from_elimination_order(path_graph(3), [0, 1])

    def test_disconnected_graph_decomposition(self):
        g = Graph([0, 1, 2, 3], [(0, 1), (2, 3)])
        td = decomposition_from_elimination_order(g, [0, 1, 2, 3])
        td.validate(g)
        assert td.width() == 1


class TestPruneSubsumed:
    def test_prunes_contained_bag(self):
        td = path_of_bags([{0, 1}, {0, 1, 2}, {2, 3}])
        pruned = td.prune_subsumed()
        assert len(pruned.bags) == 2
        g = Graph([0, 1, 2, 3], [(0, 1), (1, 2), (0, 2), (2, 3)])
        pruned.validate(g)

    def test_incomparable_neighbors_after_prune(self):
        td = path_of_bags([{0, 1}, {1}, {1, 2}, {1, 2}, {2, 3}])
        pruned = td.prune_subsumed()
        for node in pruned.tree.vertices:
            for nb in pruned.tree.neighbors(node):
                assert not pruned.bags[node] <= pruned.bags[nb]
                assert not pruned.bags[nb] <= pruned.bags[node]

    def test_prune_preserves_width(self):
        td = path_of_bags([{0, 1}, {0, 1, 2}, {2, 3}])
        assert td.prune_subsumed().width() <= td.width()

    def test_prune_single_bag(self):
        td = path_of_bags([{0}])
        assert len(td.prune_subsumed().bags) == 1
