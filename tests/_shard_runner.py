"""Subprocess entry point for the shard-chaos tests.

Runs one shard runner over the shared sleepy-instance grid and prints
its :class:`~repro.distributed.ShardedSweepOutcome` as JSON.  Kept as a
real script (not a pytest fixture) so the chaos tests can SIGKILL it
like the genuine article.

Usage: ``python tests/_shard_runner.py '<json config>'`` with keys
``shard_dir``, ``shards``, ``runner_id``, ``instances``, ``work_s``,
``ttl``, ``heartbeat``, ``max_wait``.
"""

import json
import sys


def chaos_grid(instances, work_s):
    """The grid every runner and the baseline must agree on."""
    return [
        (f"w{index:02d}", ("work", work_s, index))
        for index in range(instances)
    ]


def main(argv):
    from repro.distributed import run_sharded_sweep
    from repro.parallel.faults import faulty_task

    config = json.loads(argv[1])
    outcome = run_sharded_sweep(
        faulty_task,
        chaos_grid(config["instances"], config["work_s"]),
        shard_dir=config["shard_dir"],
        shards=config["shards"],
        runner_id=config["runner_id"],
        lease_ttl_s=config["ttl"],
        heartbeat_interval_s=config["heartbeat"],
        max_wait_s=config["max_wait"],
        hard_timeout_s=config.get("hard_timeout", 15.0),
    )
    print(json.dumps(outcome.to_dict()))
    return 0 if outcome.complete else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
