"""Unit tests for structure operations (unions, images, products)."""

import pytest

from repro.exceptions import ValidationError
from repro.homomorphism import has_homomorphism, is_homomorphism
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    direct_product,
    directed_cycle,
    directed_path,
    disjoint_union,
    homomorphic_image,
    injection_into_union,
    merge_on_shared_universe,
)


class TestDisjointUnion:
    def test_sizes_add(self):
        u = disjoint_union(directed_path(2), directed_cycle(3))
        assert u.size() == 5
        assert u.num_facts() == 1 + 3

    def test_elements_tagged(self):
        u = disjoint_union(directed_path(2), directed_path(2))
        assert (0, 0) in u.universe_set and (1, 0) in u.universe_set

    def test_injections_are_homomorphisms(self):
        parts = [directed_path(3), directed_cycle(3)]
        u = disjoint_union(*parts)
        for i, part in enumerate(parts):
            emb = injection_into_union(parts, i)
            assert is_homomorphism(part, u, emb)

    def test_injection_bad_index(self):
        with pytest.raises(ValidationError):
            injection_into_union([directed_path(2)], 3)

    def test_empty_union_rejected(self):
        with pytest.raises(ValidationError):
            disjoint_union()

    def test_vocab_mismatch_rejected(self):
        other = Structure(Vocabulary({"R": 1}), [0], {"R": [(0,)]})
        with pytest.raises(ValidationError):
            disjoint_union(directed_path(2), other)

    def test_constants_rejected(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        s = Structure(vocab, [0], {}, {"c": 0})
        with pytest.raises(ValidationError):
            disjoint_union(s, s)

    def test_hom_from_components(self):
        # q preserved under homs: union of models maps onto either side
        u = disjoint_union(directed_cycle(3), directed_cycle(3))
        assert has_homomorphism(u, directed_cycle(3))


class TestHomomorphicImage:
    def test_quotient_collapses(self):
        p = directed_path(3)
        image = homomorphic_image(p, {0: "a", 1: "b", 2: "a"})
        assert image.size() == 2
        assert image.has_fact("E", ("a", "b"))
        assert image.has_fact("E", ("b", "a"))

    def test_image_of_hom_is_substructure(self):
        from repro.homomorphism import find_homomorphism

        source = directed_path(4)
        target = directed_cycle(3)
        hom = find_homomorphism(source, target)
        image = homomorphic_image(source, hom)
        assert image.is_substructure_of(target)

    def test_missing_element_rejected(self):
        with pytest.raises(ValidationError):
            homomorphic_image(directed_path(2), {0: "a"})

    def test_constants_follow(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        s = Structure(vocab, [0, 1], {"E": [(0, 1)]}, {"c": 1})
        image = homomorphic_image(s, {0: "x", 1: "y"})
        assert image.constant("c") == "y"


class TestDirectProduct:
    def test_projections_are_homs(self):
        a, b = directed_cycle(3), directed_path(3)
        prod = direct_product(a, b)
        proj_a = {(x, y): x for x in a.universe for y in b.universe}
        proj_b = {(x, y): y for x in a.universe for y in b.universe}
        assert is_homomorphism(prod, a, proj_a)
        assert is_homomorphism(prod, b, proj_b)

    def test_universal_property_sample(self):
        # C -> A x B iff C -> A and C -> B
        a, b = directed_cycle(3), directed_cycle(6)
        prod = direct_product(a, b)
        c = directed_path(3)
        assert has_homomorphism(c, prod) == (
            has_homomorphism(c, a) and has_homomorphism(c, b)
        )

    def test_size(self):
        prod = direct_product(directed_path(2), directed_path(3))
        assert prod.size() == 6
        assert prod.num_facts() == 1 * 2

    def test_vocab_mismatch(self):
        other = Structure(Vocabulary({"R": 1}), [0], {})
        with pytest.raises(ValidationError):
            direct_product(directed_path(2), other)


class TestMerge:
    def test_merge_unions_facts(self):
        a = Structure(GRAPH_VOCABULARY, [0, 1], {"E": [(0, 1)]})
        b = Structure(GRAPH_VOCABULARY, [1, 2], {"E": [(1, 2)]})
        merged = merge_on_shared_universe(a, b)
        assert merged.size() == 3
        assert merged.num_facts() == 2

    def test_merge_is_extension(self):
        a = directed_path(3)
        b = Structure(GRAPH_VOCABULARY, [0, 2], {"E": [(2, 0)]})
        merged = merge_on_shared_universe(a, b)
        assert a.is_substructure_of(merged)

    def test_merge_vocab_mismatch(self):
        other = Structure(Vocabulary({"R": 1}), [0], {})
        with pytest.raises(ValidationError):
            merge_on_shared_universe(directed_path(2), other)
