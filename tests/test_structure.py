"""Unit tests for the Structure value type."""

import pytest

from repro.exceptions import ValidationError
from repro.structures import GRAPH_VOCABULARY, Structure, Vocabulary


@pytest.fixture
def triangle():
    return Structure(GRAPH_VOCABULARY, [0, 1, 2],
                     {"E": [(0, 1), (1, 2), (2, 0)]})


class TestConstruction:
    def test_basic(self, triangle):
        assert triangle.size() == 3
        assert triangle.num_facts() == 3
        assert triangle.has_fact("E", (0, 1))
        assert not triangle.has_fact("E", (1, 0))

    def test_universe_order_preserved(self):
        s = Structure(GRAPH_VOCABULARY, [3, 1, 2], {})
        assert s.universe == (3, 1, 2)

    def test_omitted_relation_is_empty(self):
        s = Structure(GRAPH_VOCABULARY, [0], {})
        assert s.relation("E") == frozenset()

    def test_unknown_relation_rejected(self):
        with pytest.raises(ValidationError):
            Structure(GRAPH_VOCABULARY, [0], {"Z": [(0,)]})

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValidationError):
            Structure(GRAPH_VOCABULARY, [0], {"E": [(0,)]})

    def test_tuple_outside_universe_rejected(self):
        with pytest.raises(ValidationError):
            Structure(GRAPH_VOCABULARY, [0], {"E": [(0, 5)]})

    def test_constants_required(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        with pytest.raises(ValidationError):
            Structure(vocab, [0], {})
        s = Structure(vocab, [0], {}, {"c": 0})
        assert s.constant("c") == 0

    def test_constant_outside_universe_rejected(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        with pytest.raises(ValidationError):
            Structure(vocab, [0], {}, {"c": 9})

    def test_unknown_constant_rejected(self):
        with pytest.raises(ValidationError):
            Structure(GRAPH_VOCABULARY, [0], {}, {"c": 0})

    def test_facts_sorted_and_complete(self, triangle):
        facts = list(triangle.facts())
        assert len(facts) == 3
        assert all(name == "E" for name, _ in facts)


class TestSubstructureRelations:
    def test_substructure_not_necessarily_induced(self, triangle):
        sub = Structure(GRAPH_VOCABULARY, [0, 1, 2], {"E": [(0, 1)]})
        assert sub.is_substructure_of(triangle)
        assert not sub.is_induced_substructure_of(triangle)

    def test_induced_substructure(self, triangle):
        sub = triangle.restrict([0, 1])
        assert sub.is_induced_substructure_of(triangle)
        assert sub.relation("E") == frozenset({(0, 1)})

    def test_proper(self, triangle):
        assert not triangle.is_proper_substructure_of(triangle)
        assert triangle.without_fact("E", (0, 1)).is_proper_substructure_of(
            triangle
        )

    def test_different_vocabulary_not_substructure(self, triangle):
        other = Structure(Vocabulary({"E": 2, "P": 1}), [0, 1, 2],
                          {"E": [(0, 1)]})
        assert not other.is_substructure_of(triangle)


class TestDerivedStructures:
    def test_without_element(self, triangle):
        s = triangle.without_element(2)
        assert s.size() == 2
        assert s.relation("E") == frozenset({(0, 1)})

    def test_without_unknown_element(self, triangle):
        with pytest.raises(ValidationError):
            triangle.without_element(9)

    def test_without_fact(self, triangle):
        s = triangle.without_fact("E", (0, 1))
        assert s.num_facts() == 2
        assert s.size() == 3  # universe unchanged

    def test_without_missing_fact(self, triangle):
        with pytest.raises(ValidationError):
            triangle.without_fact("E", (1, 0))

    def test_with_fact_and_element(self, triangle):
        s = triangle.with_element(3).with_fact("E", (2, 3))
        assert s.size() == 4 and s.has_fact("E", (2, 3))

    def test_with_existing_element_rejected(self, triangle):
        with pytest.raises(ValidationError):
            triangle.with_element(0)

    def test_rename_isomorphic(self, triangle):
        renamed = triangle.rename({0: "a", 1: "b", 2: "c"})
        assert renamed.has_fact("E", ("a", "b"))
        assert renamed.size() == 3

    def test_rename_non_injective_rejected(self, triangle):
        with pytest.raises(ValidationError):
            triangle.rename({0: "a", 1: "a", 2: "c"})

    def test_canonical_relabel(self):
        s = Structure(GRAPH_VOCABULARY, ["x", "y"], {"E": [("x", "y")]})
        c = s.canonical_relabel()
        assert c.universe == (0, 1)
        assert c.has_fact("E", (0, 1))

    def test_restrict_keeps_constants(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        s = Structure(vocab, [0, 1], {"E": [(0, 1)]}, {"c": 0})
        r = s.restrict([0])
        assert r.constant("c") == 0
        with pytest.raises(ValidationError):
            s.restrict([1])

    def test_reduct(self):
        vocab = Vocabulary({"E": 2, "P": 1})
        s = Structure(vocab, [0], {"P": [(0,)]})
        r = s.reduct(GRAPH_VOCABULARY)
        assert r.vocabulary == GRAPH_VOCABULARY
        assert r.relation("E") == frozenset()

    def test_reduct_unknown_relation(self, triangle):
        with pytest.raises(ValidationError):
            triangle.reduct(Vocabulary({"Z": 1}))

    def test_expand_with_constants(self, triangle):
        expanded = triangle.expand_with_constants({"c1": 0})
        assert expanded.constant("c1") == 0
        assert expanded.vocabulary.has_constant("c1")


class TestSubstructureIteration:
    def test_immediate_substructures(self, triangle):
        subs = list(triangle.substructures())
        # 3 fact removals; no isolated elements
        assert len(subs) == 3
        assert all(sub.is_proper_substructure_of(triangle) for sub in subs)

    def test_isolated_element_removal(self):
        s = Structure(GRAPH_VOCABULARY, [0, 1, 2], {"E": [(0, 1)]})
        subs = list(s.substructures())
        sizes = sorted(sub.size() for sub in subs)
        assert sizes == [2, 3]  # drop element 2, or drop the fact

    def test_constant_element_never_dropped(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        s = Structure(vocab, [0, 1], {}, {"c": 0})
        subs = list(s.substructures())
        assert all(0 in sub.universe_set for sub in subs)

    def test_active_elements(self, triangle):
        assert triangle.active_elements() == frozenset({0, 1, 2})
        s = Structure(GRAPH_VOCABULARY, [0, 1], {})
        assert s.active_elements() == frozenset()


class TestEquality:
    def test_eq_hash(self, triangle):
        again = Structure(GRAPH_VOCABULARY, [2, 1, 0],
                          {"E": [(2, 0), (0, 1), (1, 2)]})
        assert triangle == again
        assert hash(triangle) == hash(again)

    def test_neq(self, triangle):
        assert triangle != triangle.without_fact("E", (0, 1))

    def test_repr(self, triangle):
        assert "E:3" in repr(triangle)
