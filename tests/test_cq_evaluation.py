"""Unit tests for the join-based CQ evaluation engines."""

import pytest

from repro.cq import (
    ConjunctiveQuery,
    evaluate_naive,
    evaluate_yannakakis,
    evaluation_agrees,
    gyo_reduction,
    is_acyclic_cq,
)
from repro.exceptions import UnsupportedFragmentError
from repro.logic import parse_formula
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    directed_clique,
    directed_cycle,
    directed_path,
    random_directed_graph,
)


def cq(text, vocab=GRAPH_VOCABULARY):
    return ConjunctiveQuery.from_formula(parse_formula(text, vocab), vocab)


PATH_QUERY = cq("exists z. E(x, z) & E(z, y)")
TRIANGLE = cq("exists x y z. E(x,y) & E(y,z) & E(z,x)")
STAR_QUERY = cq("E(x, a) & E(x, b) & E(x, c)")


class TestNaive:
    def test_matches_hom_based(self):
        for seed in range(8):
            s = random_directed_graph(5, 0.35, seed)
            for q in (PATH_QUERY, TRIANGLE, STAR_QUERY):
                assert evaluate_naive(q, s) == q.evaluate(s)

    def test_boolean(self):
        assert evaluate_naive(TRIANGLE, directed_cycle(3)) == {()}
        assert evaluate_naive(TRIANGLE, directed_cycle(4)) == set()

    def test_empty_body(self):
        q = ConjunctiveQuery(GRAPH_VOCABULARY, (), ())
        assert evaluate_naive(q, directed_path(2)) == {()}

    def test_empty_relation_short_circuits(self):
        s = Structure(GRAPH_VOCABULARY, [0, 1], {})
        assert evaluate_naive(PATH_QUERY, s) == set()

    def test_constants_in_query(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        s = Structure(vocab, [0, 1, 2],
                      {"E": [(0, 1), (1, 2)]}, {"c": 1})
        q = ConjunctiveQuery(
            vocab, ("x",),
            (parse_formula("E(x, c)", vocab),),
        )
        assert evaluate_naive(q, s) == {(0,)}


class TestGYO:
    def test_path_query_acyclic(self):
        assert is_acyclic_cq(PATH_QUERY)
        tree = gyo_reduction(PATH_QUERY)
        assert tree is not None
        assert len(tree.roots()) == 1

    def test_triangle_cyclic(self):
        assert not is_acyclic_cq(TRIANGLE)
        assert gyo_reduction(TRIANGLE) is None

    def test_star_acyclic(self):
        assert is_acyclic_cq(STAR_QUERY)

    def test_empty_body_acyclic(self):
        assert is_acyclic_cq(ConjunctiveQuery(GRAPH_VOCABULARY, (), ()))

    def test_cycle4_query_cyclic(self):
        q = cq("exists a b c d. E(a,b) & E(b,c) & E(c,d) & E(d,a)")
        assert not is_acyclic_cq(q)

    def test_single_atom(self):
        q = cq("E(x, y)")
        tree = gyo_reduction(q)
        assert tree is not None and len(tree.atoms) == 1


class TestYannakakis:
    def test_matches_reference_on_acyclic(self):
        queries = [
            PATH_QUERY,
            STAR_QUERY,
            cq("exists z w. E(x, z) & E(z, w) & E(w, y)"),
            cq("E(x, y)"),
        ]
        for seed in range(6):
            s = random_directed_graph(5, 0.4, seed)
            for q in queries:
                assert evaluate_yannakakis(q, s) == q.evaluate(s)

    def test_rejects_cyclic(self):
        with pytest.raises(UnsupportedFragmentError):
            evaluate_yannakakis(TRIANGLE, directed_cycle(3))

    def test_boolean_acyclic(self):
        q = cq("exists x y z. E(x,y) & E(y,z)")
        assert evaluate_yannakakis(q, directed_path(3)) == {()}
        assert evaluate_yannakakis(q, directed_path(2)) == set()

    def test_dangling_tuples_filtered(self):
        # semijoin must remove tuples with no continuation
        q = cq("E(x, y) & exists z. E(y, z)")
        assert evaluate_yannakakis(q, directed_path(3)) == {(0, 1)}

    def test_higher_arity(self):
        vocab = Vocabulary({"T": 3, "P": 1})
        s = Structure(
            vocab,
            [0, 1, 2],
            {"T": [(0, 1, 2), (1, 1, 1)], "P": [(0,), (1,)]},
        )
        q = ConjunctiveQuery(
            vocab,
            ("x",),
            (
                parse_formula("T(x, y, z)", vocab),
                parse_formula("P(x)", vocab),
            ),
        )
        assert evaluate_yannakakis(q, s) == {(0,), (1,)}


class TestAgreement:
    def test_cross_engine_oracle(self):
        queries = [PATH_QUERY, TRIANGLE, STAR_QUERY, cq("exists x. E(x, x)")]
        for seed in range(5):
            s = random_directed_graph(5, 0.4, seed + 20)
            for q in queries:
                assert evaluation_agrees(q, s)
