"""Unit tests for Datalog programs and their parser."""

import pytest

from repro.datalog import (
    DatalogProgram,
    Rule,
    parse_program,
    parse_rule,
    transitive_closure_program,
    same_generation_program,
    path_up_to_length_program,
)
from repro.exceptions import ValidationError
from repro.logic import Atom, Var, atom
from repro.structures import GRAPH_VOCABULARY, Vocabulary


class TestRule:
    def test_parse_simple(self):
        r = parse_rule("T(x, y) <- E(x, y).")
        assert r.head == atom("T", "x", "y")
        assert r.body == (atom("E", "x", "y"),)

    def test_parse_multi_atom_body(self):
        r = parse_rule("T(x, y) <- E(x, z), T(z, y).")
        assert len(r.body) == 2

    def test_unsafe_rule_rejected(self):
        with pytest.raises(ValidationError):
            parse_rule("T(x, y) <- E(x, x).")

    def test_empty_body_ground_only(self):
        with pytest.raises(ValidationError):
            Rule(atom("T", "x"), ())

    def test_variables(self):
        r = parse_rule("T(x, y) <- E(x, z), T(z, y).")
        assert r.variables() == frozenset({"x", "y", "z"})

    def test_constants_in_rules(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        r = parse_rule("T(x) <- E(x, c).", vocab)
        from repro.logic import Const

        assert r.body[0].terms[1] == Const("c")

    def test_str(self):
        r = parse_rule("T(x, y) <- E(x, y).")
        assert "T(x, y)" in str(r) and "<-" in str(r)

    def test_garbage_rejected(self):
        with pytest.raises(ValidationError):
            parse_rule("this is not a rule")


class TestProgram:
    def test_transitive_closure(self):
        tc = transitive_closure_program()
        assert tc.idb_predicates == ("T",)
        assert tc.edb_predicates == ("E",)
        assert tc.variable_count() == 3
        assert tc.is_k_datalog(3)
        assert not tc.is_k_datalog(2)
        assert tc.is_linear()

    def test_same_generation_not_linear_check(self):
        sg = same_generation_program()
        assert sg.is_linear()  # one SG atom per body
        assert sg.idb_arity("SG") == 2

    def test_nonlinear(self):
        p = parse_program(
            "T(x, y) <- E(x, y).\nT(x, y) <- T(x, z), T(z, y).",
            GRAPH_VOCABULARY,
        )
        assert not p.is_linear()

    def test_idb_arity_conflict_rejected(self):
        with pytest.raises(ValidationError):
            parse_program(
                "T(x, y) <- E(x, y).\nT(x) <- E(x, x).", GRAPH_VOCABULARY
            )

    def test_head_colliding_with_edb_rejected(self):
        with pytest.raises(ValidationError):
            parse_program("E(x, y) <- E(y, x).", GRAPH_VOCABULARY)

    def test_unknown_body_predicate_rejected(self):
        with pytest.raises(ValidationError):
            parse_program("T(x, y) <- Unknown(x, y).", GRAPH_VOCABULARY)

    def test_edb_arity_checked(self):
        with pytest.raises(ValidationError):
            parse_program("T(x) <- E(x).", GRAPH_VOCABULARY)

    def test_empty_program_rejected(self):
        with pytest.raises(ValidationError):
            DatalogProgram([], GRAPH_VOCABULARY)

    def test_comments_ignored(self):
        p = parse_program(
            """
            % transitive closure
            # another comment
            T(x, y) <- E(x, y).
            """,
            GRAPH_VOCABULARY,
        )
        assert len(p.rules) == 1

    def test_rules_for(self):
        tc = transitive_closure_program()
        assert len(tc.rules_for("T")) == 2
        assert tc.rules_for("Z") == []

    def test_path_program_generator(self):
        p = path_up_to_length_program(3)
        assert len(p.rules) == 3
        assert p.idb_predicates == ("P",)

    def test_str(self):
        assert "T(x, y)" in str(transitive_closure_program())
