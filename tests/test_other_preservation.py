"""Unit tests for extension/monotone preservation (Łoś–Tarski, Lyndon)."""

import pytest

from repro.core import (
    canonical_existential_sentence,
    check_monotone,
    check_preserved_under_extensions,
    extension_closure_sample,
    is_minimal_induced_model,
    rewrite_to_existential,
    section_1_implications,
)
from repro.logic import parse_formula, satisfies
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    directed_cycle,
    directed_path,
    random_directed_graph,
    single_loop,
)


def fo(text):
    return parse_formula(text, GRAPH_VOCABULARY)


SAMPLES = extension_closure_sample(
    [random_directed_graph(3, 0.4, s) for s in range(8)]
    + [directed_cycle(3), directed_path(3), single_loop()]
)


class TestExtensionCheck:
    def test_existential_queries_pass(self):
        for text in ("exists x y. E(x, y)",
                     "exists x y. E(x, y) & ~E(y, x)",
                     "exists x. ~E(x, x)"):
            assert check_preserved_under_extensions(fo(text), SAMPLES) is None

    def test_universal_query_fails(self):
        total = fo("forall x. exists y. E(x, y)")
        violation = check_preserved_under_extensions(total, SAMPLES)
        assert violation is not None
        assert violation.small.is_induced_substructure_of(violation.large)

    def test_closure_sample_adds_extensions(self):
        base = [directed_cycle(3)]
        extended = extension_closure_sample(base)
        assert len(extended) > 1
        assert any(s.size() == 4 for s in extended)


class TestMonotoneCheck:
    def test_positive_queries_pass(self):
        for text in ("exists x y. E(x, y)",
                     "forall x. exists y. E(x, y)"):
            assert check_monotone(fo(text), SAMPLES) is None

    def test_negation_fails_monotonicity(self):
        no_loop = fo("~(exists x. E(x, x))")
        violation = check_monotone(no_loop, SAMPLES)
        assert violation is not None
        assert violation.smaller.is_substructure_of(violation.larger)

    def test_asymmetric_edge_fails_monotonicity(self):
        q = fo("exists x y. E(x, y) & ~E(y, x)")
        assert check_monotone(q, [directed_path(2)]) is not None


class TestCanonicalExistentialSentence:
    def test_induced_embedding_semantics(self):
        c3 = directed_cycle(3)
        sentence = canonical_existential_sentence(c3)
        assert satisfies(c3, sentence)
        assert satisfies(c3.with_element(9), sentence)
        # C6 contains no *induced* C3
        assert not satisfies(directed_cycle(6), sentence)

    def test_negative_atoms_matter(self):
        # an edge (0,1): adding the back edge breaks the induced copy ...
        edge = Structure(GRAPH_VOCABULARY, [0, 1], {"E": [(0, 1)]})
        sentence = canonical_existential_sentence(edge)
        two_cycle = Structure(GRAPH_VOCABULARY, [0, 1],
                              {"E": [(0, 1), (1, 0)]})
        assert not satisfies(two_cycle, sentence)
        # ... unless extra elements still hold an induced copy
        assert satisfies(directed_path(3), sentence)


class TestMinimalInducedModels:
    def test_loop_minimal(self):
        has_loop = fo("exists x. E(x, x)")
        assert is_minimal_induced_model(has_loop, single_loop())
        assert not is_minimal_induced_model(
            has_loop, single_loop().with_element(7)
        )

    def test_non_model_rejected(self):
        has_loop = fo("exists x. E(x, x)")
        assert not is_minimal_induced_model(has_loop, directed_path(2))


class TestLosTarskiRewriting:
    def test_loop_query(self):
        has_loop = fo("exists x. E(x, x)")
        result = rewrite_to_existential(
            has_loop, GRAPH_VOCABULARY, max_size=1,
            verification_sample=SAMPLES,
        )
        assert len(result.minimal_models) == 1
        assert result.verified_on == len(SAMPLES)

    def test_asymmetric_edge_query(self):
        q = fo("exists x y. E(x, y) & ~E(y, x)")
        result = rewrite_to_existential(
            q, GRAPH_VOCABULARY, max_size=2, verification_sample=SAMPLES
        )
        assert result.verified_on == len(SAMPLES)
        # minimal induced models: various 2-element types containing an
        # asymmetric edge (loops on endpoints allowed)
        assert len(result.minimal_models) >= 1

    def test_cap_too_small_detected(self):
        two_loops = fo("exists x y. E(x, x) & E(y, y) & ~(x = y)")
        with pytest.raises(AssertionError):
            rewrite_to_existential(
                two_loops, GRAPH_VOCABULARY, max_size=1,
                verification_sample=[
                    Structure(GRAPH_VOCABULARY, [0, 1],
                              {"E": [(0, 0), (1, 1)]})
                ],
            )


class TestSection1Chain:
    def test_ep_has_all_properties(self):
        report = section_1_implications(fo("exists x y. E(x, y)"), SAMPLES)
        assert report == {"homomorphism": True, "extensions": True,
                          "monotone": True}

    def test_hom_implies_others_on_samples(self):
        """Section 1: hom-preservation implies extension-preservation and
        monotonicity — no sampled query may violate the implication."""
        queries = [
            "exists x y. E(x, y)",
            "exists x. E(x, x)",
            "exists x y. E(x, y) & ~E(y, x)",
            "forall x. exists y. E(x, y)",
            "~(exists x. E(x, x))",
        ]
        for text in queries:
            report = section_1_implications(fo(text), SAMPLES)
            if report["homomorphism"]:
                assert report["extensions"] and report["monotone"], text
