"""Interrupted sweeps clean up instead of leaning on TTL expiry.

``repro sweep`` installs SIGTERM/SIGINT handlers that convert the
signal into :class:`KeyboardInterrupt`; the CLI then

* compacts the checkpoint journal (plain sweeps) so the next run
  resumes from a journal with no torn tail,
* releases the in-flight shard lease (sharded sweeps) so another
  runner can claim the shard immediately,

and exits 130 with an actionable stderr message either way.
"""

import signal

import pytest

from repro.cli import _install_interrupt_handlers, main
from repro.distributed import LeaseManager, partition
from repro.distributed.runner import ShardedSweepOutcome, _run_shard
from repro.resources import SweepJournal

GRID = [(f"i{n:02d}", ("ok", n)) for n in range(6)]


# ---------------------------------------------------------------------------
# Signal installation
# ---------------------------------------------------------------------------
class TestInstallHandlers:
    def test_sigterm_and_sigint_raise_keyboard_interrupt(self, monkeypatch):
        installed = {}

        def fake_signal(signum, handler):
            installed[signum] = handler

        monkeypatch.setattr(signal, "signal", fake_signal)
        _install_interrupt_handlers()
        assert set(installed) == {signal.SIGTERM, signal.SIGINT}
        for handler in installed.values():
            with pytest.raises(KeyboardInterrupt):
                handler(signal.SIGTERM, None)

    def test_non_main_thread_is_a_noop(self, monkeypatch):
        # signal.signal raises ValueError off the main thread; the
        # guard must bail before ever calling it.
        import threading

        called = []
        monkeypatch.setattr(
            signal, "signal",
            lambda *a: called.append(a),
        )
        result = []
        worker = threading.Thread(
            target=lambda: result.append(_install_interrupt_handlers())
        )
        worker.start()
        worker.join()
        assert called == []

    def test_exotic_platform_failure_is_swallowed(self, monkeypatch):
        def broken_signal(signum, handler):
            raise ValueError("unsupported signal")

        monkeypatch.setattr(signal, "signal", broken_signal)
        _install_interrupt_handlers()  # must not raise


# ---------------------------------------------------------------------------
# Plain sweep: journal compaction on interrupt
# ---------------------------------------------------------------------------
class TestPlainSweepInterrupt:
    def test_interrupt_compacts_journal_and_exits_130(
        self, tmp_path, monkeypatch, capsys
    ):
        journal_file = str(tmp_path / "sweep.jsonl")

        def interrupted_run_sweep(task, instances, **kwargs):
            # Checkpoint two instances twice (duplicate keys are what
            # compaction squeezes out), then die mid-flight.
            journal = kwargs["journal"]
            for key in ("grid-3x3", "tree-20"):
                journal.record(key, {"status": "ok"})
                journal.record(key, {"status": "ok"})
            raise KeyboardInterrupt("signal 15")

        import repro.parallel

        monkeypatch.setattr(
            repro.parallel, "run_sweep", interrupted_run_sweep
        )
        code = main(
            ["sweep", "treewidth", "--journal", journal_file]
        )
        err = capsys.readouterr().err
        assert code == 130
        assert "compacted" in err
        assert "resume" in err
        # The compacted journal is clean: deduplicated, no torn tail.
        journal = SweepJournal(journal_file)
        assert sorted(journal.keys()) == ["grid-3x3", "tree-20"]
        assert journal.integrity() == "ok"
        assert not journal.needs_compaction()

    def test_interrupt_without_journal_reports_discard(
        self, monkeypatch, capsys
    ):
        def interrupted_run_sweep(task, instances, **kwargs):
            raise KeyboardInterrupt("signal 2")

        import repro.parallel

        monkeypatch.setattr(
            repro.parallel, "run_sweep", interrupted_run_sweep
        )
        code = main(["sweep", "treewidth"])
        err = capsys.readouterr().err
        assert code == 130
        assert "progress discarded" in err

    def test_sweep_installs_handlers_before_running(self, monkeypatch):
        installed = []
        monkeypatch.setattr(
            "repro.cli._install_interrupt_handlers",
            lambda: installed.append(True),
        )

        def instant_run_sweep(task, instances, **kwargs):
            raise KeyboardInterrupt

        import repro.parallel

        monkeypatch.setattr(
            repro.parallel, "run_sweep", instant_run_sweep
        )
        assert main(["sweep", "treewidth"]) == 130
        assert installed == [True]


# ---------------------------------------------------------------------------
# Sharded sweep: lease release on interrupt
# ---------------------------------------------------------------------------
class TestShardedSweepInterrupt:
    def test_cli_reports_release_and_exits_130(
        self, tmp_path, monkeypatch, capsys
    ):
        def interrupted_sharded(*args, **kwargs):
            raise KeyboardInterrupt("signal 15")

        import repro.distributed

        monkeypatch.setattr(
            repro.distributed, "run_sharded_sweep", interrupted_sharded
        )
        code = main([
            "sweep", "treewidth",
            "--shard-dir", str(tmp_path), "--shards", "2",
        ])
        err = capsys.readouterr().err
        assert code == 130
        assert "lease released" in err
        assert "resumable" in err

    def test_run_shard_releases_lease_on_interrupt(self, tmp_path):
        # The lease must be claimable by another runner *immediately*
        # after the interrupt — not after the TTL expires.
        parts = partition(GRID, 2)

        def interrupting_task(spec):
            raise KeyboardInterrupt("signal 15")

        manager = LeaseManager(str(tmp_path), "victim", ttl_s=3600.0)
        lease = manager.claim(0)
        assert lease is not None
        with pytest.raises(KeyboardInterrupt):
            _run_shard(
                interrupting_task, parts[0], str(tmp_path), 0,
                manager, lease, ShardedSweepOutcome(runner="victim", shards=2),
                workers=1, mode="interrupt-test",
            )
        # A fresh runner claims the shard without stealing: the victim
        # released it rather than leaving a live hour-long lease.
        successor = LeaseManager(str(tmp_path), "successor", ttl_s=10.0)
        reclaimed = successor.claim(0)
        assert reclaimed is not None
        assert not reclaimed.stolen

    def test_run_shard_interrupt_survives_broken_release(
        self, tmp_path, monkeypatch
    ):
        # Best effort: a failing release must not mask the interrupt.
        parts = partition(GRID, 2)

        def interrupting_task(spec):
            raise KeyboardInterrupt("signal 15")

        manager = LeaseManager(str(tmp_path), "victim", ttl_s=3600.0)
        lease = manager.claim(0)
        monkeypatch.setattr(
            manager, "release",
            lambda _lease: (_ for _ in ()).throw(OSError("disk gone")),
        )
        with pytest.raises(KeyboardInterrupt):
            _run_shard(
                interrupting_task, parts[0], str(tmp_path), 0,
                manager, lease, ShardedSweepOutcome(runner="victim", shards=2),
                workers=1, mode="interrupt-test",
            )
