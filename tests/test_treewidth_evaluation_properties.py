"""Property-based tests for the tree-decomposition CQ evaluator.

Randomized differential testing of ``evaluate_by_tree_decomposition``
against the join-based evaluators in :mod:`repro.cq.evaluation` and the
homomorphism-based :meth:`ConjunctiveQuery.evaluate`:

* random *acyclic* (tree-shaped, hence width-1 and GYO-acyclic) queries,
  where Yannakakis is also applicable and must agree;
* random *width-2* queries (variable cycles, optionally chorded), where
  only the naive join and the treewidth engine apply;
* empty-result edge cases (an atom over an empty relation must zero out
  every engine, including mid-semijoin);
* constants in the query body (terms interpreted by the structure, not
  joined as variables).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cq import (
    ConjunctiveQuery,
    evaluate_by_tree_decomposition,
    evaluate_naive,
    evaluate_yannakakis,
    is_acyclic_cq,
    query_treewidth,
)
from repro.logic.syntax import Atom, Const, Var
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    random_structure,
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _edge(a: str, b: str) -> Atom:
    return Atom("E", (Var(a), Var(b)))


@st.composite
def tree_queries(draw, max_atoms=5):
    """Tree-shaped binary queries: atom ``i`` attaches a fresh variable
    to one already-introduced variable, so the variable graph is a tree
    (treewidth 1) and the hypergraph is GYO-acyclic."""
    n_atoms = draw(st.integers(min_value=1, max_value=max_atoms))
    variables = ["v0", "v1"]
    flipped = draw(st.booleans())
    atoms = [_edge("v1", "v0") if flipped else _edge("v0", "v1")]
    for i in range(1, n_atoms):
        anchor = draw(st.sampled_from(variables))
        fresh = f"v{i + 1}"
        variables.append(fresh)
        if draw(st.booleans()):
            atoms.append(_edge(anchor, fresh))
        else:
            atoms.append(_edge(fresh, anchor))
    n_head = draw(st.integers(min_value=0, max_value=min(2, len(variables))))
    head = tuple(draw(st.permutations(variables))[:n_head])
    return ConjunctiveQuery(GRAPH_VOCABULARY, head, tuple(atoms))


@st.composite
def width2_queries(draw):
    """Variable-cycle queries (optionally chorded): treewidth exactly 2,
    and cyclic as hypergraphs, so Yannakakis does not apply."""
    k = draw(st.integers(min_value=3, max_value=5))
    variables = [f"v{i}" for i in range(k)]
    atoms = [
        _edge(variables[i], variables[(i + 1) % k]) for i in range(k)
    ]
    if k >= 4 and draw(st.booleans()):
        atoms.append(_edge(variables[0], variables[2]))
    n_head = draw(st.integers(min_value=0, max_value=1))
    head = tuple(variables[:n_head])
    return ConjunctiveQuery(GRAPH_VOCABULARY, head, tuple(atoms))


@st.composite
def digraph_structures(draw, max_size=4):
    size = draw(st.integers(min_value=1, max_value=max_size))
    density = draw(st.sampled_from([0.0, 0.2, 0.4, 0.7]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_structure(GRAPH_VOCABULARY, size, density, seed=seed)


class TestAcyclicAgreement:
    @SETTINGS
    @given(query=tree_queries(), structure=digraph_structures())
    def test_all_four_engines_agree_on_acyclic(self, query, structure):
        assert query_treewidth(query) <= 1
        assert is_acyclic_cq(query)
        reference = query.evaluate(structure)
        assert evaluate_naive(query, structure) == reference
        assert evaluate_yannakakis(query, structure) == reference
        assert evaluate_by_tree_decomposition(query, structure) == reference

    @SETTINGS
    @given(query=tree_queries(max_atoms=3), structure=digraph_structures())
    def test_boolean_projection_of_acyclic(self, query, structure):
        boolean = ConjunctiveQuery(query.vocabulary, (), query.body)
        answers = evaluate_by_tree_decomposition(boolean, structure)
        assert answers in ({()}, set())
        # a non-empty answer set for the open query forces truth of the
        # Boolean projection, and vice versa
        open_answers = evaluate_by_tree_decomposition(query, structure)
        if query.head:
            assert bool(open_answers) == (answers == {()})


class TestWidthTwoAgreement:
    @SETTINGS
    @given(query=width2_queries(), structure=digraph_structures())
    def test_treewidth_engine_matches_naive_on_width2(
        self, query, structure
    ):
        assert query_treewidth(query) == 2
        reference = evaluate_naive(query, structure)
        assert evaluate_by_tree_decomposition(query, structure) == reference
        assert query.evaluate(structure) == reference


class TestEmptyResultEdgeCases:
    @SETTINGS
    @given(query=tree_queries(), size=st.integers(min_value=1, max_value=4))
    def test_empty_relation_zeroes_every_engine(self, query, size):
        empty = Structure(GRAPH_VOCABULARY, range(size))
        assert evaluate_by_tree_decomposition(query, empty) == set()
        assert evaluate_naive(query, empty) == set()
        assert evaluate_yannakakis(query, empty) == set()

    def test_semijoin_wipeout_mid_tree(self):
        # E has edges but no 2-path: the root bag is non-empty until the
        # bottom-up semijoin pass empties it
        query = ConjunctiveQuery(
            GRAPH_VOCABULARY,
            (),
            (_edge("x", "y"), _edge("y", "z")),
        )
        structure = Structure(
            GRAPH_VOCABULARY, range(4),
            {"E": [(0, 1), (2, 3)]},
        )
        assert evaluate_by_tree_decomposition(query, structure) == set()
        assert evaluate_yannakakis(query, structure) == set()

    def test_boolean_empty_body(self):
        query = ConjunctiveQuery(GRAPH_VOCABULARY, (), ())
        structure = Structure(GRAPH_VOCABULARY, range(2))
        assert evaluate_by_tree_decomposition(query, structure) == {()}


class TestConstantsInQuery:
    VOCAB = Vocabulary({"E": 2}, constants=("c",))

    @st.composite
    def constant_queries(draw):  # noqa: N805 - hypothesis composite
        vocab = TestConstantsInQuery.VOCAB
        pattern = draw(st.sampled_from([
            # edges into / out of the constant
            (Atom("E", (Var("x"), Const("c"))),),
            (Atom("E", (Const("c"), Var("x"))),),
            # a path through the constant
            (Atom("E", (Var("x"), Const("c"))),
             Atom("E", (Const("c"), Var("y")))),
            # constant on both sides (a loop check plus a free edge)
            (Atom("E", (Const("c"), Const("c"))),
             Atom("E", (Var("x"), Var("y")))),
        ]))
        body_vars = sorted(
            {t.name for a in pattern for t in a.terms if isinstance(t, Var)}
        )
        n_head = draw(st.integers(min_value=0, max_value=len(body_vars)))
        return ConjunctiveQuery(vocab, tuple(body_vars[:n_head]), pattern)

    @SETTINGS
    @given(
        query=constant_queries(),
        size=st.integers(min_value=1, max_value=4),
        density=st.sampled_from([0.0, 0.3, 0.6]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_constants_agree_across_engines(
        self, query, size, density, seed
    ):
        structure = random_structure(self.VOCAB, size, density, seed=seed)
        reference = evaluate_naive(query, structure)
        assert evaluate_by_tree_decomposition(query, structure) == reference
        assert query.evaluate(structure) == reference

    def test_constant_pins_the_answer(self):
        structure = Structure(
            self.VOCAB, range(3), {"E": [(0, 1), (1, 2)]}, {"c": 1}
        )
        into = ConjunctiveQuery(
            self.VOCAB, ("x",), (Atom("E", (Var("x"), Const("c"))),)
        )
        assert evaluate_by_tree_decomposition(into, structure) == {(0,)}
        out = ConjunctiveQuery(
            self.VOCAB, ("x",), (Atom("E", (Const("c"), Var("x"))),)
        )
        assert evaluate_by_tree_decomposition(out, structure) == {(2,)}
