"""Unit tests for cores, retractions and homomorphic equivalence."""

import pytest

from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    bicycle_structure,
    bicycle_with_hub_constant,
    clique_structure,
    directed_cycle,
    directed_path,
    disjoint_union,
    grid_structure,
    single_edge,
    single_loop,
    undirected_cycle,
    undirected_path,
    wheel_structure,
)
from repro.homomorphism import (
    are_homomorphically_equivalent,
    are_isomorphic,
    compute_core,
    compute_core_with_map,
    core_certificate,
    find_proper_retraction,
    find_retraction,
    have_same_core,
    homomorphism_preorder_classes,
    is_core,
    is_homomorphism,
    is_retract,
)


class TestIsCore:
    def test_directed_cycles_are_cores(self):
        for n in (2, 3, 4, 5):
            assert is_core(directed_cycle(n))

    def test_directed_paths_are_cores(self):
        # directed paths have no proper retract (endpoints forced)
        for n in (1, 2, 3, 4):
            assert is_core(directed_path(n))

    def test_cliques_are_cores(self):
        for n in (1, 2, 3, 4):
            assert is_core(clique_structure(n))

    def test_even_undirected_cycle_not_core(self):
        assert not is_core(undirected_cycle(4))

    def test_odd_undirected_cycle_is_core(self):
        assert is_core(undirected_cycle(5))

    def test_odd_wheel_is_core(self):
        assert is_core(wheel_structure(5))
        assert is_core(wheel_structure(7))

    def test_even_wheel_not_core(self):
        assert not is_core(wheel_structure(4))
        assert not is_core(wheel_structure(6))


class TestComputeCore:
    def test_bipartite_core_is_single_edge(self):
        for s in (undirected_path(4), grid_structure(2, 3),
                  undirected_cycle(6)):
            core = compute_core(s)
            assert are_isomorphic(core, single_edge()) or core.size() == 2

    def test_loop_absorbs_everything(self):
        s = Structure(GRAPH_VOCABULARY, [0, 1, 2],
                      {"E": [(0, 0), (0, 1), (1, 2)]})
        core = compute_core(s)
        assert are_isomorphic(core, single_loop())

    def test_core_of_core_is_core(self):
        s = grid_structure(3, 3)
        core = compute_core(s)
        assert is_core(core)
        assert compute_core(core) == core

    def test_core_is_substructure(self):
        s = undirected_cycle(6)
        core = compute_core(s)
        assert core.is_substructure_of(s)

    def test_core_homomorphically_equivalent(self):
        s = grid_structure(2, 4)
        assert are_homomorphically_equivalent(s, compute_core(s))

    def test_disjoint_union_of_equivalent(self):
        u = disjoint_union(directed_cycle(3), directed_cycle(3))
        core = compute_core(u)
        assert core.size() == 3

    def test_core_map_is_hom_onto(self):
        s = undirected_cycle(8)
        core, mapping = compute_core_with_map(s)
        assert is_homomorphism(s, core, mapping)
        assert set(mapping.values()) == set(core.universe)

    def test_certificate(self):
        core, mapping, ok = core_certificate(grid_structure(2, 3))
        assert ok

    def test_core_unique_up_to_iso(self):
        # two different hom-equivalent structures share their core shape
        a = compute_core(undirected_cycle(4))
        b = compute_core(undirected_path(5))
        assert are_isomorphic(a, b)


class TestPaperExamples:
    def test_bicycle_core_is_k4(self):
        core = compute_core(bicycle_structure(5))
        assert core.size() == 4
        assert are_isomorphic(
            core.canonical_relabel(), clique_structure(4).canonical_relabel()
        )

    def test_bicycle_with_hub_is_core_for_odd_n(self):
        for n in (5, 7):
            assert is_core(bicycle_with_hub_constant(n))

    def test_constants_protected_in_core(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        s = Structure(vocab, [0, 1, 2],
                      {"E": [(0, 1), (1, 0), (1, 2), (2, 1)]}, {"c": 2})
        core = compute_core(s)
        assert 2 in core.universe_set


class TestRetractions:
    def test_find_retraction_onto_edge(self):
        s = undirected_path(4)
        r = find_retraction(s, [0, 1])
        assert r is not None
        assert r[0] == 0 and r[1] == 1
        assert set(r.values()) <= {0, 1}

    def test_no_retraction_shrinking_odd_cycle(self):
        s = undirected_cycle(5)
        assert find_retraction(s, [0, 1]) is None

    def test_is_retract(self):
        s = undirected_path(4)
        sub = s.restrict([1, 2])
        assert is_retract(s, sub)

    def test_is_retract_rejects_non_substructure(self):
        assert not is_retract(undirected_path(3), directed_cycle(3))

    def test_proper_retraction_none_for_core(self):
        assert find_proper_retraction(directed_cycle(4)) is None


class TestEquivalenceClasses:
    def test_have_same_core(self):
        assert have_same_core(undirected_cycle(4), undirected_path(3))
        assert not have_same_core(undirected_cycle(5), undirected_path(3))

    def test_preorder_classes(self):
        structures = [
            undirected_path(3),
            undirected_cycle(4),
            undirected_cycle(5),
            directed_cycle(3),
        ]
        classes = homomorphism_preorder_classes(structures)
        assert len(classes) == 3
        sizes = sorted(len(c) for c in classes)
        assert sizes == [1, 1, 2]
