"""Unit tests for the FO parser."""

import pytest

from repro.exceptions import ValidationError
from repro.logic import (
    And,
    Atom,
    Bottom,
    Const,
    Equal,
    Exists,
    Forall,
    Not,
    Or,
    Top,
    Var,
    parse_formula,
)
from repro.structures import GRAPH_VOCABULARY, Vocabulary


class TestAtoms:
    def test_simple_atom(self):
        f = parse_formula("E(x, y)", GRAPH_VOCABULARY)
        assert f == Atom("E", (Var("x"), Var("y")))

    def test_arity_checked(self):
        with pytest.raises(ValidationError):
            parse_formula("E(x)", GRAPH_VOCABULARY)

    def test_unknown_relation_checked(self):
        with pytest.raises(ValidationError):
            parse_formula("Z(x, y)", GRAPH_VOCABULARY)

    def test_no_vocabulary_no_checks(self):
        f = parse_formula("Z(x, y, z)")
        assert isinstance(f, Atom) and len(f.terms) == 3

    def test_constants_recognized(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        f = parse_formula("E(x, c)", vocab)
        assert f.terms[1] == Const("c")

    def test_equality(self):
        f = parse_formula("x = y")
        assert f == Equal(Var("x"), Var("y"))

    def test_true_false(self):
        assert isinstance(parse_formula("true"), Top)
        assert isinstance(parse_formula("false"), Bottom)

    def test_nullary_atom(self):
        vocab = Vocabulary({"Flag": 0})
        f = parse_formula("Flag()", vocab)
        assert f == Atom("Flag", ())


class TestConnectives:
    def test_conjunction(self):
        f = parse_formula("E(x, y) & E(y, z)", GRAPH_VOCABULARY)
        assert isinstance(f, And) and len(f.operands) == 2

    def test_disjunction(self):
        f = parse_formula("E(x, y) | E(y, x)", GRAPH_VOCABULARY)
        assert isinstance(f, Or)

    def test_negation(self):
        f = parse_formula("~E(x, y)", GRAPH_VOCABULARY)
        assert isinstance(f, Not)

    def test_double_negation(self):
        f = parse_formula("~~E(x, y)", GRAPH_VOCABULARY)
        assert isinstance(f, Not) and isinstance(f.operand, Not)

    def test_precedence_and_over_or(self):
        f = parse_formula("E(x,y) & E(y,z) | E(z,x)", GRAPH_VOCABULARY)
        assert isinstance(f, Or)

    def test_parentheses(self):
        f = parse_formula("E(x,y) & (E(y,z) | E(z,x))", GRAPH_VOCABULARY)
        assert isinstance(f, And)

    def test_implication(self):
        f = parse_formula("E(x,y) -> E(y,x)", GRAPH_VOCABULARY)
        assert isinstance(f, Or)  # desugared

    def test_iff(self):
        f = parse_formula("E(x,y) <-> E(y,x)", GRAPH_VOCABULARY)
        assert isinstance(f, And)


class TestQuantifiers:
    def test_exists(self):
        f = parse_formula("exists x. E(x, x)", GRAPH_VOCABULARY)
        assert isinstance(f, Exists)

    def test_forall(self):
        f = parse_formula("forall x. E(x, x)", GRAPH_VOCABULARY)
        assert isinstance(f, Forall)

    def test_multiple_names(self):
        f = parse_formula("exists x y. E(x, y)", GRAPH_VOCABULARY)
        assert isinstance(f, Exists) and isinstance(f.body, Exists)

    def test_comma_separated_names(self):
        f = parse_formula("exists x, y. E(x, y)", GRAPH_VOCABULARY)
        assert isinstance(f, Exists) and isinstance(f.body, Exists)

    def test_nested_quantifiers(self):
        f = parse_formula("forall x. exists y. E(x, y)", GRAPH_VOCABULARY)
        assert isinstance(f, Forall) and isinstance(f.body, Exists)

    def test_quantifier_scopes_tightly_after_connective(self):
        f = parse_formula(
            "E(x, y) & exists z. E(y, z)", GRAPH_VOCABULARY
        )
        assert isinstance(f, And)

    def test_missing_dot(self):
        with pytest.raises(ValidationError):
            parse_formula("exists x E(x, x)", GRAPH_VOCABULARY)


class TestErrors:
    def test_trailing_tokens(self):
        with pytest.raises(ValidationError):
            parse_formula("E(x, y) E(y, x)", GRAPH_VOCABULARY)

    def test_unbalanced_parens(self):
        with pytest.raises(ValidationError):
            parse_formula("(E(x, y)", GRAPH_VOCABULARY)

    def test_garbage(self):
        with pytest.raises(ValidationError):
            parse_formula("E(x, y) @ E(y, x)", GRAPH_VOCABULARY)

    def test_empty(self):
        with pytest.raises(ValidationError):
            parse_formula("", GRAPH_VOCABULARY)

    def test_lone_name(self):
        with pytest.raises(ValidationError):
            parse_formula("x", GRAPH_VOCABULARY)


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "exists x. E(x, x)",
        "forall x. exists y. (E(x, y) & ~E(y, x))",
        "exists x y z. (E(x, y) & E(y, z) & E(z, x))",
        "E(x, y) | x = y",
        "~(E(x, y) & E(y, x))",
    ])
    def test_parse_str_parse(self, text):
        f = parse_formula(text, GRAPH_VOCABULARY)
        again = parse_formula(str(f), GRAPH_VOCABULARY)
        assert f == again
