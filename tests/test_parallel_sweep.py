"""The parallel governed sweep executor (:mod:`repro.parallel`).

Covers the executor's contract end to end: deterministic result
ordering, per-instance governor classification (``ok`` / ``unknown`` /
``error``), journal kill-resume, chunking, graceful degradation to the
serial path when process pools break, and the real multi-process path
(which also proves the per-instance governor is re-installed *inside*
the workers).
"""

import pytest

from repro.exceptions import ValidationError
from repro.parallel import SWEEPS, get_sweep, run_sweep, serial_map
from repro.parallel.sweeps import (
    build_graph,
    build_structure,
    hom_task,
    treewidth_task,
)
from repro.resources import SweepJournal


def _square(spec):
    return spec * spec


def _checkpointing_task(spec):
    """Burn governed checkpoints so a budget of 0 trips immediately."""
    from repro.resources import current_context

    context = current_context()
    for _ in range(spec):
        context.checkpoint("test.parallel")
    return spec


def _flaky_task(spec):
    if spec == "boom":
        raise ValueError("intentional test failure")
    return spec


def _instances(n=5):
    return [(f"i{k}", k) for k in range(n)]


# ----------------------------------------------------------------------
# Serial path
# ----------------------------------------------------------------------
def test_serial_sweep_computes_everything_in_order():
    outcome = run_sweep(_square, _instances())
    assert outcome.computed == outcome.instances == 5
    assert outcome.failed == outcome.unknown == outcome.resumed == 0
    assert not outcome.parallel
    assert list(outcome.results) == [f"i{k}" for k in range(5)]
    assert [r["result"] for r in outcome.results.values()] == [
        0, 1, 4, 9, 16
    ]
    assert all(r["status"] == "ok" for r in outcome.results.values())


def test_one_bad_instance_is_classified_not_fatal():
    instances = [("ok-1", "a"), ("bad", "boom"), ("ok-2", "b")]
    outcome = run_sweep(_flaky_task, instances)
    assert outcome.computed == 3
    assert outcome.failed == 1
    assert outcome.results["bad"]["status"] == "error"
    assert outcome.results["bad"]["error"] == "ValueError"
    assert outcome.results["ok-2"]["status"] == "ok"


def test_budget_trips_are_honest_unknowns():
    outcome = run_sweep(_checkpointing_task, _instances(4), budget=0)
    # spec 0 never checkpoints, specs 1..3 trip their budget of 0
    assert outcome.results["i0"]["status"] == "ok"
    assert outcome.unknown == 3
    assert all(
        outcome.results[f"i{k}"]["status"] == "unknown" for k in (1, 2, 3)
    )
    assert outcome.failed == 0


def test_unique_keys_and_chunksize_are_validated():
    with pytest.raises(ValidationError):
        run_sweep(_square, [("dup", 1), ("dup", 2)])
    with pytest.raises(ValidationError):
        run_sweep(_square, _instances(), chunksize=0)


# ----------------------------------------------------------------------
# Journal resume
# ----------------------------------------------------------------------
def test_journal_resume_skips_finished_instances(tmp_path):
    journal_path = str(tmp_path / "sweep.jsonl")
    first = run_sweep(
        _square, _instances(), journal=SweepJournal(journal_path)
    )
    assert first.computed == 5 and first.resumed == 0

    second = run_sweep(
        _square, _instances(), journal=SweepJournal(journal_path)
    )
    assert second.computed == 0
    assert second.resumed == 5
    # resumed records are served from the journal, order preserved
    assert list(second.results) == list(first.results)
    assert [r["result"] for r in second.results.values()] == [
        0, 1, 4, 9, 16
    ]


def test_journal_resume_after_partial_kill(tmp_path):
    """A journal holding a prefix (as a killed sweep leaves behind)
    makes the rerun compute exactly the missing suffix."""
    journal_path = str(tmp_path / "sweep.jsonl")
    partial = SweepJournal(journal_path)
    serial_map(_square, _instances()[:2], journal=partial)

    outcome = run_sweep(
        _square, _instances(), journal=SweepJournal(journal_path)
    )
    assert outcome.resumed == 2
    assert outcome.computed == 3
    assert [r["result"] for r in outcome.results.values()] == [
        0, 1, 4, 9, 16
    ]


def test_fresh_discards_the_journal(tmp_path):
    journal_path = str(tmp_path / "sweep.jsonl")
    run_sweep(_square, _instances(), journal=SweepJournal(journal_path))
    outcome = run_sweep(
        _square, _instances(), journal=SweepJournal(journal_path), fresh=True
    )
    assert outcome.computed == 5 and outcome.resumed == 0


# ----------------------------------------------------------------------
# Parallel path and its degradation
# ----------------------------------------------------------------------
def test_broken_pool_degrades_to_serial(monkeypatch):
    """If the process pool cannot even be created, the sweep silently
    completes on the in-process path."""
    import concurrent.futures

    class _Broken:
        def __init__(self, *args, **kwargs):
            raise OSError("no process pool in this sandbox")

    monkeypatch.setattr(
        concurrent.futures, "ProcessPoolExecutor", _Broken
    )
    outcome = run_sweep(_square, _instances(), workers=4)
    assert not outcome.parallel
    assert outcome.computed == 5
    assert [r["result"] for r in outcome.results.values()] == [
        0, 1, 4, 9, 16
    ]


def test_multiprocess_sweep_runs_registry_task():
    """The real pool path, using a picklable registry task; chunking
    keeps the result order deterministic."""
    instances = get_sweep("hom").instances()[:4]
    outcome = run_sweep(
        hom_task, instances, workers=2, deadline_s=30, chunksize=2,
        mode="test-hom",
    )
    assert outcome.computed == 4
    assert outcome.failed == 0
    assert list(outcome.results) == [key for key, _ in instances]
    # odd cycles are not 2-colorable: the first rows are refutations
    assert outcome.results[instances[0][0]]["result"]["verdict"] == "FALSE"


def test_multiprocess_governor_reinstalled_inside_workers():
    """A budget of 0 must trip inside every worker process — proving
    the per-instance governor travels into the pool.  The trivalent
    decider absorbs the trip, so it surfaces as an honest UNKNOWN
    verdict rather than an executor-level unknown record."""
    instances = get_sweep("hom").instances()[:3]
    outcome = run_sweep(hom_task, instances, workers=2, budget=0)
    assert outcome.computed == 3
    assert outcome.failed == 0
    assert all(
        r["status"] == "ok" and r["result"]["verdict"] == "UNKNOWN"
        for r in outcome.results.values()
    )


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
def test_registry_names_and_unknown_lookup():
    assert set(SWEEPS) == {"hom", "cores", "treewidth"}
    with pytest.raises(ValidationError):
        get_sweep("nope")


def test_registry_specs_rebuild_and_tasks_run():
    for name, sweep in SWEEPS.items():
        instances = sweep.instances()
        keys = [key for key, _ in instances]
        assert len(set(keys)) == len(keys), f"{name}: duplicate keys"
    structure = build_structure(("undirected-cycle", (5,)))
    assert structure.size() == 5
    graph = build_graph(("grid", (2, 3)))
    assert len(graph.vertices) == 6
    with pytest.raises(ValidationError):
        build_structure(("no-such-kind", ()))
    with pytest.raises(ValidationError):
        build_graph(("no-such-kind", ()))
    record = treewidth_task(("grid", (2, 3)), limit=40)
    assert record["width"] == 2 and record["exact"]
