"""The parallel governed sweep executor (:mod:`repro.parallel`).

Covers the executor's contract end to end: deterministic result
ordering, per-instance governor classification (``ok`` / ``unknown`` /
``error``), journal kill-resume, chunking, graceful degradation to the
serial path when process pools break, and the real multi-process path
(which also proves the per-instance governor is re-installed *inside*
the workers).
"""

import logging
import time

import pytest

from repro.exceptions import ValidationError
from repro.parallel import (
    SWEEPS,
    RetryPolicy,
    get_sweep,
    run_sweep,
    serial_map,
)
from repro.parallel.faults import faulty_task
from repro.parallel.retry import INFRA_FAULTS, InstanceAttempts
from repro.parallel.sweeps import (
    build_graph,
    build_structure,
    filter_instances,
    hom_task,
    treewidth_task,
)
from repro.resources import GOVERNOR, SweepJournal


def _square(spec):
    return spec * spec


def _checkpointing_task(spec):
    """Burn governed checkpoints so a budget of 0 trips immediately."""
    from repro.resources import current_context

    context = current_context()
    for _ in range(spec):
        context.checkpoint("test.parallel")
    return spec


def _flaky_task(spec):
    if spec == "boom":
        raise ValueError("intentional test failure")
    return spec


def _instances(n=5):
    return [(f"i{k}", k) for k in range(n)]


# ----------------------------------------------------------------------
# Serial path
# ----------------------------------------------------------------------
def test_serial_sweep_computes_everything_in_order():
    outcome = run_sweep(_square, _instances())
    assert outcome.computed == outcome.instances == 5
    assert outcome.failed == outcome.unknown == outcome.resumed == 0
    assert not outcome.parallel
    assert list(outcome.results) == [f"i{k}" for k in range(5)]
    assert [r["result"] for r in outcome.results.values()] == [
        0, 1, 4, 9, 16
    ]
    assert all(r["status"] == "ok" for r in outcome.results.values())


def test_one_bad_instance_is_classified_not_fatal():
    instances = [("ok-1", "a"), ("bad", "boom"), ("ok-2", "b")]
    outcome = run_sweep(_flaky_task, instances)
    assert outcome.computed == 3
    assert outcome.failed == 1
    assert outcome.results["bad"]["status"] == "error"
    assert outcome.results["bad"]["error"] == "ValueError"
    assert outcome.results["ok-2"]["status"] == "ok"


def test_budget_trips_are_honest_unknowns():
    outcome = run_sweep(_checkpointing_task, _instances(4), budget=0)
    # spec 0 never checkpoints, specs 1..3 trip their budget of 0
    assert outcome.results["i0"]["status"] == "ok"
    assert outcome.unknown == 3
    assert all(
        outcome.results[f"i{k}"]["status"] == "unknown" for k in (1, 2, 3)
    )
    assert outcome.failed == 0


def test_unique_keys_and_chunksize_are_validated():
    with pytest.raises(ValidationError):
        run_sweep(_square, [("dup", 1), ("dup", 2)])
    with pytest.raises(ValidationError):
        run_sweep(_square, _instances(), chunksize=0)


# ----------------------------------------------------------------------
# Journal resume
# ----------------------------------------------------------------------
def test_journal_resume_skips_finished_instances(tmp_path):
    journal_path = str(tmp_path / "sweep.jsonl")
    first = run_sweep(
        _square, _instances(), journal=SweepJournal(journal_path)
    )
    assert first.computed == 5 and first.resumed == 0

    second = run_sweep(
        _square, _instances(), journal=SweepJournal(journal_path)
    )
    assert second.computed == 0
    assert second.resumed == 5
    # resumed records are served from the journal, order preserved
    assert list(second.results) == list(first.results)
    assert [r["result"] for r in second.results.values()] == [
        0, 1, 4, 9, 16
    ]


def test_journal_resume_after_partial_kill(tmp_path):
    """A journal holding a prefix (as a killed sweep leaves behind)
    makes the rerun compute exactly the missing suffix."""
    journal_path = str(tmp_path / "sweep.jsonl")
    partial = SweepJournal(journal_path)
    serial_map(_square, _instances()[:2], journal=partial)

    outcome = run_sweep(
        _square, _instances(), journal=SweepJournal(journal_path)
    )
    assert outcome.resumed == 2
    assert outcome.computed == 3
    assert [r["result"] for r in outcome.results.values()] == [
        0, 1, 4, 9, 16
    ]


def test_fresh_discards_the_journal(tmp_path):
    journal_path = str(tmp_path / "sweep.jsonl")
    run_sweep(_square, _instances(), journal=SweepJournal(journal_path))
    outcome = run_sweep(
        _square, _instances(), journal=SweepJournal(journal_path), fresh=True
    )
    assert outcome.computed == 5 and outcome.resumed == 0


# ----------------------------------------------------------------------
# Parallel path and its degradation
# ----------------------------------------------------------------------
def test_broken_pool_degrades_to_serial(monkeypatch):
    """If the process pool cannot even be created, the sweep silently
    completes on the in-process path."""
    import concurrent.futures

    class _Broken:
        def __init__(self, *args, **kwargs):
            raise OSError("no process pool in this sandbox")

    monkeypatch.setattr(
        concurrent.futures, "ProcessPoolExecutor", _Broken
    )
    outcome = run_sweep(_square, _instances(), workers=4)
    assert not outcome.parallel
    assert outcome.computed == 5
    assert [r["result"] for r in outcome.results.values()] == [
        0, 1, 4, 9, 16
    ]


def test_multiprocess_sweep_runs_registry_task():
    """The real pool path, using a picklable registry task; chunking
    keeps the result order deterministic."""
    instances = get_sweep("hom").instances()[:4]
    outcome = run_sweep(
        hom_task, instances, workers=2, deadline_s=30, chunksize=2,
        mode="test-hom",
    )
    assert outcome.computed == 4
    assert outcome.failed == 0
    assert list(outcome.results) == [key for key, _ in instances]
    # odd cycles are not 2-colorable: the first rows are refutations
    assert outcome.results[instances[0][0]]["result"]["verdict"] == "FALSE"


def test_multiprocess_governor_reinstalled_inside_workers():
    """A budget of 0 must trip inside every worker process — proving
    the per-instance governor travels into the pool.  The trivalent
    decider absorbs the trip, so it surfaces as an honest UNKNOWN
    verdict rather than an executor-level unknown record."""
    instances = get_sweep("hom").instances()[:3]
    outcome = run_sweep(hom_task, instances, workers=2, budget=0)
    assert outcome.computed == 3
    assert outcome.failed == 0
    assert all(
        r["status"] == "ok" and r["result"]["verdict"] == "UNKNOWN"
        for r in outcome.results.values()
    )


# ----------------------------------------------------------------------
# The supervised runtime: retries, quarantine, hard kills
# ----------------------------------------------------------------------
FAST_POLICY = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05)


def test_crash_once_instance_recovers_via_retry(tmp_path):
    """A worker SIGKILLed mid-task is retried on a rebuilt pool; the
    healthy instances are not silently lost or double-charged."""
    sentinel = str(tmp_path / "sentinel")
    instances = [
        ("a", ("ok", 1)),
        ("crash", ("crash-once", sentinel, 42)),
        ("b", ("ok", 2)),
        ("c", ("ok", 3)),
    ]
    outcome = run_sweep(
        faulty_task, instances, workers=2, retry_policy=FAST_POLICY
    )
    assert outcome.computed == 4 and outcome.failed == 0
    crash = outcome.results["crash"]
    assert crash["status"] == "ok"
    assert crash["result"] == {"value": 42, "recovered": True}
    assert outcome.results["a"]["result"]["value"] == 1
    assert outcome.retries >= 1
    assert outcome.worker_crashes >= 1
    assert outcome.pool_rebuilds >= 1


def test_poison_instance_is_quarantined_with_structured_verdict(tmp_path):
    """An instance that kills its worker on every attempt must end as a
    structured ``quarantined`` record — in the outcome AND the journal —
    while the rest of the sweep completes normally."""
    journal_path = str(tmp_path / "journal.jsonl")
    instances = [
        ("a", ("ok", 1)),
        ("poison", ("crash-always",)),
        ("b", ("ok", 2)),
    ]
    outcome = run_sweep(
        faulty_task,
        instances,
        workers=2,
        retry_policy=FAST_POLICY,
        journal=SweepJournal(journal_path),
    )
    assert outcome.quarantined == 1
    record = outcome.results["poison"]
    assert record["status"] == "quarantined"
    assert record["error"] == "WorkerCrashError"
    assert record["attempts"] == FAST_POLICY.max_attempts
    assert outcome.results["a"]["status"] == "ok"
    assert outcome.results["b"]["status"] == "ok"
    # the verdict is durable: a reloaded journal serves it on resume
    replay = SweepJournal(journal_path)
    assert replay.result("poison")["status"] == "quarantined"
    resumed = run_sweep(
        faulty_task, instances, workers=2, retry_policy=FAST_POLICY,
        journal=replay,
    )
    assert resumed.resumed == 3 and resumed.computed == 0


def test_noncooperative_hang_is_hard_killed_within_grace(tmp_path):
    """A task that sleeps far past its deadline without ever reaching a
    checkpoint is SIGKILLed by the watchdog at ``deadline * grace`` —
    the sweep's wall clock is bounded by supervision, not by the hang."""
    instances = [
        ("a", ("ok", 1)),
        ("hang", ("hang", 60.0, 0)),
        ("b", ("ok", 2)),
    ]
    started = time.perf_counter()
    outcome = run_sweep(
        faulty_task,
        instances,
        workers=2,
        deadline_s=0.05,
        grace_factor=2.0,
        retry_policy=FAST_POLICY,
    )
    elapsed = time.perf_counter() - started
    assert elapsed < 20, f"hang was not hard-killed ({elapsed:.1f}s)"
    record = outcome.results["hang"]
    assert record["status"] == "quarantined"
    assert record["error"] == "HardTimeoutError"
    assert outcome.hard_kills >= 1
    assert outcome.results["a"]["status"] == "ok"
    assert outcome.results["b"]["status"] == "ok"


def test_oom_style_abrupt_exit_is_survived():
    outcome = run_sweep(
        faulty_task,
        [("a", ("ok", 1)), ("oom", ("oom", 4)), ("b", ("ok", 2))],
        workers=2,
        retry_policy=FAST_POLICY,
    )
    assert outcome.results["oom"]["status"] == "quarantined"
    assert outcome.results["a"]["status"] == "ok"
    assert outcome.results["b"]["status"] == "ok"


def test_instance_errors_are_recorded_not_retried_by_default(tmp_path):
    """PR 2's contract survives supervision: a deterministic in-task
    exception is an instance failure — record and continue, no retry."""
    sentinel = str(tmp_path / "sentinel")
    outcome = run_sweep(
        faulty_task,
        [("flaky", ("flaky-error", sentinel, 9)), ("a", ("ok", 1))],
        workers=2,
        retry_policy=FAST_POLICY,
    )
    assert outcome.results["flaky"]["status"] == "error"
    assert outcome.results["flaky"]["error"] == "ValueError"
    assert outcome.retries == 0
    assert outcome.failed == 1


def test_opting_task_errors_into_retry_recovers_flaky_instances(tmp_path):
    sentinel = str(tmp_path / "sentinel")
    policy = RetryPolicy(
        max_attempts=2, base_delay=0.01,
        retryable=frozenset(INFRA_FAULTS | {"ValueError"}),
    )
    outcome = run_sweep(
        faulty_task,
        [("flaky", ("flaky-error", sentinel, 9)), ("a", ("ok", 1))],
        workers=2,
        retry_policy=policy,
    )
    assert outcome.results["flaky"]["status"] == "ok"
    assert outcome.results["flaky"]["result"]["recovered"] is True
    assert outcome.retries == 1 and outcome.failed == 0


def test_supervision_counters_reach_the_governor(tmp_path):
    GOVERNOR.reset()
    run_sweep(
        faulty_task,
        [("a", ("ok", 1)), ("poison", ("crash-always",))],
        workers=2,
        retry_policy=FAST_POLICY,
    )
    snapshot = GOVERNOR.snapshot()
    assert snapshot["retries"] >= 1
    assert snapshot["quarantines"] == 1
    assert snapshot["pool_rebuilds"] >= 1


def test_unsupervised_baseline_still_degrades_to_serial(tmp_path, caplog):
    """``supervised=False`` keeps the legacy behaviour: any pool fault
    (here a worker SIGKILL) degrades the remainder to the serial path
    (and says so).  A crash-*once* fault is used because the serial
    rerun happens in this very process — its sentinel already exists, so
    the in-parent attempt returns instead of killing the test runner."""
    sentinel = str(tmp_path / "sentinel")
    with caplog.at_level(logging.WARNING, logger="repro.parallel"):
        outcome = run_sweep(
            faulty_task,
            [
                ("a", ("ok", 1)),
                ("boom", ("crash-once", sentinel, 7)),
                ("b", ("ok", 2)),
            ],
            workers=2,
            supervised=False,
        )
    assert outcome.results["a"]["result"]["value"] == 1
    assert outcome.results["b"]["result"]["value"] == 2
    assert outcome.results["boom"]["result"]["recovered"] is True
    assert outcome.retries == 0  # no supervision on the baseline path
    assert any("degrad" in r.message for r in caplog.records)


def test_degradation_paths_are_logged_distinctly(monkeypatch, caplog):
    """Pool-infrastructure failure logs the degrade decision."""
    import concurrent.futures

    class _Broken:
        def __init__(self, *args, **kwargs):
            raise OSError("no process pool in this sandbox")

    monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", _Broken)
    with caplog.at_level(logging.WARNING, logger="repro.parallel"):
        outcome = run_sweep(_square, _instances(), workers=4)
    assert outcome.computed == 5
    messages = [r.message for r in caplog.records]
    assert any("serial" in m for m in messages), messages


def test_journal_stats_surfaced_on_outcome(tmp_path):
    journal_path = str(tmp_path / "journal.jsonl")
    outcome = run_sweep(
        _square, _instances(3), journal=SweepJournal(journal_path)
    )
    assert outcome.journal is not None
    assert outcome.journal["integrity"] == "ok"
    assert outcome.journal["records"] == 3
    assert outcome.journal["compacted"] is False
    assert outcome.to_dict()["journal"]["integrity"] == "ok"


def test_corrupt_journal_is_surfaced_then_compacted_clean(tmp_path):
    journal_path = str(tmp_path / "journal.jsonl")
    run_sweep(_square, _instances(4), journal=SweepJournal(journal_path))
    with open(journal_path, "r+", encoding="utf-8") as handle:
        lines = handle.readlines()
        lines[1] = lines[1].replace('"', "'", 2)
        handle.seek(0)
        handle.writelines(lines)
        handle.truncate()
    outcome = run_sweep(
        _square, _instances(4), journal=SweepJournal(journal_path)
    )
    # the damage is reported (stats captured before compaction) ...
    assert outcome.journal["corrupt"] == 1
    assert outcome.journal["integrity"] == "corrupt"
    assert outcome.journal["compacted"] is True
    # ... the damaged key was recomputed, nothing lost ...
    assert outcome.resumed == 3 and outcome.computed == 1
    assert [r["result"] for r in outcome.results.values()] == [0, 1, 4, 9]
    # ... and the compacted file is clean on the next load.
    assert SweepJournal(journal_path).journal_stats()["integrity"] == "ok"


# ----------------------------------------------------------------------
# RetryPolicy / InstanceAttempts units
# ----------------------------------------------------------------------
def test_retry_policy_validation():
    with pytest.raises(ValidationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValidationError):
        RetryPolicy(base_delay=-1)
    with pytest.raises(ValidationError):
        RetryPolicy(jitter=2.0)


def test_retry_policy_kind_filtering():
    policy = RetryPolicy(max_attempts=3)
    assert policy.should_retry(1, "WorkerCrashError")
    assert policy.should_retry(2, "HardTimeoutError")
    assert not policy.should_retry(3, "WorkerCrashError")  # exhausted
    assert not policy.should_retry(1, "ValueError")  # not opted in
    custom = RetryPolicy(retryable=lambda kind: kind.endswith("Error"))
    assert custom.is_retryable("ValueError")
    assert not custom.is_retryable("nonsense")


def test_retry_delay_is_exponential_capped_and_deterministic():
    policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.25)
    assert policy.delay(0) == 0.0
    d1, d2, d3, d10 = (policy.delay(n, "key") for n in (1, 2, 3, 10))
    assert 0.1 <= d1 <= 0.1 * 1.25
    assert 0.2 <= d2 <= 0.2 * 1.25
    assert 0.4 <= d3 <= 0.5 * 1.25
    assert d10 <= 0.5 * 1.25  # capped forever after
    # deterministic: same key + attempt, same jitter
    assert policy.delay(2, "key") == d2
    # decorrelated: different keys jitter differently
    assert policy.delay(2, "key") != policy.delay(2, "other-key")
    # jitter-free policies are exact
    exact = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.0)
    assert exact.delay(3) == pytest.approx(0.4)


def test_instance_attempts_quarantine_record_shape():
    tracked = InstanceAttempts(key="k", spec=("ok", 1))
    tracked.register_fault("WorkerCrashError", "worker died", "trace...")
    tracked.register_fault("WorkerCrashError", "worker died again", "tb2")
    record = tracked.quarantine_record(elapsed_s=1.5)
    assert record == {
        "status": "quarantined",
        "error": "WorkerCrashError",
        "detail": "worker died again",
        "attempts": 2,
        "traceback": "tb2",
        "elapsed_s": 1.5,
    }


def test_filter_instances_by_substring():
    instances = get_sweep("hom").instances()
    kept = filter_instances(instances, "odd-cycle")
    assert kept and all("odd-cycle" in key for key, _ in kept)
    with pytest.raises(ValidationError):
        filter_instances(instances, "no-such-instance")


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
def test_registry_names_and_unknown_lookup():
    assert set(SWEEPS) == {"hom", "hom-batch", "cores", "treewidth"}
    with pytest.raises(ValidationError):
        get_sweep("nope")


def test_registry_specs_rebuild_and_tasks_run():
    for name, sweep in SWEEPS.items():
        instances = sweep.instances()
        keys = [key for key, _ in instances]
        assert len(set(keys)) == len(keys), f"{name}: duplicate keys"
    structure = build_structure(("undirected-cycle", (5,)))
    assert structure.size() == 5
    graph = build_graph(("grid", (2, 3)))
    assert len(graph.vertices) == 6
    with pytest.raises(ValidationError):
        build_structure(("no-such-kind", ()))
    with pytest.raises(ValidationError):
        build_graph(("no-such-kind", ()))
    record = treewidth_task(("grid", (2, 3)), limit=40)
    assert record["width"] == 2 and record["exact"]
