"""Unit tests for the CQ^k machinery (Lemma 7.2, Section 7.1)."""

import pytest

from repro.cq import (
    ConjunctiveQuery,
    canonical_structure_of_cqk,
    cqk_treewidth_bound_holds,
    parse_tree_decomposition,
    path_sentence_two_variables,
)
from repro.exceptions import UnsupportedFragmentError, ValidationError
from repro.logic import (
    distinct_variable_count,
    is_cqk,
    parse_formula,
    satisfies,
)
from repro.structures import (
    GRAPH_VOCABULARY,
    directed_cycle,
    directed_path,
    gaifman_graph,
    structure_treewidth,
)


def fo(text):
    return parse_formula(text, GRAPH_VOCABULARY)


class TestPathSentences:
    @pytest.mark.parametrize("length", [1, 2, 3, 5])
    def test_two_variables_only(self, length):
        sentence = path_sentence_two_variables(length)
        assert distinct_variable_count(sentence) == 2
        assert is_cqk(sentence, 2)

    @pytest.mark.parametrize("length", [1, 2, 3, 4])
    def test_defines_path_of_length(self, length):
        sentence = path_sentence_two_variables(length)
        for n in range(1, 7):
            expected = n - 1 >= length
            assert satisfies(directed_path(n), sentence) == expected

    def test_cycles_satisfy_all_lengths(self):
        for length in (1, 3, 5):
            assert satisfies(directed_cycle(3),
                             path_sentence_two_variables(length))

    def test_invalid_length(self):
        with pytest.raises(ValidationError):
            path_sentence_two_variables(0)


class TestCanonicalStructureOfCQk:
    def test_path_sentence_gives_path(self):
        structure = canonical_structure_of_cqk(path_sentence_two_variables(3))
        assert structure.size() == 4
        assert structure.num_facts() == 3
        assert structure_treewidth(structure) == 1

    def test_logically_equivalent(self):
        sentence = path_sentence_two_variables(2)
        structure = canonical_structure_of_cqk(sentence)
        from repro.cq import canonical_query

        phi = canonical_query(structure)
        for test_structure in (directed_path(2), directed_path(3),
                               directed_cycle(3), directed_path(5)):
            assert (phi.holds_in(test_structure)
                    == satisfies(test_structure, sentence))

    def test_rejects_free_variables(self):
        with pytest.raises(ValidationError):
            canonical_structure_of_cqk(fo("E(x, y)"))

    def test_rejects_disjunction(self):
        with pytest.raises(UnsupportedFragmentError):
            canonical_structure_of_cqk(
                fo("(exists x y. E(x, y)) | (exists x. E(x, x))")
            )


class TestLemma72:
    @pytest.mark.parametrize("length", [1, 2, 3, 4, 6])
    def test_treewidth_bound_for_paths(self, length):
        assert cqk_treewidth_bound_holds(path_sentence_two_variables(length))

    def test_treewidth_bound_three_variables(self):
        # a 3-variable sentence re-using variables; canonical treewidth < 3
        f = fo(
            "exists x y z. (E(x, y) & E(y, z) & E(z, x) "
            "& (exists x. (E(z, x) & exists y. E(x, y))))"
        )
        assert distinct_variable_count(f) == 3
        assert cqk_treewidth_bound_holds(f)

    def test_parse_tree_decomposition_validates(self):
        for length in (1, 2, 4):
            sentence = path_sentence_two_variables(length)
            structure, decomposition = parse_tree_decomposition(sentence)
            decomposition.validate(gaifman_graph(structure))
            k = distinct_variable_count(sentence)
            assert decomposition.width() < max(k, 1) + 1
            assert decomposition.width() <= k - 1 or structure.size() == 1

    def test_parse_tree_width_bounded_by_k_minus_one(self):
        sentence = path_sentence_two_variables(5)
        structure, decomposition = parse_tree_decomposition(sentence)
        assert decomposition.width() <= 1  # k - 1 with k = 2

    def test_vacuous_quantifier_covered(self):
        f = fo("exists x. exists y. E(y, y)")
        structure, decomposition = parse_tree_decomposition(f)
        decomposition.validate(gaifman_graph(structure))


class TestSection71Example:
    def test_c3_is_minimal_model_of_path3_with_treewidth_2(self):
        """The paper's correction: C_3 is a minimal model of the CQ^2
        path-of-length-3 sentence but has treewidth 2 >= k."""
        from repro.core import directed_cycle_is_nonwitness

        c3, treewidth = directed_cycle_is_nonwitness()
        assert treewidth == 2
        assert c3.size() == 3
