"""Server-side chaos harness for :mod:`repro.serve`.

One seeded campaign runs a real :class:`~repro.serve.ServerThread`
(fresh engine, a seeded *flaky kernel* injector so the circuit breaker
is genuinely exercised) and throws hundreds of adversarial client
trials at it:

* ``normal``        — well-formed single/batch decision requests;
* ``slow_client``   — the request frame dribbles in byte chunks;
* ``disconnect``    — the client vanishes mid-request, before reading
  its response;
* ``malformed``     — seeded garbage bytes, truncated JSON, oversized
  frames and oversized batches;
* ``burst``         — a pipelined burst from several sockets at once
  against a small admission queue (sheds must be explicit);
* ``drain``         — exercised separately by the SIGTERM subprocess
  test in ``test_serve_chaos.py``.

Every trial is classified against the serve contract:

* **no silent loss** — every frame that legitimately expects a response
  gets exactly one (by request id);
* **no invalid verdict** — every definite (TRUE/FALSE) hom verdict is
  differentially checked against the brute-force oracle of
  :mod:`tests.chaos`, and every TRUE witness is re-validated as an
  actual homomorphism; UNKNOWN is always acceptable, wrong never is;
* **no hang** — each trial bounds its socket reads; the campaign and
  its pytest driver add watchdogs on top.

The campaign returns a JSON-serializable audit report (per-scenario
counts, response-status census, breaker/serve counters) that the CI
job uploads as an artifact.
"""

from __future__ import annotations

import json
import random
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import HomEngine
from repro.homomorphism import is_homomorphism
from repro.serve import (
    ServeClient,
    ServerThread,
    encode_frame,
    hom_query,
)
from repro.serve.admission import AdmissionController
from repro.serve.breaker import CircuitBreaker
from repro.serve.client import decode_witness
from repro.serve.service import DecisionService
from repro.structures import Structure

from .chaos import brute_force_has_homomorphism, structure_pool

#: Per-read socket timeout inside trials; the anti-hang bound at the
#: client edge (the pytest watchdog guards the whole campaign).
READ_TIMEOUT_S = 30.0

#: Probability that one primary kernel solve "faults" (seeded); keeps
#: the breaker flapping through trips, probes and recoveries all
#: campaign long.
KERNEL_FAULT_RATE = 0.04

SCENARIOS = (
    ("normal", 5),
    ("slow_client", 2),
    ("disconnect", 2),
    ("malformed", 3),
    ("burst", 2),
)

VALID_STATUSES = {"ok", "overloaded", "error"}


@dataclass
class TrialResult:
    """One classified chaos trial."""

    scenario: str
    outcome: str                 # "ok" | "invalid"
    detail: str = ""
    sent: int = 0                # frames that expect a response
    answered: int = 0            # responses received for them
    checked: int = 0             # verdicts differentially validated
    unknowns: int = 0
    overloaded: int = 0
    errors: int = 0


@dataclass
class CampaignReport:
    """The whole campaign's audit trail (JSON-serializable)."""

    seed: int
    trials: int
    by_scenario: Dict[str, int] = field(default_factory=dict)
    invalid: List[Dict[str, Any]] = field(default_factory=list)
    sent: int = 0
    answered: int = 0
    checked: int = 0
    unknowns: int = 0
    overloaded: int = 0
    errors: int = 0
    breaker_trips: int = 0
    serve_counters: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "trials": self.trials,
            "by_scenario": dict(sorted(self.by_scenario.items())),
            "invalid": self.invalid,
            "sent": self.sent,
            "answered": self.answered,
            "checked": self.checked,
            "unknowns": self.unknowns,
            "overloaded": self.overloaded,
            "errors": self.errors,
            "breaker_trips": self.breaker_trips,
            "serve_counters": self.serve_counters,
        }


class FlakyKernelInjector:
    """Seeded chance of a synthetic kernel fault per primary solve."""

    def __init__(self, seed: int, rate: float = KERNEL_FAULT_RATE) -> None:
        self.rng = random.Random(seed)
        self.rate = rate
        self.fired = 0

    def __call__(self, op: str) -> None:
        if self.rng.random() < self.rate:
            self.fired += 1
            raise RuntimeError(f"chaos: synthetic kernel fault in {op}")


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
_oracle_cache: Dict[Tuple[int, int], bool] = {}


def oracle_has_hom(
    pool: List[Structure], i: int, j: int
) -> bool:
    key = (i, j)
    if key not in _oracle_cache:
        _oracle_cache[key] = brute_force_has_homomorphism(
            pool[i], pool[j]
        )
    return _oracle_cache[key]


def classify_hom_entry(
    entry: Dict[str, Any],
    pool: List[Structure],
    i: int,
    j: int,
) -> Optional[str]:
    """``None`` when the entry honours the contract, else the violation."""
    if entry.get("status") == "error":
        return f"hom query answered with error: {entry.get('detail')}"
    verdict = entry.get("verdict") or {}
    value = verdict.get("value")
    if value == "UNKNOWN":
        return None  # honest soft answer, always acceptable
    expected = oracle_has_hom(pool, i, j)
    if value == "TRUE":
        if not expected:
            return f"served TRUE but no hom {i}->{j} exists"
        witness = verdict.get("witness")
        if witness is not None:
            mapping = decode_witness(witness)
            if not is_homomorphism(pool[i], pool[j], mapping):
                return f"served TRUE with an invalid witness for {i}->{j}"
        return None
    if value == "FALSE":
        if expected:
            return f"served FALSE but a hom {i}->{j} exists"
        return None
    return f"verdict has invalid value {value!r}"


# ----------------------------------------------------------------------
# Raw-socket helpers (client-side chaos needs byte-level control)
# ----------------------------------------------------------------------
def open_socket(host: str, port: int) -> socket.socket:
    sock = socket.create_connection((host, port), timeout=READ_TIMEOUT_S)
    sock.settimeout(READ_TIMEOUT_S)
    return sock


def read_frames(sock: socket.socket, count: int) -> List[Dict[str, Any]]:
    """Read exactly ``count`` response frames (bounded by the socket
    timeout; a short read raises, which the trial classifies)."""
    rfile = sock.makefile("rb")
    frames = []
    for _ in range(count):
        line = rfile.readline()
        if not line:
            break
        frames.append(json.loads(line))
    return frames


def garbage_frame(rng: random.Random) -> bytes:
    """One seeded hostile frame."""
    kind = rng.randrange(5)
    if kind == 0:  # random bytes
        return bytes(rng.randrange(256) for _ in range(rng.randrange(1, 60)))
    if kind == 1:  # truncated JSON object
        return b'{"op": "hom", "source": {"universe"'
    if kind == 2:  # valid JSON, wrong shape
        return rng.choice([b"[1,2,3]", b'"hom"', b"42", b"null", b"true"])
    if kind == 3:  # unknown / missing op
        return rng.choice([
            b'{"op": "explode"}', b'{"id": 9}', b'{"op": 17}',
            b'{"op": "batch", "queries": []}',
        ])
    # bad fields on a real op
    return rng.choice([
        b'{"op": "hom", "deadline_s": "soon"}',
        b'{"op": "hom", "budget": -4}',
        b'{"op": "hom", "source": 3}',
        b'{"op": "treewidth", "structure": {"universe": [], '
        b'"relations": {}, "vocabulary": []}, "limit": 0}',
    ])


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def _pick_pair(rng: random.Random, pool: List[Structure]) -> Tuple[int, int]:
    return rng.randrange(len(pool)), rng.randrange(len(pool))


def trial_normal(
    rng: random.Random, host: str, port: int, pool: List[Structure]
) -> TrialResult:
    result = TrialResult("normal", "ok")
    n_queries = rng.randrange(1, 4)
    pairs = [_pick_pair(rng, pool) for _ in range(n_queries)]
    queries = [hom_query(pool[i], pool[j]) for i, j in pairs]
    with ServeClient(host, port, timeout_s=READ_TIMEOUT_S) as client:
        result.sent = 1
        if n_queries == 1:
            entries = [client.decide(queries[0])]
        else:
            entries = client.batch(queries)
        result.answered = 1
    if len(entries) != n_queries:
        result.outcome = "invalid"
        result.detail = (
            f"batch of {n_queries} answered with {len(entries)} entries"
        )
        return result
    for entry, (i, j) in zip(entries, pairs):
        violation = classify_hom_entry(entry, pool, i, j)
        if violation:
            result.outcome = "invalid"
            result.detail = violation
            return result
        result.checked += 1
        if (entry.get("verdict") or {}).get("value") == "UNKNOWN":
            result.unknowns += 1
    return result


def trial_slow_client(
    rng: random.Random, host: str, port: int, pool: List[Structure]
) -> TrialResult:
    import time as _time

    result = TrialResult("slow_client", "ok")
    i, j = _pick_pair(rng, pool)
    frame = encode_frame({**hom_query(pool[i], pool[j]), "id": "slow"})
    sock = open_socket(host, port)
    try:
        # Dribble the frame in seeded chunks with small stalls: the
        # server must neither time us out mid-frame (stalls are well
        # under its idle timeout) nor act before the newline arrives.
        cut = sorted(rng.randrange(1, len(frame)) for _ in range(3))
        pieces = [frame[a:b] for a, b in
                  zip([0] + cut, cut + [len(frame)])]
        for piece in pieces:
            sock.sendall(piece)
            _time.sleep(rng.uniform(0.0, 0.03))
        result.sent = 1
        frames = read_frames(sock, 1)
        result.answered = len(frames)
        if not frames:
            result.outcome = "invalid"
            result.detail = "slow client got no response"
            return result
        response = frames[0]
        if response.get("status") == "ok":
            violation = classify_hom_entry(
                response["results"][0], pool, i, j
            )
            if violation:
                result.outcome = "invalid"
                result.detail = violation
                return result
            result.checked += 1
        elif response.get("status") == "overloaded":
            result.overloaded += 1
        elif response.get("status") == "error":
            result.outcome = "invalid"
            result.detail = (
                f"well-formed slow frame answered with error: {response}"
            )
        else:
            result.outcome = "invalid"
            result.detail = f"unknown status {response.get('status')!r}"
    finally:
        sock.close()
    return result


def trial_disconnect(
    rng: random.Random, host: str, port: int, pool: List[Structure]
) -> TrialResult:
    """Vanish mid-request; the server must stay healthy (the response
    it computed goes nowhere — that is a counted client_gone, not a
    loss)."""
    result = TrialResult("disconnect", "ok")
    i, j = _pick_pair(rng, pool)
    sock = open_socket(host, port)
    frame = encode_frame(hom_query(pool[i], pool[j]))
    kind = rng.randrange(3)
    if kind == 0:
        sock.sendall(frame)              # full frame, never read
    elif kind == 1:
        sock.sendall(frame[: max(1, len(frame) // 2)])  # torn frame
    # kind == 2: connect and say nothing at all
    sock.close()
    # The server must still answer a fresh, polite client.
    with ServeClient(host, port, timeout_s=READ_TIMEOUT_S) as probe:
        result.sent = 1
        entry = probe.ping()
        result.answered = 1
        if not entry.get("ready"):
            result.outcome = "invalid"
            result.detail = "server not ready after client disconnect"
    return result


def trial_malformed(
    rng: random.Random, host: str, port: int, pool: List[Structure]
) -> TrialResult:
    result = TrialResult("malformed", "ok")
    sock = open_socket(host, port)
    try:
        oversized = rng.random() < 0.25
        if oversized:
            kind = rng.randrange(2)
            if kind == 0:  # oversized raw frame
                sock.sendall(b"y" * (2 << 20) + b"\n")
                expect_code = "frame-too-large"
            else:          # oversized batch (well-formed frame)
                i, j = _pick_pair(rng, pool)
                sock.sendall(encode_frame({
                    "op": "batch",
                    "queries": [hom_query(pool[i], pool[j])] * 70,
                }))
                expect_code = "batch-too-large"
            result.sent = 1
            frames = read_frames(sock, 1)
            result.answered = len(frames)
            if not frames:
                result.outcome = "invalid"
                result.detail = f"no response for {expect_code} input"
                return result
            response = frames[0]
            if response.get("status") != "error" or \
                    response.get("code") != expect_code:
                result.outcome = "invalid"
                result.detail = (
                    f"expected error/{expect_code}, got {response}"
                )
                return result
            result.errors += 1
            return result
        # Garbage bytes: a structured error (or, for byte soup that
        # happens to contain no newline... it always ends with ours).
        sock.sendall(garbage_frame(rng).replace(b"\n", b" ") + b"\n")
        result.sent = 1
        frames = read_frames(sock, 1)
        result.answered = len(frames)
        if not frames:
            result.outcome = "invalid"
            result.detail = "no structured error for malformed frame"
            return result
        response = frames[0]
        if response.get("status") == "ok":
            # A frame that is *wire*-valid but query-invalid (e.g. a
            # hom op whose 'source' is not a structure) is admitted
            # and answered with per-query error entries.
            entries = response.get("results") or []
            if not entries or any(
                e.get("status") != "error" for e in entries
            ):
                result.outcome = "invalid"
                result.detail = f"malformed query answered ok: {response}"
                return result
        elif response.get("status") != "error":
            result.outcome = "invalid"
            result.detail = f"malformed frame answered {response}"
            return result
        result.errors += 1
        # The same connection must still serve a valid request.
        sock.sendall(encode_frame({"op": "ping", "id": "after"}))
        after = read_frames(sock, 1)
        if not after or after[0].get("status") != "ok":
            result.outcome = "invalid"
            result.detail = "connection dead after malformed frame"
        else:
            result.sent += 1
            result.answered += 1
    finally:
        sock.close()
    return result


def trial_burst(
    rng: random.Random, host: str, port: int, pool: List[Structure]
) -> TrialResult:
    """Pipelined burst over several sockets: every request answered
    exactly once, valid ok answers only, sheds explicit."""
    result = TrialResult("burst", "ok")
    n_socks = rng.randrange(2, 5)
    per_sock = rng.randrange(2, 5)
    socks = [open_socket(host, port) for _ in range(n_socks)]
    sent: Dict[str, Tuple[int, int]] = {}
    try:
        for s_idx, sock in enumerate(socks):
            frames = b""
            for q_idx in range(per_sock):
                i, j = _pick_pair(rng, pool)
                rid = f"b{s_idx}.{q_idx}"
                sent[rid] = (i, j)
                payload = {**hom_query(pool[i], pool[j]), "id": rid}
                if rng.random() < 0.5:
                    payload["deadline_s"] = rng.uniform(0.05, 5.0)
                frames += encode_frame(payload)
            sock.sendall(frames)
        result.sent = len(sent)
        seen: Dict[str, int] = {}
        for sock in socks:
            for response in read_frames(sock, per_sock):
                status = response.get("status")
                rid = response.get("id")
                if status not in VALID_STATUSES:
                    result.outcome = "invalid"
                    result.detail = f"unknown status {status!r}"
                    return result
                if rid not in sent:
                    result.outcome = "invalid"
                    result.detail = f"response for unknown id {rid!r}"
                    return result
                seen[rid] = seen.get(rid, 0) + 1
                result.answered += 1
                if status == "overloaded":
                    result.overloaded += 1
                elif status == "error":
                    # Well-formed requests must not error.
                    result.outcome = "invalid"
                    result.detail = f"burst request errored: {response}"
                    return result
                else:
                    i, j = sent[rid]
                    violation = classify_hom_entry(
                        response["results"][0], pool, i, j
                    )
                    if violation:
                        result.outcome = "invalid"
                        result.detail = violation
                        return result
                    result.checked += 1
                    if (response["results"][0]["verdict"]["value"]
                            == "UNKNOWN"):
                        result.unknowns += 1
        if any(count != 1 for count in seen.values()) or \
                set(seen) != set(sent):
            missing = sorted(set(sent) - set(seen))
            dupes = sorted(r for r, c in seen.items() if c > 1)
            result.outcome = "invalid"
            result.detail = (
                f"silent loss/duplication: missing={missing} "
                f"duplicated={dupes}"
            )
    finally:
        for sock in socks:
            sock.close()
    return result


TRIALS = {
    "normal": trial_normal,
    "slow_client": trial_slow_client,
    "disconnect": trial_disconnect,
    "malformed": trial_malformed,
    "burst": trial_burst,
}


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------
def run_campaign(trials: int, base_seed: int) -> CampaignReport:
    """Run the full seeded campaign against one server."""
    _oracle_cache.clear()
    pool = structure_pool()
    injector = FlakyKernelInjector(base_seed ^ 0x5EEDED)
    engine = HomEngine()
    engine.reset_stats()  # zero the process-global SERVE family
    service = DecisionService(
        engine=engine,
        breaker=CircuitBreaker(failure_threshold=1, cooldown_s=0.05),
        kernel_fault_injector=injector,
    )
    server_thread = ServerThread(
        service=service,
        admission=AdmissionController(queue_limit=8),
        idle_timeout_s=10.0,
        drain_grace_s=1.0,
    )
    host, port = server_thread.start()

    names = [name for name, weight in SCENARIOS for _ in range(weight)]
    report = CampaignReport(seed=base_seed, trials=trials)
    try:
        for t in range(trials):
            rng = random.Random(base_seed + t)
            scenario = rng.choice(names)
            try:
                result = TRIALS[scenario](rng, host, port, pool)
            except Exception as err:
                result = TrialResult(
                    scenario, "invalid",
                    detail=f"trial raised {type(err).__name__}: {err}",
                )
            report.by_scenario[scenario] = (
                report.by_scenario.get(scenario, 0) + 1
            )
            if result.outcome != "ok":
                report.invalid.append({
                    "trial": t,
                    "scenario": scenario,
                    "detail": result.detail,
                })
            report.sent += result.sent
            report.answered += result.answered
            report.checked += result.checked
            report.unknowns += result.unknowns
            report.overloaded += result.overloaded
            report.errors += result.errors
    finally:
        server_thread.stop()
    report.breaker_trips = service.breaker.trips
    report.serve_counters = engine.snapshot()["serve"]
    report.serve_counters["kernel_faults_fired"] = injector.fired
    return report
