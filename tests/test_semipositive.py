"""Unit tests for semipositive Datalog (Section 7.3)."""

import pytest

from repro.datalog import (
    SemipositiveProgram,
    asymmetric_edge_program,
    distinct_pair_program,
    evaluate_semipositive,
    parse_semipositive_program,
    parse_semipositive_rule,
    semipositive_breaks_hom_preservation,
)
from repro.exceptions import ValidationError
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    directed_clique,
    directed_cycle,
    directed_path,
    single_loop,
)


class TestParsing:
    def test_rule_with_negation(self):
        rule = parse_semipositive_rule("H(x) <- E(x, y), ~E(y, x).")
        kinds = [lit.kind for lit in rule.body]
        assert kinds == ["pos", "neg"]

    def test_rule_with_inequality(self):
        rule = parse_semipositive_rule("H(x, y) <- E(x, y), x != y.")
        assert rule.body[1].kind == "neq"

    def test_safety_negated_vars(self):
        with pytest.raises(ValidationError):
            parse_semipositive_rule("H(x) <- E(x, x), ~E(x, z).")

    def test_safety_neq_vars(self):
        with pytest.raises(ValidationError):
            parse_semipositive_rule("H(x) <- E(x, x), x != z.")

    def test_negated_idb_rejected(self):
        with pytest.raises(ValidationError):
            parse_semipositive_program(
                """
                T(x, y) <- E(x, y).
                H(x, y) <- E(x, y), ~T(y, x).
                """,
                GRAPH_VOCABULARY,
            )

    def test_str_forms(self):
        rule = parse_semipositive_rule("H(x) <- E(x, y), ~E(y, x), x != y.")
        texts = [str(lit) for lit in rule.body]
        assert texts[1].startswith("~")
        assert "!=" in texts[2]


class TestEvaluation:
    def test_asymmetric_edges(self):
        program = asymmetric_edge_program()
        result = evaluate_semipositive(program, directed_path(3))
        assert set(result["Hit"]) == {(0,), (1,)}
        assert not evaluate_semipositive(program, single_loop())["Hit"]

    def test_symmetric_structure_empty(self):
        program = asymmetric_edge_program()
        two_cycle = Structure(GRAPH_VOCABULARY, [0, 1],
                              {"E": [(0, 1), (1, 0)]})
        assert not evaluate_semipositive(program, two_cycle)["Hit"]

    def test_inequality(self):
        program = distinct_pair_program()
        assert evaluate_semipositive(program, single_loop())["Pair"] == frozenset()
        assert evaluate_semipositive(
            program, directed_path(2))["Pair"] == frozenset({(0, 1)})

    def test_recursion_with_negation(self):
        # reach avoiding self-loops: still a fixpoint computation
        program = parse_semipositive_program(
            """
            R(x, y) <- E(x, y), ~E(y, y).
            R(x, y) <- R(x, z), E(z, y), ~E(y, y).
            """,
            GRAPH_VOCABULARY,
        )
        s = Structure(GRAPH_VOCABULARY, [0, 1, 2, 3],
                      {"E": [(0, 1), (1, 2), (2, 2), (1, 3)]})
        result = evaluate_semipositive(program, s)
        reach = set(result["R"])
        assert (0, 1) in reach and (0, 3) in reach
        assert all(y != 2 for (_, y) in reach)

    def test_complement_reachability(self):
        # reachability in the complement graph: impossible in pure Datalog
        program = parse_semipositive_program(
            """
            C(x, y) <- V(x), V(y), ~E(x, y), x != y.
            R(x, y) <- C(x, y).
            R(x, y) <- R(x, z), C(z, y).
            """,
            Vocabulary({"E": 2, "V": 1}),
        )
        vocab = Vocabulary({"E": 2, "V": 1})
        s = Structure(
            vocab, [0, 1, 2],
            {"E": [(0, 1), (1, 2), (2, 0)], "V": [(0,), (1,), (2,)]},
        )
        result = evaluate_semipositive(program, s)
        # complement of directed C3 is the reversed cycle (1,0),(2,1),(0,2);
        # its transitive closure is every ordered pair (closed walks too)
        assert len(result["R"]) == 9
        assert (0, 2) in result["R"] and (0, 0) in result["R"]


class TestSection73Boundary:
    def test_breaks_hom_preservation(self):
        assert semipositive_breaks_hom_preservation()

    def test_pure_datalog_queries_stay_preserved(self):
        """Contrast: the pure-Datalog TC query passes the sampled
        preservation check (Section 1: Datalog ⊆ hom-preserved)."""
        from repro.core import check_preserved_under_homomorphisms
        from repro.datalog import evaluate_semi_naive, transitive_closure_program

        program = transitive_closure_program()

        def boolean_tc(structure):
            return bool(evaluate_semi_naive(program, structure).relations["T"])

        samples = [directed_path(3), directed_cycle(3), single_loop(),
                   directed_clique(3)]
        assert check_preserved_under_homomorphisms(boolean_tc, samples) is None

    def test_semipositive_query_fails_preservation_check(self):
        from repro.core import check_preserved_under_homomorphisms

        program = asymmetric_edge_program()

        def boolean_hit(structure):
            return bool(evaluate_semipositive(program, structure)["Hit"])

        samples = [directed_path(2), single_loop()]
        violation = check_preserved_under_homomorphisms(boolean_hit, samples)
        assert violation is not None
