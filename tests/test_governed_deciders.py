"""Deadline/budget semantics of the governed deciders.

The contract under test: every public decider running under an ambient
:func:`repro.resources.governed` context either finishes in time or
raises a typed :class:`~repro.exceptions.ResourceError` *promptly* — the
flagship assertion being that a deliberately slow homomorphism search
raises :class:`~repro.exceptions.DeadlineExceededError` within twice the
configured deadline.  Plus: graceful degradation (treewidth fallback),
trivalent verdicts end to end, the core-shrink invariant guard, and the
governed CLI flags.
"""

import time

import pytest

from repro.engine import HomEngine
from repro.exceptions import (
    BudgetExceededError,
    DeadlineExceededError,
    InvariantViolationError,
    OperationCancelledError,
)
from repro.resources import GOVERNOR, Verdict, governed
from repro.structures import (
    path_with_random_chords,
    single_edge,
    undirected_cycle,
    undirected_path,
)


def slow_negative_instance():
    """A hom instance that takes seconds ungoverned (found empirically):
    a chorded path forced into C7 backtracks heavily before refuting.
    This seed is slow (>2s) for *both* the compiled bitset kernel and
    the reference solver, so the deadline assertions below hold on
    either engine configuration."""
    return path_with_random_chords(80, 12, seed=0), undirected_cycle(7)


# ----------------------------------------------------------------------
# The 2x-deadline guarantee
# ----------------------------------------------------------------------
class TestDeadlineSemantics:
    def test_slow_hom_search_respects_deadline(self):
        source, target = slow_negative_instance()
        deadline_s = 0.05
        engine = HomEngine(cache_enabled=False)
        started = time.monotonic()
        with governed(deadline=deadline_s):
            with pytest.raises(DeadlineExceededError) as excinfo:
                engine.find_homomorphism(source, target)
        elapsed = time.monotonic() - started
        assert elapsed < 2 * deadline_s, (
            f"deadline overshoot: {elapsed:.3f}s vs {deadline_s}s configured"
        )
        err = excinfo.value
        assert err.deadline_s == deadline_s
        assert err.elapsed_s >= deadline_s
        assert err.site in {"hom.search", "hom.propagate"}

    def test_slow_hom_verdict_is_unknown_not_false(self):
        source, target = slow_negative_instance()
        engine = HomEngine(cache_enabled=False)
        before = GOVERNOR.unknown_verdicts
        with governed(deadline=0.05):
            verdict = engine.decide_homomorphism(source, target)
        assert verdict.is_unknown
        assert "DeadlineExceededError" in verdict.reason
        assert GOVERNOR.unknown_verdicts == before + 1

    def test_cancellation_interrupts_search(self):
        import threading

        source, target = slow_negative_instance()
        engine = HomEngine(cache_enabled=False)
        with governed() as ctx:
            timer = threading.Timer(0.05, ctx.cancel)
            timer.start()
            started = time.monotonic()
            try:
                with pytest.raises(OperationCancelledError):
                    engine.find_homomorphism(source, target)
            finally:
                timer.cancel()
            assert time.monotonic() - started < 1.0

    def test_budget_interrupts_search(self):
        source, target = slow_negative_instance()
        engine = HomEngine(cache_enabled=False)
        with governed(budget=1000):
            with pytest.raises(BudgetExceededError) as excinfo:
                engine.find_homomorphism(source, target)
        assert excinfo.value.budget == 1000
        assert excinfo.value.spent > 1000

    def test_ungoverned_call_still_completes(self):
        # No ambient context: the same decider, unlimited (sanity check
        # that governance is opt-in and the passive path stays correct).
        engine = HomEngine(cache_enabled=False)
        assert engine.find_homomorphism(
            undirected_path(2), undirected_path(4)
        ) is not None


# ----------------------------------------------------------------------
# Trivalent verdicts end to end
# ----------------------------------------------------------------------
class TestVerdictEndToEnd:
    def test_true_verdict_carries_valid_witness(self):
        from repro.homomorphism import homomorphism_verdict, is_homomorphism

        source, target = undirected_path(2), undirected_path(4)
        verdict = homomorphism_verdict(source, target)
        assert verdict.is_true
        assert is_homomorphism(source, target, verdict.witness)
        assert verdict.consumed  # consumption record travels with it

    def test_false_verdict_on_refutable_instance(self):
        from repro.homomorphism import homomorphism_verdict

        verdict = homomorphism_verdict(undirected_cycle(5), undirected_path(2))
        assert verdict.is_false
        assert verdict.witness is None

    def test_containment_verdicts(self):
        from repro.cq import (
            boolean_cq,
            containment_verdict,
            ucq_containment_verdict,
        )
        from repro.logic.syntax import Atom, Var
        from repro.structures import GRAPH_VOCABULARY

        edge = boolean_cq(
            GRAPH_VOCABULARY, [Atom("E", (Var("u"), Var("v")))]
        )
        path2 = boolean_cq(
            GRAPH_VOCABULARY,
            [Atom("E", (Var("x"), Var("y"))), Atom("E", (Var("y"), Var("z")))],
        )
        assert containment_verdict(path2, edge).is_true
        assert containment_verdict(edge, path2).is_false
        assert ucq_containment_verdict([path2], [edge]).is_true
        assert ucq_containment_verdict([edge], [path2]).is_false

    def test_ucq_kleene_unknown_propagates(self):
        from repro.cq import boolean_cq, ucq_containment_verdict
        from repro.engine import get_engine
        from repro.logic.syntax import Atom, Var
        from repro.structures import GRAPH_VOCABULARY

        edge = boolean_cq(
            GRAPH_VOCABULARY, [Atom("E", (Var("u"), Var("v")))]
        )
        path3 = boolean_cq(
            GRAPH_VOCABULARY,
            [Atom("E", (Var(f"w{i}"), Var(f"w{i+1}"))) for i in range(3)],
        )
        get_engine().clear_cache()
        # budget=0 trips at the very first checkpoint: the kernel can
        # refute this instance in one checkpoint, so any positive budget
        # would let it (correctly) answer FALSE instead of UNKNOWN.
        with governed(budget=0):
            verdict = ucq_containment_verdict([edge], [path3])
        assert verdict.is_unknown
        assert "disjunct 0" in verdict.reason


# ----------------------------------------------------------------------
# Graceful degradation: treewidth fallback
# ----------------------------------------------------------------------
class TestTreewidthFallback:
    # random_graph(12, 0.35, seed=4): heuristic bounds differ (3 < 4),
    # so the exact solver genuinely runs and the limit genuinely bites.
    def _graph(self):
        from repro.graphtheory import random_graph

        return random_graph(12, 0.35, seed=4)

    def test_fallback_at_least_exact_when_both_complete(self):
        from repro.graphtheory import treewidth_exact, treewidth_with_fallback

        g = self._graph()
        exact = treewidth_exact(g)
        result = treewidth_with_fallback(g)
        assert result.exact
        assert result.method == "branch-and-bound"
        assert result.width == exact

    def test_limit_trip_degrades_to_upper_bound(self):
        from repro.graphtheory import treewidth_exact, treewidth_with_fallback

        g = self._graph()
        before = GOVERNOR.fallbacks
        result = treewidth_with_fallback(g, limit=0)
        assert not result.exact
        assert result.method == "min-fill/min-degree upper bound"
        assert "BudgetExceededError" in result.reason
        assert result.width >= treewidth_exact(g)
        assert GOVERNOR.fallbacks == before + 1

    def test_deadline_trip_degrades_to_upper_bound(self):
        from repro.graphtheory import treewidth_exact, treewidth_with_fallback

        g = self._graph()
        with governed(deadline=0.0):
            result = treewidth_with_fallback(g)
        assert not result.exact
        assert "DeadlineExceededError" in result.reason
        assert result.width >= treewidth_exact(g)

    def test_cancellation_is_not_swallowed_by_fallback(self):
        from repro.graphtheory import treewidth_with_fallback

        g = self._graph()
        with governed() as ctx:
            ctx.cancel()
            with pytest.raises(OperationCancelledError):
                treewidth_with_fallback(g)


# ----------------------------------------------------------------------
# The core-shrink invariant guard
# ----------------------------------------------------------------------
class TestCoreInvariantGuard:
    def test_non_shrinking_retraction_raises_typed_error(self, monkeypatch):
        from repro.homomorphism import cores

        # A buggy retraction search returning the identity endomorphism
        # used to spin the `while True` loop forever; now it must raise.
        def identity_retraction(structure, engine=None):
            return {e: e for e in structure.universe}

        monkeypatch.setattr(
            cores, "find_proper_retraction", identity_retraction
        )
        with pytest.raises(InvariantViolationError):
            cores.core_by_retractions(undirected_cycle(4))
        with pytest.raises(InvariantViolationError):
            cores.compute_core_with_map(undirected_cycle(4))

    def test_core_computation_still_correct(self):
        from repro.homomorphism import compute_core

        # C4 retracts to a single edge (it is bipartite).
        core = compute_core(undirected_cycle(4))
        assert core.size() == 2


# ----------------------------------------------------------------------
# Governance across the other deciders
# ----------------------------------------------------------------------
class TestOtherDeciders:
    def test_datalog_budget_trip(self):
        from repro.datalog import evaluate_naive, evaluate_semi_naive, parse_program
        from repro.structures import directed_path

        structure = directed_path(6)
        program = parse_program(
            "T(x, y) <- E(x, y).\nT(x, z) <- E(x, y), T(y, z).",
            structure.vocabulary.without_constants(),
        )
        for evaluate in (evaluate_naive, evaluate_semi_naive):
            with governed(budget=5):
                with pytest.raises(BudgetExceededError):
                    evaluate(program, structure)
        # Ungoverned: same program completes (transitive closure of P6).
        result = evaluate_semi_naive(program, structure)
        assert len(result.relations["T"]) == 15

    def test_pebble_game_deadline_and_structured_budget(self):
        from repro.pebble import ExistentialPebbleGame, duplicator_wins

        a, b = undirected_path(3), undirected_path(3)
        with governed(deadline=0.0):
            with pytest.raises(DeadlineExceededError):
                duplicator_wins(a, b, 2)
        with pytest.raises(BudgetExceededError) as excinfo:
            ExistentialPebbleGame(a, b, 2, budget=1).winning_family()
        assert excinfo.value.budget == 1
        assert excinfo.value.site == "pebble.positions"

    def test_kconsistency_structured_budget(self):
        from repro.pebble.kconsistency import direct_k_consistency

        a, b = undirected_path(3), undirected_path(3)
        with pytest.raises(BudgetExceededError) as excinfo:
            direct_k_consistency(a, b, 2, budget=1)
        assert excinfo.value.site == "kconsistency.positions"
        with governed(deadline=0.0):
            with pytest.raises(DeadlineExceededError):
                direct_k_consistency(a, b, 2)

    def test_ramsey_structured_errors(self):
        from repro.graphtheory import ramsey_bound
        from repro.graphtheory.ramsey import find_monochromatic_subset

        with pytest.raises(BudgetExceededError) as excinfo:
            ramsey_bound(2, 3, 10)
        assert excinfo.value.site == "ramsey.bound"
        with governed(deadline=0.0):
            with pytest.raises(DeadlineExceededError):
                find_monochromatic_subset(range(10), 2, lambda s: 0, 3)

    def test_minor_search_deadline(self):
        from repro.graphtheory import grid_graph, has_clique_minor

        with governed(deadline=0.0):
            with pytest.raises(DeadlineExceededError):
                has_clique_minor(grid_graph(3, 3), 4)


# ----------------------------------------------------------------------
# Governed CLI flags
# ----------------------------------------------------------------------
class TestGovernedCli:
    @pytest.fixture()
    def files(self, tmp_path):
        from repro.structures import structure_to_json

        source, target = slow_negative_instance()
        paths = {}
        for name, s in [
            ("slow_source", source),
            ("slow_target", target),
            ("p2", undirected_path(2)),
            ("p4", undirected_path(4)),
            ("c5", undirected_cycle(5)),
        ]:
            p = tmp_path / f"{name}.json"
            p.write_text(structure_to_json(s))
            paths[name] = str(p)
        return paths

    def test_hom_deadline_unknown_exit_code(self, files, capsys):
        from repro.cli import main

        code = main([
            "hom", files["slow_source"], files["slow_target"],
            "--deadline", "0.05",
        ])
        out = capsys.readouterr().out
        assert code == 2
        assert out.startswith("unknown:")
        assert "Deadline" in out

    def test_hom_deadline_definite_answers_unchanged(self, files, capsys):
        from repro.cli import main

        assert main(["hom", files["p2"], files["p4"],
                     "--deadline", "30"]) == 0
        assert main(["hom", files["c5"], files["p2"],
                     "--deadline", "30"]) == 1
        assert "no homomorphism" in capsys.readouterr().out

    def test_treewidth_fallback_flag(self, files, capsys):
        from repro.cli import main

        assert main(["treewidth", files["c5"], "--fallback"]) == 0
        assert "treewidth: 2" in capsys.readouterr().out
