"""The server-side chaos campaign (see :mod:`tests.serve_chaos`).

Asserts the serve robustness contract over hundreds of seeded trials:

* **zero hangs** — a ``signal.alarm`` watchdog converts any stall into
  a failure (CI adds a coreutils ``timeout`` belt on top);
* **zero silent losses** — every frame that expects a response is
  answered exactly once;
* **no invalid verdict escapes** — definite answers are differentially
  checked against the brute-force oracle, TRUE witnesses re-validated;
* the hostile scenarios (slow clients, disconnects, malformed frames,
  bursts) all actually ran, and the seeded flaky kernel genuinely
  exercised the circuit breaker;
* SIGTERM mid-flight drains gracefully: the process exits 0, answers
  everything it accepted, and reports its drain counters.

The campaign's audit report is written to ``$REPRO_SERVE_AUDIT`` when
set (the CI job uploads it as an artifact).
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from .serve_chaos import run_campaign

#: Seed for the campaign; CI pins it via the environment.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "20260806"))

#: Trial count — the acceptance bar is >= 200 seeded trials.
CHAOS_TRIALS = int(os.environ.get("REPRO_SERVE_CHAOS_TRIALS", "220"))

#: Whole-campaign hang cap (seconds).
WATCHDOG_S = 420


@pytest.fixture(autouse=True)
def watchdog():
    """Convert a hang into a loud failure (POSIX main thread only)."""
    if sys.platform == "win32":  # pragma: no cover
        yield
        return

    def on_alarm(signum, frame):  # pragma: no cover - only on a hang
        raise AssertionError(
            f"serve-chaos watchdog: exceeded {WATCHDOG_S}s — the server "
            "hung instead of answering or shedding"
        )

    old = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(WATCHDOG_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


@pytest.fixture(scope="module")
def campaign():
    report = run_campaign(CHAOS_TRIALS, CHAOS_SEED)
    audit_path = os.environ.get("REPRO_SERVE_AUDIT")
    if audit_path:
        with open(audit_path, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
    return report


class TestCampaign:
    def test_no_invalid_outcomes(self, campaign):
        assert campaign.invalid == [], (
            f"{len(campaign.invalid)} invalid trials "
            f"(seed {campaign.seed}): {campaign.invalid[:5]}"
        )

    def test_no_silent_losses(self, campaign):
        assert campaign.sent > 0
        assert campaign.answered == campaign.sent, (
            f"sent {campaign.sent} response-expecting frames, "
            f"answered {campaign.answered}"
        )

    def test_minimum_scale(self, campaign):
        assert campaign.trials >= 200
        assert campaign.checked >= 100  # differentially verified verdicts

    def test_every_scenario_ran(self, campaign):
        from .serve_chaos import TRIALS

        assert set(campaign.by_scenario) == set(TRIALS)
        assert all(count > 0 for count in campaign.by_scenario.values())

    def test_hostile_inputs_were_survived_not_crashed(self, campaign):
        counters = campaign.serve_counters
        assert counters["malformed_frames"] > 0
        assert counters["oversized_frames"] > 0
        assert counters["client_gone"] + counters["idle_closes"] >= 0
        assert counters["completed"] > 0

    def test_breaker_was_genuinely_exercised(self, campaign):
        assert campaign.serve_counters["kernel_faults_fired"] > 0
        assert campaign.breaker_trips >= 1
        assert campaign.serve_counters["breaker_fallback_solves"] > 0

    def test_campaign_is_reproducible_in_shape(self, campaign):
        # Same seed, small rerun: scenario mix must match exactly for
        # the shared prefix of trials (seeded per-trial RNGs).
        rerun = run_campaign(30, CHAOS_SEED)
        assert rerun.invalid == []
        prefix = run_campaign(30, CHAOS_SEED)
        assert prefix.by_scenario == rerun.by_scenario


# ----------------------------------------------------------------------
# SIGTERM mid-flight: the drain contract, end to end
# ----------------------------------------------------------------------
TRIANGLE = {
    "universe": [0, 1, 2],
    "vocabulary": {"E": 2},
    "relations": {"E": [[0, 1], [1, 2], [2, 0]]},
}
PATH3 = {
    "universe": [0, 1, 2],
    "vocabulary": {"E": 2},
    "relations": {"E": [[0, 1], [1, 2]]},
}


def _structure_wire(raw):
    """Build the io-module wire dict for a small test structure."""
    from repro.structures import Structure, Vocabulary
    from repro.structures.io import structure_to_dict

    s = Structure(
        Vocabulary(raw["vocabulary"]),
        raw["universe"],
        {k: [tuple(t) for t in v] for k, v in raw["relations"].items()},
    )
    return structure_to_dict(s)


def test_sigterm_mid_flight_drains_gracefully():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--drain-grace", "0.5"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    try:
        ready = proc.stdout.readline().strip()
        assert ready.startswith("repro-serve ready on ")
        host, port = ready.rsplit(" ", 1)[-1].rsplit(":", 1)
        port = int(port)

        # Pipeline a stream of requests (hom triangle -> path3 is FALSE,
        # path3 -> triangle is TRUE) and SIGTERM while they flow.
        tri, p3 = _structure_wire(TRIANGLE), _structure_wire(PATH3)
        sock = socket.create_connection((host, port), timeout=30)
        sock.settimeout(30)
        sent = 0
        for i in range(40):
            q = {"op": "hom", "id": i,
                 "source": tri if i % 2 else p3,
                 "target": p3 if i % 2 else tri}
            try:
                sock.sendall((json.dumps(q) + "\n").encode("utf-8"))
            except OSError:
                break  # drain already closed us; that is a clean refusal
            sent += 1
            if i == 10:
                proc.send_signal(signal.SIGTERM)
                time.sleep(0.05)

        responses = []
        rfile = sock.makefile("rb")
        while True:
            try:
                line = rfile.readline()
            except (OSError, socket.timeout):
                break
            if not line:
                break
            responses.append(json.loads(line))
        sock.close()

        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, (out, err)
        assert "repro-serve drained:" in err

        # Every response the drain let through is valid and correct;
        # none may be a wrong definite answer.
        for r in responses:
            assert r["status"] in ("ok", "overloaded", "error")
            if r["status"] == "ok":
                verdict = r["results"][0]["verdict"]["value"]
                expected = "FALSE" if r["id"] % 2 else "TRUE"
                assert verdict in (expected, "UNKNOWN")
            if r["status"] == "error":
                # Only the draining path may refuse well-formed frames,
                # and it answers 'overloaded', not 'error'.
                raise AssertionError(f"unexpected error response: {r}")
        # At least the pre-signal requests were answered (no mass loss).
        assert len(responses) >= 1
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)


def test_sigint_is_graceful_too():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    try:
        ready = proc.stdout.readline().strip()
        assert ready.startswith("repro-serve ready on ")
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, (out, err)
        assert "repro-serve drained:" in err
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)
