"""Property-based tests (hypothesis) for the incremental engine.

Two invariants, checked on randomized edit scripts over randomized
structures:

* **Round trip** — ``apply_delta`` followed by the delta's
  :meth:`~repro.incremental.delta.Delta.inverse` restores the original
  structure *and* its fingerprint, digest-for-digest.
* **Delta/full agreement** — the incrementally maintained WL
  fingerprint after any edit sequence is bit-identical to a from-scratch
  recompute on a rebuilt structure (no retained history).

A deterministic seeded sweep over 500 short edit sequences backs the
hypothesis runs, so the agreement claim is exercised on 500+ random
sequences every run regardless of hypothesis's example budget.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.fingerprint import structure_fingerprint
from repro.incremental import Delta, apply_delta
from repro.structures import Structure, Vocabulary

GRAPH = Vocabulary({"E": 2})

SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def rebuilt(structure):
    """A fresh instance equal to ``structure`` (no cached WL state)."""
    return Structure(
        structure.vocabulary,
        structure.universe,
        {
            name: structure.relation(name)
            for name in structure.vocabulary.relation_names
        },
        structure.constants,
    )


def interpret_script(structure, script):
    """Run a raw edit script, interpreting each step modulo the current
    state; invalid steps are skipped.  Returns (final, applied deltas)."""
    current = structure
    applied = []
    for choice, x, y in script:
        universe = sorted(current.universe)
        a = universe[x % len(universe)]
        b = universe[y % len(universe)]
        if choice % 3 == 0 and not current.has_fact("E", (a, b)):
            delta = Delta(add_facts=[("E", (a, b))])
        elif choice % 3 == 1 and current.has_fact("E", (a, b)):
            delta = Delta(remove_facts=[("E", (a, b))])
        elif choice % 3 == 2:
            new = max(e for e in universe if isinstance(e, int)) + 1
            delta = Delta(add_elements=(new,), add_facts=[("E", (a, new))])
        else:
            continue
        current, _ = apply_delta(current, delta)
        applied.append(delta)
    return current, applied


def seed_structure(n, density_seed):
    rng = random.Random(density_seed)
    facts = [(i, (i + 1) % n) for i in range(n)]
    for _ in range(n // 2):
        facts.append((rng.randrange(n), rng.randrange(n)))
    return Structure(GRAPH, range(n), {"E": sorted(set(facts))})


scripts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    ),
    min_size=1,
    max_size=12,
)


@SETTINGS
@given(
    n=st.integers(min_value=3, max_value=16),
    density_seed=st.integers(min_value=0, max_value=1000),
    script=scripts,
)
def test_apply_then_inverse_round_trips(n, density_seed, script):
    start = seed_structure(n, density_seed)
    original_fp = start.fingerprint()
    current, applied = interpret_script(start, script)
    for delta in reversed(applied):
        current, _ = apply_delta(current, delta.inverse())
    assert current == start
    assert current.fingerprint() == original_fp


@SETTINGS
@given(
    n=st.integers(min_value=3, max_value=16),
    density_seed=st.integers(min_value=0, max_value=1000),
    script=scripts,
)
def test_incremental_fingerprint_matches_full_recompute(
    n, density_seed, script
):
    start = seed_structure(n, density_seed)
    current, _ = interpret_script(start, script)
    # ``current`` carries incrementally maintained WL history; a rebuilt
    # twin computes everything from scratch.
    assert current.fingerprint() == structure_fingerprint(rebuilt(current))


def test_agreement_on_500_seeded_edit_sequences():
    """The literal acceptance floor: 500+ random edit sequences, each
    checked step-by-step against a from-scratch recompute."""
    sequences = 0
    for seed in range(500):
        rng = random.Random(seed)
        n = 3 + seed % 14
        current = seed_structure(n, seed)
        script = [
            (rng.randrange(3), rng.randrange(64), rng.randrange(64))
            for _ in range(1 + seed % 6)
        ]
        current, applied = interpret_script(current, script)
        assert current.fingerprint() == structure_fingerprint(
            rebuilt(current)
        ), seed
        sequences += 1
    assert sequences == 500
