"""Unit tests for minimal-model machinery (Section 3)."""

import pytest

from repro.core import (
    bounded_degree_class,
    enumerate_minimal_models,
    is_minimal_model,
    max_minimal_model_size,
    minimal_models_are_cores,
    minimal_models_from_seeds,
    shrink_to_minimal_model,
)
from repro.logic import parse_formula
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    directed_cycle,
    directed_path,
    random_directed_graph,
    single_loop,
)


def fo(text):
    return parse_formula(text, GRAPH_VOCABULARY)


# "There is an edge" — minimal model: single E-edge (2 elements) and loop.
HAS_EDGE = fo("exists x y. E(x, y)")
# "Closed walk of length 3" — minimal models: loop and directed triangle.
WALK3 = fo("exists x y z. E(x, y) & E(y, z) & E(z, x)")


class TestIsMinimalModel:
    def test_loop_is_minimal_for_has_edge(self):
        assert is_minimal_model(HAS_EDGE, single_loop())

    def test_edge_is_minimal_for_has_edge(self):
        edge = Structure(GRAPH_VOCABULARY, [0, 1], {"E": [(0, 1)]})
        assert is_minimal_model(HAS_EDGE, edge)

    def test_two_edges_not_minimal(self):
        assert not is_minimal_model(HAS_EDGE, directed_path(3))

    def test_non_model_not_minimal(self):
        empty = Structure(GRAPH_VOCABULARY, [0], {})
        assert not is_minimal_model(HAS_EDGE, empty)

    def test_isolated_element_blocks_minimality(self):
        s = Structure(GRAPH_VOCABULARY, [0, 1, 2], {"E": [(0, 1)]})
        assert not is_minimal_model(HAS_EDGE, s)

    def test_triangle_minimal_for_walk3(self):
        assert is_minimal_model(WALK3, directed_cycle(3))
        assert is_minimal_model(WALK3, single_loop())
        assert not is_minimal_model(WALK3, directed_cycle(6))

    def test_assume_preserved_agrees_for_preserved_queries(self):
        candidates = [
            single_loop(),
            directed_cycle(3),
            directed_cycle(6),
            directed_path(3),
            random_directed_graph(3, 0.5, 1),
        ]
        for s in candidates:
            assert is_minimal_model(WALK3, s) == is_minimal_model(
                WALK3, s, assume_preserved=True
            )

    def test_respects_class(self):
        # within the degree<=1 class, the loop is outside for degree 0?
        cls = bounded_degree_class(1)
        edge = Structure(GRAPH_VOCABULARY, [0, 1], {"E": [(0, 1)]})
        assert is_minimal_model(HAS_EDGE, edge, cls)


class TestShrink:
    def test_shrinks_to_minimal(self):
        big = random_directed_graph(4, 0.6, seed=3)
        from repro.core import as_boolean_query

        q = as_boolean_query(HAS_EDGE)
        if q(big):
            minimal = shrink_to_minimal_model(HAS_EDGE, big)
            assert is_minimal_model(HAS_EDGE, minimal)
            assert minimal.is_substructure_of(big)

    def test_seed_must_model(self):
        empty = Structure(GRAPH_VOCABULARY, [0], {})
        with pytest.raises(ValueError):
            shrink_to_minimal_model(HAS_EDGE, empty)

    def test_deterministic(self):
        seed = directed_cycle(6)
        a = shrink_to_minimal_model(HAS_EDGE, seed)
        b = shrink_to_minimal_model(HAS_EDGE, seed)
        assert a == b


class TestEnumerate:
    def test_has_edge_minimal_models(self):
        models = enumerate_minimal_models(HAS_EDGE, GRAPH_VOCABULARY, 2,
                                          assume_preserved=True)
        sizes = sorted(m.size() for m in models)
        assert sizes == [1, 2]  # the loop and the single edge

    def test_walk3_minimal_models(self):
        models = enumerate_minimal_models(WALK3, GRAPH_VOCABULARY, 3,
                                          assume_preserved=True)
        sizes = sorted(m.size() for m in models)
        assert sizes == [1, 3]  # loop and directed triangle

    def test_models_are_cores(self):
        models = enumerate_minimal_models(WALK3, GRAPH_VOCABULARY, 3,
                                          assume_preserved=True)
        assert minimal_models_are_cores(models)

    def test_max_size(self):
        models = enumerate_minimal_models(WALK3, GRAPH_VOCABULARY, 3,
                                          assume_preserved=True)
        assert max_minimal_model_size(models) == 3
        assert max_minimal_model_size([]) == 0


class TestFromSeeds:
    def test_finds_both_models(self):
        seeds = [directed_cycle(3), directed_cycle(6), single_loop(),
                 directed_path(4)]
        models = minimal_models_from_seeds(WALK3, seeds)
        sizes = sorted(m.size() for m in models)
        assert sizes == [1, 3]

    def test_non_models_skipped(self):
        models = minimal_models_from_seeds(WALK3, [directed_path(3)])
        assert models == []

    def test_dedup(self):
        seeds = [directed_cycle(3), directed_cycle(3)]
        models = minimal_models_from_seeds(WALK3, seeds)
        assert len(models) == 1
