"""Fault-injection harness for the resource governor (library half).

The harness exploits the seam every governed decider already passes
through — :meth:`repro.resources.RunContext.checkpoint` — to simulate
governor trips at arbitrary moments: a :class:`FaultInjector` installed
as a context's ``injector`` fires (with seeded randomness) deadline
expiries, budget exhaustions, cooperative cancellations and hom-cache
evictions mid-decision, at whichever checkpoint the dice pick.

A chaos *trial* runs one public operation (homomorphism verdict, core,
treewidth-with-fallback, Datalog fixpoint, pebble game) on structures
drawn from a small reused pool (so engine cache keys recur and evictions
hit warm entries) under an injecting context, then classifies the
outcome:

* ``ok`` — the operation completed with a valid definite result;
* ``unknown`` — a trivalent API honestly reported UNKNOWN;
* ``typed_error`` — a :class:`~repro.exceptions.ReproError` subtype
  escaped (allowed for non-trivalent APIs);
* ``invalid`` — anything else: a foreign exception, a wrong-shaped
  result, or an UNKNOWN→bool coercion sneaking through.

``tests/test_chaos.py`` drives hundreds of seeded trials, asserts no
trial is ``invalid``, that each fault kind actually fired, and that the
memo cache still satisfies the brute-force differential oracle after the
injection storm (a trip must never corrupt a cached answer).
"""

from __future__ import annotations

import itertools
import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import HomEngine
from repro.exceptions import (
    BudgetExceededError,
    DeadlineExceededError,
    OperationCancelledError,
    ReproError,
)
from repro.homomorphism import is_homomorphism
from repro.parallel import RetryPolicy, run_sweep, serial_map
from repro.parallel.faults import faulty_task
from repro.resources import RunContext, SweepJournal, Verdict, governed
from repro.structures import (
    Structure,
    Vocabulary,
    random_structure,
    single_edge,
    undirected_cycle,
    undirected_path,
)

#: Per-trial wall-clock cap: even a trial whose faults never fire must
#: finish well within this (the pool instances are all sub-second), so a
#: governed deadline this long is purely an anti-hang backstop.
HANG_CAP_S = 10.0

GRAPH = Vocabulary({"E": 2})

FAULT_KINDS = ("deadline", "budget", "cancel", "evict")


# ----------------------------------------------------------------------
# The injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Seeded random fault source run at every checkpoint.

    Parameters
    ----------
    seed:
        Seeds the private RNG; trials are reproducible given the seed.
    rate:
        Per-checkpoint probability that *some* fault fires (the kind is
        then drawn uniformly from ``kinds``).
    kinds:
        The fault kinds this injector may fire (default: all four).
    engine:
        The engine whose cache the ``evict`` fault clears.
    """

    def __init__(
        self,
        seed: int,
        rate: float = 0.01,
        kinds=FAULT_KINDS,
        engine: Optional[HomEngine] = None,
    ) -> None:
        self.rng = random.Random(seed)
        self.rate = rate
        self.kinds = tuple(kinds)
        self.engine = engine
        self.fired: Dict[str, int] = {kind: 0 for kind in self.kinds}

    def __call__(self, context: RunContext, site: str) -> None:
        if self.rng.random() >= self.rate:
            return
        kind = self.rng.choice(self.kinds)
        self.fired[kind] += 1
        if kind == "deadline":
            raise DeadlineExceededError(
                f"injected deadline expiry at {site or 'unknown site'}",
                deadline_s=0.0,
                elapsed_s=0.0,
                site=site or None,
                consumed=context.consumption(),
            )
        if kind == "budget":
            raise BudgetExceededError(
                f"injected budget exhaustion at {site or 'unknown site'}",
                budget=0,
                spent=1,
                site=site or None,
                consumed=context.consumption(),
            )
        if kind == "cancel":
            context.cancel()  # surfaces via the checkpoint's own check
            return
        # "evict": perturb shared state instead of raising — the decider
        # must keep working (and stay correct) with a cold cache.  Both
        # caches go: the memo cache and the compiled-target interning.
        if self.engine is not None:
            self.engine.cache.clear()
            self.engine.compiled_targets.clear()

    def total_fired(self) -> int:
        return sum(self.fired.values())


# ----------------------------------------------------------------------
# The structure pool
# ----------------------------------------------------------------------
def structure_pool() -> List[Structure]:
    """Small deterministic structures, reused across trials so the memo
    cache sees recurring keys (and evictions hit warm entries)."""
    pool = [
        single_edge(),
        undirected_path(2),
        undirected_path(3),
        undirected_cycle(3),
        undirected_cycle(4),
        undirected_cycle(5),
    ]
    for seed in range(6):
        pool.append(random_structure(GRAPH, 2 + seed % 3, 0.4, seed=seed))
    return pool


def brute_force_has_homomorphism(source: Structure, target: Structure) -> bool:
    """Oracle: try every mapping universe(source) → universe(target)."""
    src = list(source.universe)
    if not src:
        return is_homomorphism(source, target, {})
    tgt = list(target.universe)
    if not tgt:
        return False
    for images in itertools.product(tgt, repeat=len(src)):
        if is_homomorphism(source, target, dict(zip(src, images))):
            return True
    return False


# ----------------------------------------------------------------------
# Trials
# ----------------------------------------------------------------------
@dataclass
class TrialResult:
    """One classified chaos trial."""

    operation: str
    outcome: str  # ok | unknown | typed_error | invalid
    detail: str = ""
    faults: Dict[str, int] = field(default_factory=dict)


def _run_operation(rng: random.Random, engine: HomEngine, pool) -> TrialResult:
    """Pick and run one public operation; classify what came back."""
    op = rng.choice(("hom", "core", "treewidth", "datalog", "pebble"))
    try:
        if op == "hom":
            source, target = rng.choice(pool), rng.choice(pool)
            verdict = engine.decide_homomorphism(source, target)
            if not isinstance(verdict, Verdict):
                return TrialResult(op, "invalid", "non-Verdict result")
            if verdict.is_unknown:
                return TrialResult(op, "unknown", verdict.reason)
            if verdict.is_true and not is_homomorphism(
                source, target, verdict.witness
            ):
                return TrialResult(op, "invalid", "TRUE with bogus witness")
            return TrialResult(op, "ok")
        if op == "core":
            structure = rng.choice(pool)
            core = engine.core(structure)
            if not isinstance(core, Structure):
                return TrialResult(op, "invalid", "non-Structure core")
            if core.size() > structure.size():
                return TrialResult(op, "invalid", "core grew")
            return TrialResult(op, "ok")
        if op == "treewidth":
            from repro.graphtheory import treewidth_with_fallback
            from repro.structures import gaifman_graph

            structure = rng.choice(pool)
            result = treewidth_with_fallback(gaifman_graph(structure))
            if result.width < 0:
                return TrialResult(op, "invalid", "negative width")
            return TrialResult(op, "ok")
        if op == "datalog":
            from repro.datalog import evaluate_semi_naive, parse_program
            from repro.structures import directed_path

            structure = directed_path(2 + rng.randrange(4))
            program = parse_program(
                "T(x, y) <- E(x, y).\nT(x, z) <- E(x, y), T(y, z).",
                structure.vocabulary.without_constants(),
            )
            result = evaluate_semi_naive(program, structure)
            n = structure.size()
            if len(result.relations["T"]) != n * (n - 1) // 2:
                return TrialResult(op, "invalid", "wrong fixpoint")
            return TrialResult(op, "ok")
        # pebble
        from repro.pebble import duplicator_wins

        source, target = rng.choice(pool), rng.choice(pool)
        wins = duplicator_wins(source, target, 2)
        if not isinstance(wins, bool):
            return TrialResult(op, "invalid", "non-bool game outcome")
        return TrialResult(op, "ok")
    except (DeadlineExceededError, BudgetExceededError,
            OperationCancelledError) as err:
        return TrialResult(op, "typed_error", f"{type(err).__name__}: {err}")
    except ReproError as err:
        return TrialResult(op, "typed_error", f"{type(err).__name__}: {err}")
    except Exception as err:  # noqa: BLE001 - the whole point of the harness
        return TrialResult(op, "invalid", f"{type(err).__name__}: {err}")


def run_trial(seed: int, engine: HomEngine, pool,
              rate: float = 0.01) -> TrialResult:
    """One seeded chaos trial under an injecting governed context."""
    rng = random.Random(seed)
    injector = FaultInjector(
        seed=seed ^ 0x5EED, rate=rate, engine=engine
    )
    with governed(deadline=HANG_CAP_S, injector=injector):
        result = _run_operation(rng, engine, pool)
    result.faults = dict(injector.fired)
    return result


def run_campaign(trials: int, base_seed: int,
                 rate: float = 0.01) -> List[TrialResult]:
    """A full chaos campaign against one shared engine and pool."""
    engine = HomEngine()
    pool = structure_pool()
    return [
        run_trial(base_seed + i, engine, pool, rate=rate)
        for i in range(trials)
    ]


# ======================================================================
# Worker-level fault campaign (the supervised sweep runtime's half)
# ======================================================================
# The injector above exercises the *cooperative* seam — governor trips
# at checkpoint() sites.  The scenarios below exercise everything that
# seam cannot express: a worker SIGKILLed mid-task, an OOM-style abrupt
# exit, a non-cooperative hang the watchdog must hard-kill, a poison
# instance that must be quarantined, and journal files torn or garbled
# between runs.  Every trial asserts the robustness contract: the sweep
# either completes with correct results or resumes losslessly — never a
# hang, never silent result loss.

#: Worker-fault scenarios, weighted so pool-churning ones (each rebuild
#: costs real wall clock) stay a minority of a large campaign.
WORKER_SCENARIOS: Tuple[Tuple[str, int], ...] = (
    ("clean", 4),           # fault-free supervised parallel sweep
    ("crash-once", 3),      # transient worker SIGKILL, retry succeeds
    ("poison-crash", 2),    # deterministic crasher -> quarantine
    ("oom", 2),             # abrupt exit 137 (OOM-killer signature)
    ("hang", 1),            # non-cooperative sleep -> watchdog SIGKILL
    ("flaky-error", 2),     # in-task exception opted into retry
    ("torn-journal", 4),    # partial final line, resume losslessly
    ("garbled-journal", 4), # checksum-failing line, resume losslessly
    ("hom-under-crash", 2), # engine verdicts stay correct across crash
)


@dataclass
class WorkerTrialResult:
    """One classified worker-fault trial."""

    scenario: str
    outcome: str  # ok | invalid
    detail: str = ""
    counters: Dict[str, int] = field(default_factory=dict)
    quarantined_keys: List[str] = field(default_factory=list)


def _scenario_for(rng: random.Random) -> str:
    names = [name for name, weight in WORKER_SCENARIOS for _ in range(weight)]
    return rng.choice(names)


def _fast_policy() -> RetryPolicy:
    return RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05)


def _ok_instances(rng: random.Random, count: int = 3):
    return [
        (f"ok-{i}", ("ok", rng.randrange(1000))) for i in range(count)
    ]


def _check_ok_records(outcome, instances) -> Optional[str]:
    """Silent-loss check: every healthy instance must carry its exact
    value.  Returns a failure detail or ``None``."""
    expected = {key: spec[1] for key, spec in instances if spec[0] == "ok"}
    for key, value in expected.items():
        record = outcome.results.get(key)
        if record is None:
            return f"record for {key} lost"
        if record.get("status") != "ok":
            return f"{key} not ok: {record.get('status')}"
        if record["result"]["value"] != value:
            return f"{key} value corrupted: {record['result']['value']}"
    return None


def _counters(outcome) -> Dict[str, int]:
    return {
        "retries": outcome.retries,
        "quarantined": outcome.quarantined,
        "hard_kills": outcome.hard_kills,
        "pool_rebuilds": outcome.pool_rebuilds,
        "worker_crashes": outcome.worker_crashes,
    }


def run_worker_trial(seed: int, base_dir: str) -> WorkerTrialResult:
    """One seeded worker-fault trial against the supervised runtime."""
    rng = random.Random(seed)
    scenario = _scenario_for(rng)
    trial_dir = os.path.join(base_dir, f"trial-{seed}")
    os.makedirs(trial_dir, exist_ok=True)
    journal_path = os.path.join(trial_dir, "journal.jsonl")
    try:
        return _run_worker_scenario(scenario, rng, trial_dir, journal_path)
    except Exception as err:  # noqa: BLE001 - the point of the harness
        return WorkerTrialResult(
            scenario, "invalid", f"escaped {type(err).__name__}: {err}"
        )


def _run_worker_scenario(
    scenario: str, rng: random.Random, trial_dir: str, journal_path: str
) -> WorkerTrialResult:
    policy = _fast_policy()

    if scenario == "clean":
        instances = _ok_instances(rng, 4)
        outcome = run_sweep(
            faulty_task, instances, workers=2, retry_policy=policy
        )
        detail = _check_ok_records(outcome, instances)
        if detail is None and outcome.quarantined:
            detail = "clean sweep quarantined something"
        return WorkerTrialResult(
            scenario, "invalid" if detail else "ok", detail or "",
            _counters(outcome),
        )

    if scenario in ("crash-once", "oom", "poison-crash", "hang",
                    "flaky-error"):
        instances = _ok_instances(rng, 3)
        sentinel = os.path.join(trial_dir, "sentinel")
        fault_spec = {
            "crash-once": ("crash-once", sentinel, rng.randrange(1000)),
            "oom": ("oom", 4),
            "poison-crash": ("crash-always",),
            "hang": ("hang", 30.0, 0),
            "flaky-error": ("flaky-error", sentinel, rng.randrange(1000)),
        }[scenario]
        position = rng.randrange(len(instances) + 1)
        instances.insert(position, ("fault", fault_spec))
        retryable = policy.retryable
        if scenario == "flaky-error":
            retryable = frozenset(
                {"WorkerCrashError", "HardTimeoutError", "ValueError"}
            )
        outcome = run_sweep(
            faulty_task,
            instances,
            workers=2,
            deadline_s=0.05 if scenario == "hang" else 5.0,
            grace_factor=2.0,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.01, max_delay=0.05,
                retryable=retryable,
            ),
            journal=SweepJournal(journal_path),
        )
        detail = _check_ok_records(outcome, instances)
        fault_record = outcome.results.get("fault")
        if detail is None:
            if fault_record is None:
                detail = "fault record lost"
            elif scenario in ("crash-once", "flaky-error"):
                if fault_record.get("status") != "ok":
                    detail = (
                        f"transient fault did not recover: {fault_record}"
                    )
                elif not fault_record["result"].get("recovered"):
                    detail = "transient fault skipped its faulty attempt"
            elif fault_record.get("status") != "quarantined":
                detail = (
                    f"poison not quarantined: {fault_record.get('status')}"
                )
            elif scenario == "hang" and (
                fault_record.get("error") != "HardTimeoutError"
            ):
                detail = f"hang ended as {fault_record.get('error')}"
        # The journal must agree with the in-memory outcome (resume
        # losslessly === journal holds exactly what the report says).
        if detail is None:
            replay = SweepJournal(journal_path)
            for key, _ in instances:
                if replay.result(key) != outcome.results[key]:
                    detail = f"journal diverges from outcome at {key}"
                    break
        return WorkerTrialResult(
            scenario, "invalid" if detail else "ok", detail or "",
            _counters(outcome),
            [k for k, r in outcome.results.items()
             if r and r.get("status") == "quarantined"],
        )

    if scenario in ("torn-journal", "garbled-journal"):
        instances = _ok_instances(rng, 5)
        # Phase 1: a partial run journals a prefix (as a killed sweep
        # would leave behind) ...
        prefix = rng.randrange(1, len(instances))
        serial_map(
            faulty_task, instances[:prefix],
            journal=SweepJournal(journal_path),
        )
        # ... then the crash damages the journal.
        if scenario == "torn-journal":
            with open(journal_path, "a", encoding="utf-8") as handle:
                handle.write('{"v": 2, "crc": "00000000", "entry": {"k')
        else:
            with open(journal_path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
            victim = rng.randrange(len(lines))
            lines[victim] = lines[victim].replace('"', "'", 2)
            with open(journal_path, "w", encoding="utf-8") as handle:
                handle.writelines(lines)
        # Phase 2: resume; damaged records are recomputed, intact ones
        # are reused, and the merged outcome must be complete + correct.
        journal = SweepJournal(journal_path)
        pre_stats = journal.journal_stats()
        outcome = run_sweep(
            faulty_task, instances, workers=2, retry_policy=policy,
            journal=journal,
        )
        detail = _check_ok_records(outcome, instances)
        if detail is None and outcome.resumed + outcome.computed != len(
            instances
        ):
            detail = "resume arithmetic broken"
        if detail is None and scenario == "torn-journal":
            if pre_stats["torn_tail"] != 1:
                detail = f"torn tail not detected: {pre_stats}"
        if detail is None and scenario == "garbled-journal":
            if pre_stats["corrupt"] != 1 and prefix > 0:
                detail = f"garbled line not counted: {pre_stats}"
        if detail is None:
            # A second reload must find a fully clean journal.
            final = SweepJournal(journal_path).journal_stats()
            if final["integrity"] != "ok":
                detail = f"journal not clean after resume: {final}"
        return WorkerTrialResult(
            scenario, "invalid" if detail else "ok", detail or "",
            _counters(outcome),
        )

    if scenario == "hom-under-crash":
        # Kernel/reference agreement must survive worker crashes: run
        # real engine verdicts next to a crashing instance and check
        # them against ground truth.
        from repro.parallel.sweeps import hom_task

        sentinel = os.path.join(trial_dir, "sentinel")
        hom_instances = [
            ("odd-cycle", (("undirected-cycle", (7,)),
                           ("undirected-path", (2,)))),
            ("path-in-cycle", (("directed-path", (3,)),
                               ("undirected-cycle", (4,)))),
        ]
        outcome = run_sweep(
            _hom_or_fault_task,
            [("crash", ("fault", ("crash-once", sentinel, 1)))] + [
                (key, ("hom", spec)) for key, spec in hom_instances
            ],
            workers=2,
            deadline_s=10.0,
            retry_policy=policy,
            journal=SweepJournal(journal_path),
        )
        detail = None
        expected = {"odd-cycle": "FALSE", "path-in-cycle": "TRUE"}
        for key, verdict in expected.items():
            record = outcome.results.get(key)
            if record is None or record.get("status") != "ok":
                detail = f"hom instance {key} lost under crash: {record}"
                break
            if record["result"]["verdict"] != verdict:
                detail = (
                    f"hom verdict corrupted under crash: {key} gave "
                    f"{record['result']['verdict']}, wanted {verdict}"
                )
                break
        if detail is None:
            crash = outcome.results.get("crash")
            if crash is None or crash.get("status") != "ok":
                detail = f"crash instance did not recover: {crash}"
        return WorkerTrialResult(
            scenario, "invalid" if detail else "ok", detail or "",
            _counters(outcome),
        )

    return WorkerTrialResult(scenario, "invalid", "unknown scenario")


def _hom_or_fault_task(spec):
    """Top-level picklable dispatcher mixing engine work with faults."""
    kind, payload = spec
    if kind == "hom":
        from repro.parallel.sweeps import hom_task

        return hom_task(payload)
    return faulty_task(payload)


def run_worker_campaign(
    trials: int, base_seed: int, base_dir: str
) -> List[WorkerTrialResult]:
    """A full seeded worker-fault campaign (one tmp dir per trial)."""
    return [
        run_worker_trial(base_seed + i, base_dir) for i in range(trials)
    ]
