"""Fault-injection harness for the resource governor (library half).

The harness exploits the seam every governed decider already passes
through — :meth:`repro.resources.RunContext.checkpoint` — to simulate
governor trips at arbitrary moments: a :class:`FaultInjector` installed
as a context's ``injector`` fires (with seeded randomness) deadline
expiries, budget exhaustions, cooperative cancellations and hom-cache
evictions mid-decision, at whichever checkpoint the dice pick.

A chaos *trial* runs one public operation (homomorphism verdict, core,
treewidth-with-fallback, Datalog fixpoint, pebble game) on structures
drawn from a small reused pool (so engine cache keys recur and evictions
hit warm entries) under an injecting context, then classifies the
outcome:

* ``ok`` — the operation completed with a valid definite result;
* ``unknown`` — a trivalent API honestly reported UNKNOWN;
* ``typed_error`` — a :class:`~repro.exceptions.ReproError` subtype
  escaped (allowed for non-trivalent APIs);
* ``invalid`` — anything else: a foreign exception, a wrong-shaped
  result, or an UNKNOWN→bool coercion sneaking through.

``tests/test_chaos.py`` drives hundreds of seeded trials, asserts no
trial is ``invalid``, that each fault kind actually fired, and that the
memo cache still satisfies the brute-force differential oracle after the
injection storm (a trip must never corrupt a cached answer).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine import HomEngine
from repro.exceptions import (
    BudgetExceededError,
    DeadlineExceededError,
    OperationCancelledError,
    ReproError,
)
from repro.homomorphism import is_homomorphism
from repro.resources import RunContext, Verdict, governed
from repro.structures import (
    Structure,
    Vocabulary,
    random_structure,
    single_edge,
    undirected_cycle,
    undirected_path,
)

#: Per-trial wall-clock cap: even a trial whose faults never fire must
#: finish well within this (the pool instances are all sub-second), so a
#: governed deadline this long is purely an anti-hang backstop.
HANG_CAP_S = 10.0

GRAPH = Vocabulary({"E": 2})

FAULT_KINDS = ("deadline", "budget", "cancel", "evict")


# ----------------------------------------------------------------------
# The injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Seeded random fault source run at every checkpoint.

    Parameters
    ----------
    seed:
        Seeds the private RNG; trials are reproducible given the seed.
    rate:
        Per-checkpoint probability that *some* fault fires (the kind is
        then drawn uniformly from ``kinds``).
    kinds:
        The fault kinds this injector may fire (default: all four).
    engine:
        The engine whose cache the ``evict`` fault clears.
    """

    def __init__(
        self,
        seed: int,
        rate: float = 0.01,
        kinds=FAULT_KINDS,
        engine: Optional[HomEngine] = None,
    ) -> None:
        self.rng = random.Random(seed)
        self.rate = rate
        self.kinds = tuple(kinds)
        self.engine = engine
        self.fired: Dict[str, int] = {kind: 0 for kind in self.kinds}

    def __call__(self, context: RunContext, site: str) -> None:
        if self.rng.random() >= self.rate:
            return
        kind = self.rng.choice(self.kinds)
        self.fired[kind] += 1
        if kind == "deadline":
            raise DeadlineExceededError(
                f"injected deadline expiry at {site or 'unknown site'}",
                deadline_s=0.0,
                elapsed_s=0.0,
                site=site or None,
                consumed=context.consumption(),
            )
        if kind == "budget":
            raise BudgetExceededError(
                f"injected budget exhaustion at {site or 'unknown site'}",
                budget=0,
                spent=1,
                site=site or None,
                consumed=context.consumption(),
            )
        if kind == "cancel":
            context.cancel()  # surfaces via the checkpoint's own check
            return
        # "evict": perturb shared state instead of raising — the decider
        # must keep working (and stay correct) with a cold cache.  Both
        # caches go: the memo cache and the compiled-target interning.
        if self.engine is not None:
            self.engine.cache.clear()
            self.engine.compiled_targets.clear()

    def total_fired(self) -> int:
        return sum(self.fired.values())


# ----------------------------------------------------------------------
# The structure pool
# ----------------------------------------------------------------------
def structure_pool() -> List[Structure]:
    """Small deterministic structures, reused across trials so the memo
    cache sees recurring keys (and evictions hit warm entries)."""
    pool = [
        single_edge(),
        undirected_path(2),
        undirected_path(3),
        undirected_cycle(3),
        undirected_cycle(4),
        undirected_cycle(5),
    ]
    for seed in range(6):
        pool.append(random_structure(GRAPH, 2 + seed % 3, 0.4, seed=seed))
    return pool


def brute_force_has_homomorphism(source: Structure, target: Structure) -> bool:
    """Oracle: try every mapping universe(source) → universe(target)."""
    src = list(source.universe)
    if not src:
        return is_homomorphism(source, target, {})
    tgt = list(target.universe)
    if not tgt:
        return False
    for images in itertools.product(tgt, repeat=len(src)):
        if is_homomorphism(source, target, dict(zip(src, images))):
            return True
    return False


# ----------------------------------------------------------------------
# Trials
# ----------------------------------------------------------------------
@dataclass
class TrialResult:
    """One classified chaos trial."""

    operation: str
    outcome: str  # ok | unknown | typed_error | invalid
    detail: str = ""
    faults: Dict[str, int] = field(default_factory=dict)


def _run_operation(rng: random.Random, engine: HomEngine, pool) -> TrialResult:
    """Pick and run one public operation; classify what came back."""
    op = rng.choice(("hom", "core", "treewidth", "datalog", "pebble"))
    try:
        if op == "hom":
            source, target = rng.choice(pool), rng.choice(pool)
            verdict = engine.decide_homomorphism(source, target)
            if not isinstance(verdict, Verdict):
                return TrialResult(op, "invalid", "non-Verdict result")
            if verdict.is_unknown:
                return TrialResult(op, "unknown", verdict.reason)
            if verdict.is_true and not is_homomorphism(
                source, target, verdict.witness
            ):
                return TrialResult(op, "invalid", "TRUE with bogus witness")
            return TrialResult(op, "ok")
        if op == "core":
            structure = rng.choice(pool)
            core = engine.core(structure)
            if not isinstance(core, Structure):
                return TrialResult(op, "invalid", "non-Structure core")
            if core.size() > structure.size():
                return TrialResult(op, "invalid", "core grew")
            return TrialResult(op, "ok")
        if op == "treewidth":
            from repro.graphtheory import treewidth_with_fallback
            from repro.structures import gaifman_graph

            structure = rng.choice(pool)
            result = treewidth_with_fallback(gaifman_graph(structure))
            if result.width < 0:
                return TrialResult(op, "invalid", "negative width")
            return TrialResult(op, "ok")
        if op == "datalog":
            from repro.datalog import evaluate_semi_naive, parse_program
            from repro.structures import directed_path

            structure = directed_path(2 + rng.randrange(4))
            program = parse_program(
                "T(x, y) <- E(x, y).\nT(x, z) <- E(x, y), T(y, z).",
                structure.vocabulary.without_constants(),
            )
            result = evaluate_semi_naive(program, structure)
            n = structure.size()
            if len(result.relations["T"]) != n * (n - 1) // 2:
                return TrialResult(op, "invalid", "wrong fixpoint")
            return TrialResult(op, "ok")
        # pebble
        from repro.pebble import duplicator_wins

        source, target = rng.choice(pool), rng.choice(pool)
        wins = duplicator_wins(source, target, 2)
        if not isinstance(wins, bool):
            return TrialResult(op, "invalid", "non-bool game outcome")
        return TrialResult(op, "ok")
    except (DeadlineExceededError, BudgetExceededError,
            OperationCancelledError) as err:
        return TrialResult(op, "typed_error", f"{type(err).__name__}: {err}")
    except ReproError as err:
        return TrialResult(op, "typed_error", f"{type(err).__name__}: {err}")
    except Exception as err:  # noqa: BLE001 - the whole point of the harness
        return TrialResult(op, "invalid", f"{type(err).__name__}: {err}")


def run_trial(seed: int, engine: HomEngine, pool,
              rate: float = 0.01) -> TrialResult:
    """One seeded chaos trial under an injecting governed context."""
    rng = random.Random(seed)
    injector = FaultInjector(
        seed=seed ^ 0x5EED, rate=rate, engine=engine
    )
    with governed(deadline=HANG_CAP_S, injector=injector):
        result = _run_operation(rng, engine, pool)
    result.faults = dict(injector.fired)
    return result


def run_campaign(trials: int, base_seed: int,
                 rate: float = 0.01) -> List[TrialResult]:
    """A full chaos campaign against one shared engine and pool."""
    engine = HomEngine()
    pool = structure_pool()
    return [
        run_trial(base_seed + i, engine, pool, rate=rate)
        for i in range(trials)
    ]
