"""Worker-level chaos campaign: the supervised sweep runtime under fire.

Drives the worker-fault half of :mod:`tests.chaos` — SIGKILLed workers,
OOM-style abrupt exits, non-cooperative hangs, poison instances, torn
and garbled journal files — for hundreds of seeded trials and asserts
the fault-tolerance contract of the supervised runtime:

* **no hung processes** — every trial returns (a ``signal.alarm``
  watchdog converts a hang into a loud failure) and no worker process
  outlives its campaign;
* **no silent result loss** — every healthy instance of every trial
  carries its exact expected value, every fault instance ends in an
  explicit terminal state (recovered ``ok`` or structured
  ``quarantined``), and journals agree with in-memory outcomes;
* **correctness under faults** — engine homomorphism verdicts computed
  next to crashing workers still match ground truth;
* the campaign is **reproducible** given the seed, and a quarantine
  report is emitted for CI artifact collection when
  ``REPRO_CHAOS_REPORT`` is set.
"""

import json
import multiprocessing
import os
import signal
import sys
from collections import Counter

import pytest

from .chaos import WORKER_SCENARIOS, run_worker_campaign, run_worker_trial

#: Seed for the campaign; CI pins it via the environment.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "20260806"))

#: Trial count — the acceptance bar is >= 200 seeded trials.
CHAOS_TRIALS = int(os.environ.get("REPRO_WORKER_CHAOS_TRIALS", "200"))

#: Whole-campaign hang cap (seconds); the observed campaign runtime is
#: single-digit seconds, so this only fires on a genuine hang.
WATCHDOG_S = 300


@pytest.fixture(autouse=True)
def watchdog():
    """Convert a hang into a loud failure (POSIX main thread only)."""
    if sys.platform == "win32":  # pragma: no cover
        yield
        return

    def on_alarm(signum, frame):  # pragma: no cover - only fires on a hang
        raise AssertionError(
            f"worker chaos watchdog: exceeded {WATCHDOG_S}s — the "
            "supervised runtime hung instead of recovering"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(WATCHDOG_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


class TestWorkerChaosCampaign:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("worker-chaos")
        return run_worker_campaign(CHAOS_TRIALS, CHAOS_SEED, str(base))

    def test_no_invalid_outcomes(self, campaign):
        invalid = [t for t in campaign if t.outcome != "ok"]
        assert not invalid, (
            f"{len(invalid)}/{len(campaign)} trials violated the "
            f"fault-tolerance contract; first: "
            f"{invalid[0].scenario}: {invalid[0].detail}"
        )

    def test_campaign_size_meets_bar(self, campaign):
        assert len(campaign) >= 200 or CHAOS_TRIALS < 200

    def test_every_scenario_fired(self, campaign):
        fired = Counter(t.scenario for t in campaign)
        missing = [
            name for name, _ in WORKER_SCENARIOS if not fired.get(name)
        ]
        assert not missing, (
            f"scenarios never exercised: {missing} ({dict(fired)})"
        )

    def test_faults_actually_perturbed_the_runtime(self, campaign):
        # The supervision machinery must have actually engaged: the
        # campaign saw retries, quarantines, hard kills and rebuilds.
        totals = Counter()
        for trial in campaign:
            totals.update(trial.counters)
        for counter in ("retries", "quarantined", "hard_kills",
                        "pool_rebuilds", "worker_crashes"):
            assert totals[counter] > 0, (
                f"{counter} never incremented across the campaign: "
                f"{dict(totals)}"
            )

    def test_no_orphan_worker_processes(self, campaign):
        # Every pool (including hard-killed and rebuilt ones) must have
        # been reaped; a lingering child is a leak the supervisor made.
        orphans = multiprocessing.active_children()
        assert not orphans, f"worker processes leaked: {orphans}"

    def test_quarantine_report_for_ci(self, campaign, tmp_path):
        """Emit the campaign report CI uploads as an artifact."""
        report_path = os.environ.get(
            "REPRO_CHAOS_REPORT", str(tmp_path / "worker_chaos_report.json")
        )
        report = {
            "seed": CHAOS_SEED,
            "trials": len(campaign),
            "scenarios": dict(Counter(t.scenario for t in campaign)),
            "invalid": [
                {"scenario": t.scenario, "detail": t.detail}
                for t in campaign if t.outcome != "ok"
            ],
            "quarantined": sorted(
                {key for t in campaign for key in t.quarantined_keys}
            ),
            "counters": dict(sum(
                (Counter(t.counters) for t in campaign), Counter()
            )),
        }
        directory = os.path.dirname(report_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        with open(report_path, encoding="utf-8") as handle:
            assert json.load(handle)["trials"] == len(campaign)


class TestWorkerChaosDeterminism:
    def test_same_seed_same_outcomes(self, tmp_path):
        first = run_worker_campaign(20, CHAOS_SEED, str(tmp_path / "a"))
        second = run_worker_campaign(20, CHAOS_SEED, str(tmp_path / "b"))
        assert [(t.scenario, t.outcome) for t in first] == [
            (t.scenario, t.outcome) for t in second
        ]

    def test_single_trial_reproducible(self, tmp_path):
        a = run_worker_trial(CHAOS_SEED + 7, str(tmp_path / "a"))
        b = run_worker_trial(CHAOS_SEED + 7, str(tmp_path / "b"))
        assert (a.scenario, a.outcome) == (b.scenario, b.outcome)
