"""Unit tests for the paper's explicit bound arithmetic."""

import pytest

from repro.core import (
    bound_summary,
    lemma_3_4_bound,
    lemma_4_2_bound,
    lemma_4_2_path_length,
    lemma_4_2_petals,
    lemma_5_2_bound,
    theorem_5_3_bound,
)
from repro.core.bounds import lemma_5_2_b, theorem_5_3_c
from repro.exceptions import BudgetExceededError, ValidationError


class TestLemma34:
    def test_formula(self):
        assert lemma_3_4_bound(2, 3, 5) == 5 * 8
        assert lemma_3_4_bound(3, 2, 4) == 4 * 9

    def test_degenerate(self):
        assert lemma_3_4_bound(2, 0, 7) == 7
        assert lemma_3_4_bound(0, 3, 7) == 0

    def test_invalid(self):
        with pytest.raises(ValidationError):
            lemma_3_4_bound(-1, 2, 3)


class TestLemma42:
    def test_petals(self):
        # p = (m-1)(2d+1) + 1
        assert lemma_4_2_petals(2, 3) == 11
        assert lemma_4_2_petals(0, 4) == 4

    def test_path_length(self):
        # M = k! (p-1)^k with k=2, d=0, m=2 -> p=2, M = 2
        assert lemma_4_2_path_length(2, 0, 2) == 2

    def test_bound_small(self):
        # k=1, d=0, m=2: p=2, M=1, N = 1 * 1^1 = 1
        assert lemma_4_2_bound(1, 0, 2) == 1

    def test_bound_m1_is_k(self):
        assert lemma_4_2_bound(3, 2, 1) == 3

    def test_digit_cap(self):
        with pytest.raises(BudgetExceededError):
            lemma_4_2_bound(3, 3, 5, digit_cap=10)

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            lemma_4_2_bound(0, 1, 1)

    def test_monotone_in_m(self):
        values = [lemma_4_2_bound(2, 1, m, digit_cap=None) for m in (2, 3)]
        assert values[0] < values[1]


class TestRamseyBasedBounds:
    def test_lemma_5_2_trivial_k(self):
        assert lemma_5_2_bound(2, 7) == 7

    def test_lemma_5_2_b_requires_k3(self):
        with pytest.raises(ValidationError):
            lemma_5_2_b(2, 5)

    def test_lemma_5_2_b_trivial_case(self):
        # m = (k-2)n + k-2 = 2 < k = 3: the Ramsey bound degenerates
        assert lemma_5_2_b(3, 1) == 2

    def test_lemma_5_2_b_is_huge(self):
        # r(4, 3, 7) would need ~10^900 digits: the guard refuses to
        # materialize it rather than exhausting memory
        with pytest.raises(BudgetExceededError):
            lemma_5_2_b(3, 5)

    def test_graph_ramsey_level_computes(self):
        from repro.graphtheory import ramsey_bound

        value = ramsey_bound(2, 2, 5)   # one Ramsey level: fine
        assert value > 10 ** 3

    def test_lemma_5_2_iteration_cap(self):
        with pytest.raises(BudgetExceededError):
            lemma_5_2_bound(10, 3, iteration_cap=2)

    def test_theorem_5_3_d0(self):
        assert theorem_5_3_bound(4, 0, 9) == 9

    def test_theorem_5_3_cap(self):
        with pytest.raises(BudgetExceededError):
            theorem_5_3_bound(3, 5, 2, iteration_cap=1)

    def test_c_of_small(self):
        # c(n) = r(2, 2, n) for k <= 2
        value = theorem_5_3_c(2, 1)
        assert value >= 1


class TestSummary:
    def test_summary_keys(self):
        summary = bound_summary(2, 1, 3)
        assert set(summary) >= {"lemma_3_4", "lemma_4_2_petals",
                                "lemma_4_2_path"}

    def test_huge_values_described(self):
        summary = bound_summary(3, 2, 4)
        assert "lemma_4_2" in summary
