"""Unit tests for boundedness certificates (Theorem 7.5 / experiment E8)."""

import pytest

from repro.datalog import (
    bounded_recursive_program,
    bounded_two_step_program,
    certificate_defines_query,
    find_boundedness_certificate,
    is_bounded_up_to,
    parse_program,
    rounds_to_fixpoint,
    transitive_closure_program,
    unboundedness_evidence,
)
from repro.structures import (
    GRAPH_VOCABULARY,
    directed_cycle,
    directed_path,
    random_directed_graph,
)


class TestBoundedPrograms:
    def test_two_step_certificate(self):
        cert = find_boundedness_certificate(bounded_two_step_program(), "R")
        assert cert is not None
        assert cert.stage == 1
        assert len(cert.query) == 2

    def test_recursive_but_bounded(self):
        cert = find_boundedness_certificate(bounded_recursive_program(), "P")
        assert cert is not None
        assert cert.stage <= 2

    def test_certificate_defines_query(self):
        program = bounded_recursive_program()
        cert = find_boundedness_certificate(program, "P")
        samples = [random_directed_graph(4, 0.4, s) for s in range(6)]
        samples += [directed_cycle(3), directed_path(4)]
        assert certificate_defines_query(cert, program, samples)

    def test_redundant_recursion_detected(self):
        # recursive rule subsumed by the base rule
        program = parse_program(
            """
            Q(x, y) <- E(x, y).
            Q(x, y) <- Q(x, y), E(x, y).
            """,
            GRAPH_VOCABULARY,
        )
        cert = find_boundedness_certificate(program, "Q")
        assert cert is not None and cert.stage <= 2

    def test_is_bounded_up_to(self):
        assert is_bounded_up_to(bounded_two_step_program(), "R")
        assert not is_bounded_up_to(transitive_closure_program(), "T",
                                    max_stage=4)


class TestUnboundedPrograms:
    def test_tc_has_no_small_certificate(self):
        cert = find_boundedness_certificate(
            transitive_closure_program(), "T", max_stage=4
        )
        assert cert is None

    def test_unboundedness_evidence_grows(self):
        rounds = unboundedness_evidence(
            transitive_closure_program(), directed_path, [2, 4, 6, 8]
        )
        assert rounds == sorted(rounds)
        assert rounds[-1] > rounds[0]

    def test_rounds_on_path(self):
        assert rounds_to_fixpoint(
            transitive_closure_program(), directed_path(7)
        ) == 6
