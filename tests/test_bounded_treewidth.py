"""Unit tests for the Lemma 4.2 construction (bounded treewidth)."""

import pytest

from repro.core import lemma_4_2_sweep, lemma_4_2_witness
from repro.exceptions import ValidationError
from repro.graphtheory import (
    binary_tree,
    caterpillar,
    cycle_graph,
    is_scattered,
    k_tree,
    path_graph,
    random_tree,
    spider_graph,
    star_graph,
    treewidth_decomposition,
)


class TestWitnessValidity:
    @pytest.mark.parametrize("graph,k,d,m", [
        (star_graph(25), 2, 2, 6),
        (path_graph(50), 2, 2, 5),
        (binary_tree(4), 2, 1, 4),
        (random_tree(40, seed=1), 2, 1, 5),
        (cycle_graph(30), 3, 1, 4),
        (caterpillar(10, 3), 2, 1, 5),
        (spider_graph(8, 2), 2, 1, 6),
        (k_tree(2, 25, seed=2), 3, 1, 3),
    ])
    def test_witness_found_and_valid(self, graph, k, d, m):
        witness = lemma_4_2_witness(graph, k, d, m)
        assert witness is not None
        assert len(witness.removed) <= k
        reduced = graph.remove_vertices(witness.removed)
        assert is_scattered(reduced, list(witness.scattered), d)
        assert len(witness.scattered) >= m

    def test_star_uses_case1(self):
        witness = lemma_4_2_witness(star_graph(30), 2, 2, 8,
                                    allow_search_fallback=False)
        assert witness is not None
        assert witness.method == "case1"

    def test_width_checked(self):
        # cycle has treewidth 2, so k must be at least 3
        with pytest.raises(ValidationError):
            lemma_4_2_witness(cycle_graph(10), 2, 1, 2)

    def test_explicit_decomposition_accepted(self):
        g = path_graph(30)
        td = treewidth_decomposition(g)
        witness = lemma_4_2_witness(g, 2, 1, 4, decomposition=td)
        assert witness is not None

    def test_proof_cases_without_fallback(self):
        """The construction (not the search) handles classic instances."""
        star = star_graph(40)
        witness = lemma_4_2_witness(star, 2, 1, 10,
                                    allow_search_fallback=False)
        assert witness is not None and witness.method in ("case1", "case2")

    def test_impossible_instance_returns_none(self):
        # tiny path cannot produce 5 scattered vertices
        assert lemma_4_2_witness(path_graph(3), 2, 2, 5) is None


class TestSweep:
    def test_tree_family(self):
        graphs = [random_tree(n, seed=n) for n in (15, 25, 35)]
        rows = lemma_4_2_sweep(graphs, 2, 1, 4)
        assert all(row["found"] for row in rows)
        assert all(row["removed"] <= 2 for row in rows)

    def test_methods_recorded(self):
        rows = lemma_4_2_sweep([star_graph(30)], 2, 2, 6)
        assert rows[0]["method"] in ("case1", "case2", "search")
