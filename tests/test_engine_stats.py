"""Engine instrumentation and memo-cache behavior.

Includes the cache short-circuit regression test: the second identical
``exists_homomorphism`` query must perform *zero* backtracks (proved by
the solver counters, not by timing).
"""

import json

import pytest

from repro.engine import HomCache, HomEngine, get_engine, reset_engine, set_engine
from repro.engine.cache import MISS
from repro.homomorphism import is_homomorphism
from repro.structures import (
    directed_cycle,
    directed_path,
    undirected_cycle,
    undirected_path,
)


@pytest.fixture
def engine():
    return HomEngine()


class TestCacheShortCircuit:
    def test_second_identical_call_does_zero_backtracks(self, engine):
        # odd cycle -> K2 is the classic hard negative: the first solve
        # must backtrack, the cached second call must not search at all.
        source, target = undirected_cycle(7), undirected_path(2)
        assert engine.exists_homomorphism(source, target) is False
        after_first = engine.stats.backtracks
        nodes_after_first = engine.stats.nodes
        assert after_first > 0
        assert engine.exists_homomorphism(source, target) is False
        assert engine.stats.backtracks == after_first
        assert engine.stats.nodes == nodes_after_first
        assert engine.stats.cache_hits == 1
        assert engine.stats.solves == 1

    def test_positive_query_cached_witness_is_valid(self, engine):
        source, target = directed_path(4), directed_cycle(3)
        first = engine.find_homomorphism(source, target)
        cached = engine.find_homomorphism(source, target)
        assert engine.stats.cache_hits == 1
        assert cached == first
        assert is_homomorphism(source, target, cached)

    def test_cached_witness_is_a_defensive_copy(self, engine):
        source, target = directed_path(4), directed_cycle(3)
        witness = engine.find_homomorphism(source, target)
        witness.clear()  # caller mutates their copy
        again = engine.find_homomorphism(source, target)
        assert again and is_homomorphism(source, target, again)

    def test_no_cache_engine_always_solves(self):
        engine = HomEngine(cache_enabled=False)
        source, target = undirected_cycle(5), undirected_path(2)
        engine.exists_homomorphism(source, target)
        after_first = engine.stats.backtracks
        engine.exists_homomorphism(source, target)
        assert engine.stats.backtracks == 2 * after_first
        assert engine.stats.cache_hits == 0
        assert engine.stats.solves == 2

    def test_option_variants_do_not_collide(self, engine):
        c3 = directed_cycle(3)
        assert engine.find_homomorphism(c3, c3) is not None
        avoiding_all = engine.find_homomorphism(
            c3, c3, forbidden_images=frozenset(c3.universe)
        )
        assert avoiding_all is None
        injective = engine.find_homomorphism(c3, c3, injective=True)
        assert injective is not None
        pinned = engine.find_homomorphism(c3, c3, pinned={0: 1})
        assert pinned is not None and pinned[0] == 1


class TestCoreMemoization:
    def test_core_cached_by_fingerprint(self, engine):
        path = undirected_path(8)
        core = engine.core(path)
        assert core.size() == 2
        solves_after_first = engine.stats.solves
        assert engine.core(path).size() == 2
        assert engine.stats.solves == solves_after_first
        assert engine.stats.cache_hits >= 1

    def test_core_iterations_counted(self, engine):
        engine.core(undirected_path(6))
        assert engine.stats.core_iterations >= 1


class TestInvalidation:
    def test_invalidate_forces_resolve(self, engine):
        source, target = undirected_cycle(5), undirected_path(2)
        engine.exists_homomorphism(source, target)
        removed = engine.invalidate(source)
        assert removed == 1
        backtracks = engine.stats.backtracks
        engine.exists_homomorphism(source, target)
        assert engine.stats.backtracks > backtracks
        assert engine.cache.invalidations == 1

    def test_clear_cache(self, engine):
        engine.exists_homomorphism(directed_path(3), directed_cycle(3))
        assert len(engine.cache) == 1
        engine.clear_cache()
        assert len(engine.cache) == 0

    def test_lru_eviction(self):
        engine = HomEngine(cache_size=1)
        engine.exists_homomorphism(directed_path(2), directed_cycle(3))
        engine.exists_homomorphism(directed_path(3), directed_cycle(3))
        assert engine.cache.evictions == 1
        assert len(engine.cache) == 1


class TestCacheUnit:
    def test_equality_verified_buckets(self):
        cache = HomCache(maxsize=4)
        cache.put("key", ("a", "b"), 1)
        assert cache.get("key", ("a", "b")) == 1
        # same key, different witnesses: a fingerprint collision → miss
        assert cache.get("key", ("a", "c")) is MISS
        cache.put("key", ("a", "c"), 2)
        assert cache.get("key", ("a", "b")) == 1
        assert cache.get("key", ("a", "c")) == 2
        assert len(cache) == 2

    def test_zero_size_cache_stores_nothing(self):
        cache = HomCache(maxsize=0)
        cache.put("key", ("a",), 1)
        assert cache.get("key", ("a",)) is MISS


class TestSnapshotAndGlobalEngine:
    def test_snapshot_is_json_serializable(self, engine):
        engine.exists_homomorphism(directed_path(3), directed_cycle(3))
        snap = json.loads(json.dumps(engine.snapshot()))
        assert snap["cache_enabled"] is True
        for field in ("calls", "backtracks", "nodes", "ac3_prunings",
                      "cache_hits", "cache_misses", "hit_rate",
                      "solve_time_s"):
            assert field in snap["solver"]
        for field in ("hits", "misses", "hit_rate", "entries", "maxsize"):
            assert field in snap["cache"]

    def test_reset_stats(self, engine):
        engine.exists_homomorphism(directed_path(3), directed_cycle(3))
        engine.reset_stats()
        assert engine.stats.calls == 0
        assert engine.cache.snapshot()["hits"] == 0

    def test_reset_stats_zeroes_compiled_cache_counters(self, engine):
        # regression: the compiled-target LRU's hit/miss counters must
        # reset with the rest of the stats (and with the governor), not
        # leak across `repro stats --reset` baselines
        engine.exists_homomorphism(directed_path(3), directed_cycle(3))
        engine.exists_homomorphism(directed_path(4), directed_cycle(3))
        compiled = engine.compiled_targets.snapshot()
        assert compiled["hits"] + compiled["misses"] > 0
        entries_before = compiled["entries"]
        engine.reset_stats()
        compiled = engine.compiled_targets.snapshot()
        assert compiled["hits"] == 0 and compiled["misses"] == 0
        # the compiled targets themselves stay warm — only counters reset
        assert compiled["entries"] == entries_before
        assert engine.stats.kernel_compilations == 0
        assert engine.stats.kernel_compile_hits == 0
        from repro.engine.instrumentation import GOVERNOR

        assert GOVERNOR.snapshot()["unknown_verdicts"] == 0

    def test_reset_stats_zeroes_v2_counters(self, engine):
        import repro.structures as st

        engine.solve_batch(
            [st.directed_path(2), st.directed_path(3)], directed_cycle(3)
        )
        engine.exists_homomorphism(
            st.undirected_cycle(16), st.undirected_path(2)
        )
        assert engine.stats.batch_calls == 1
        assert engine.stats.batch_queries == 2
        assert engine.stats.dp_solves == 1
        engine.reset_stats()
        snap = engine.stats.snapshot()
        for field in ("batch_calls", "batch_queries", "batch_dedup_hits",
                      "dp_solves", "dp_bags", "dp_entries"):
            assert snap[field] == 0

    def test_set_and_reset_global_engine(self):
        original = get_engine()
        try:
            mine = set_engine(HomEngine(cache_size=7))
            assert get_engine() is mine
            fresh = reset_engine()
            assert get_engine() is fresh is not mine
        finally:
            set_engine(original)
