"""Chaos campaign: seeded fault injection against every public decider.

Drives the harness in :mod:`tests.chaos` for hundreds of reproducible
trials and asserts the governor's core robustness contract:

* no trial ever produces an *invalid* outcome — every operation either
  completes correctly, reports an honest UNKNOWN, or raises a typed
  :class:`~repro.exceptions.ReproError`;
* every fault kind (deadline, budget, cancel, evict) actually fired
  during the campaign — the harness is exercising all its seams;
* after the injection storm, the shared engine's memo cache still
  agrees with the brute-force oracle on every pool pair — a fault that
  interrupts a solve must never leave a corrupted cached answer behind.

A ``signal.alarm``-based watchdog caps the whole campaign: a hang is a
contract violation this suite must convert into a failure, not a stuck
CI job (the CI chaos job adds a coreutils ``timeout`` belt on top).
"""

import os
import signal
import sys

import pytest

from repro.engine import HomEngine
from repro.resources import governed

from .chaos import (
    FAULT_KINDS,
    FaultInjector,
    brute_force_has_homomorphism,
    run_campaign,
    run_trial,
    structure_pool,
)

#: Seed for the campaign; CI pins it via the environment for
#: reproducible runs (see .github/workflows/ci.yml).
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "20260806"))

#: Trial count — the acceptance bar is >= 200 seeded trials.
CHAOS_TRIALS = int(os.environ.get("REPRO_CHAOS_TRIALS", "240"))

#: Whole-campaign hang cap (seconds); generous next to the observed
#: sub-minute runtime, tight next to a real hang.
WATCHDOG_S = 300


@pytest.fixture(autouse=True)
def watchdog():
    """Convert a hang into a loud failure (POSIX main thread only)."""
    if sys.platform == "win32":  # pragma: no cover
        yield
        return

    def on_alarm(signum, frame):  # pragma: no cover - only fires on a hang
        raise AssertionError(
            f"chaos watchdog: test exceeded {WATCHDOG_S}s — a governed "
            "decider hung instead of tripping"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(WATCHDOG_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


class TestChaosCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_campaign(CHAOS_TRIALS, base_seed=CHAOS_SEED, rate=0.02)

    def test_no_invalid_outcomes(self, campaign):
        invalid = [t for t in campaign if t.outcome == "invalid"]
        assert not invalid, (
            f"{len(invalid)}/{len(campaign)} trials violated the contract; "
            f"first: {invalid[0].operation}: {invalid[0].detail}"
        )

    def test_campaign_size_meets_bar(self, campaign):
        assert len(campaign) >= 200

    def test_faults_actually_fired(self, campaign):
        fired = {kind: 0 for kind in FAULT_KINDS}
        for trial in campaign:
            for kind, count in trial.faults.items():
                fired[kind] += count
        missing = [kind for kind, count in fired.items() if count == 0]
        assert not missing, f"fault kinds never injected: {missing} ({fired})"

    def test_faults_produce_unknowns_and_typed_errors(self, campaign):
        # The storm must actually perturb outcomes, not just fire inertly.
        disrupted = [
            t for t in campaign if t.outcome in ("unknown", "typed_error")
        ]
        completed = [t for t in campaign if t.outcome == "ok"]
        assert disrupted, "no trial was ever disrupted — injector inert?"
        assert completed, "no trial ever completed — injection rate too hot?"

    def test_every_operation_was_covered(self, campaign):
        operations = {t.operation for t in campaign}
        assert operations == {"hom", "core", "treewidth", "datalog", "pebble"}


class TestCacheIntegrityAfterInjection:
    def test_differential_oracle_post_storm(self):
        """The memo cache never serves a corrupted answer after faults.

        Storm phase: hammer one engine with injected trips across the
        pool.  Verification phase: every pool pair, queried through the
        (warm, storm-survivor) cache, must agree with brute force.
        """
        engine = HomEngine()
        pool = structure_pool()
        for i in range(120):
            run_trial(CHAOS_SEED + 10_000 + i, engine, pool, rate=0.05)
        mismatches = []
        for source in pool:
            for target in pool:
                got = engine.exists_homomorphism(source, target)
                expected = brute_force_has_homomorphism(source, target)
                if got != expected:
                    mismatches.append((source, target, got, expected))
        assert not mismatches, (
            f"cache corrupted by injection: {len(mismatches)} disagreements "
            f"with the brute-force oracle; first: {mismatches[0]}"
        )

    def test_eviction_mid_campaign_keeps_witnesses_valid(self):
        from repro.homomorphism import is_homomorphism

        engine = HomEngine()
        pool = structure_pool()
        injector = FaultInjector(
            seed=CHAOS_SEED, rate=0.1, kinds=("evict",), engine=engine
        )
        checked = 0
        with governed(injector=injector):
            for source in pool:
                for target in pool:
                    verdict = engine.decide_homomorphism(source, target)
                    if verdict.is_true:
                        assert is_homomorphism(
                            source, target, verdict.witness
                        )
                        checked += 1
        assert checked > 0
        assert injector.fired["evict"] > 0


class TestInjectorDeterminism:
    def test_same_seed_same_outcomes(self):
        first = run_campaign(40, base_seed=CHAOS_SEED, rate=0.05)
        second = run_campaign(40, base_seed=CHAOS_SEED, rate=0.05)
        assert [(t.operation, t.outcome) for t in first] == [
            (t.operation, t.outcome) for t in second
        ]
