"""Unit tests for scattered sets and removal witnesses."""

import pytest

from repro.exceptions import ValidationError
from repro.graphtheory import (
    Graph,
    complete_graph,
    cycle_graph,
    find_removal_witness,
    find_scattered_set,
    greedy_scattered_set,
    grid_graph,
    is_scattered,
    max_scattered_set,
    path_graph,
    scattered_number,
    scattered_profile,
    spider_graph,
    star_graph,
    verify_removal_witness,
)


class TestPredicate:
    def test_far_apart_on_path(self):
        g = path_graph(10)
        assert is_scattered(g, [0, 5], 2)       # distance 5 > 4
        assert not is_scattered(g, [0, 4], 2)   # distance 4 <= 4
        assert is_scattered(g, [0, 4], 1)

    def test_zero_radius_means_distinct(self):
        g = complete_graph(4)
        assert is_scattered(g, [0, 1], 0)

    def test_duplicates_rejected(self):
        with pytest.raises(ValidationError):
            is_scattered(path_graph(3), [0, 0], 1)

    def test_unknown_vertex_rejected(self):
        with pytest.raises(ValidationError):
            is_scattered(path_graph(3), [99], 1)

    def test_empty_and_singleton(self):
        g = path_graph(3)
        assert is_scattered(g, [], 5)
        assert is_scattered(g, [1], 5)


class TestMaximisers:
    def test_greedy_is_scattered(self):
        g = grid_graph(4, 4)
        for d in (1, 2):
            chosen = greedy_scattered_set(g, d)
            assert is_scattered(g, chosen, d)

    def test_exact_on_path(self):
        # P_n, d=1: max 1-scattered = ceil(n / 3)
        assert scattered_number(path_graph(9), 1) == 3
        assert scattered_number(path_graph(10), 1) == 4

    def test_exact_beats_or_equals_greedy(self):
        for seed_graph in (grid_graph(3, 4), cycle_graph(11), spider_graph(3, 3)):
            exact = max_scattered_set(seed_graph, 1)
            greedy = greedy_scattered_set(seed_graph, 1)
            assert len(exact) >= len(greedy)
            assert is_scattered(seed_graph, exact, 1)

    def test_find_scattered_set(self):
        g = path_graph(15)
        found = find_scattered_set(g, 1, 4)
        assert found is not None and len(found) == 4
        assert is_scattered(g, found, 1)
        assert find_scattered_set(complete_graph(5), 1, 2) is None

    def test_star_has_no_big_scattered_set(self):
        # every pair is at distance <= 2 (the Section 4 example)
        assert scattered_number(star_graph(30), 1) == 1


class TestRemovalWitness:
    def test_star_needs_one_removal(self):
        g = star_graph(20)
        witness = find_removal_witness(g, 2, 5, 1)
        assert witness is not None
        removal, scattered = witness
        assert len(removal) <= 1
        assert verify_removal_witness(g, 2, 5, 1, witness)

    def test_no_removal_needed_on_long_path(self):
        g = path_graph(30)
        removal, scattered = find_removal_witness(g, 2, 4, 1)
        assert removal == frozenset()

    def test_impossible_witness_returns_none(self):
        g = complete_graph(6)
        assert find_removal_witness(g, 1, 3, 1) is None

    def test_spider_body_removal(self):
        g = spider_graph(6, 3)
        witness = find_removal_witness(g, 1, 6, 1)
        assert witness is not None
        assert verify_removal_witness(g, 1, 6, 1, witness)

    def test_verify_rejects_too_many_removals(self):
        g = star_graph(6)
        assert not verify_removal_witness(
            g, 1, 2, 0, (frozenset({0}), (1, 2))
        )

    def test_verify_rejects_non_scattered(self):
        g = path_graph(5)
        assert not verify_removal_witness(
            g, 2, 2, 1, (frozenset(), (0, 1))
        )

    def test_profile(self):
        g = path_graph(20)
        profile = scattered_profile(g, [0, 1, 2])
        assert profile[0] == 20
        assert profile[0] >= profile[1] >= profile[2]
