"""Functional tests for the hom-decision server.

A real :class:`~repro.serve.ServerThread` on a loopback socket, real
clients — asserting the serve contract end to end:

* verdicts over the wire agree with direct engine calls (differential);
* kernel faults trip the breaker and are *re-answered* on the
  reference solver — the client never sees the fault;
* warm sessions are shared across connections and survive edits;
* malformed frames get structured errors on a still-live connection,
  oversized frames get a structured error and a close;
* overload sheds with ``overloaded`` responses — every frame sent is
  answered exactly once;
* graceful drain answers in-flight work (UNKNOWN at worst) and queued
  work (``overloaded: server draining``), then the thread exits;
* the retrying client survives shedding and reconnects.
"""

import json
import signal
import socket
import sys
import threading
import time

import pytest

from repro.engine import HomEngine
from repro.engine.instrumentation import SERVE
from repro.exceptions import (
    ServeConnectionError,
    ServeOverloadedError,
    ServeProtocolError,
)
from repro.parallel import RetryPolicy
from repro.resources import current_context
from repro.serve import (
    ServeClient,
    ServerThread,
    containment_query,
    core_query,
    decode_witness,
    encode_frame,
    equivalence_query,
    health_check,
    hom_query,
    treewidth_query,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.service import DecisionService
from repro.structures import (
    Structure,
    directed_cycle,
    directed_path,
    random_directed_graph,
)

WATCHDOG_S = 120


@pytest.fixture(autouse=True)
def watchdog():
    """No serve test may hang: that is the contract under test."""
    if sys.platform == "win32":  # pragma: no cover
        yield
        return

    def on_alarm(signum, frame):  # pragma: no cover - only on a hang
        raise AssertionError(
            f"serve watchdog: test exceeded {WATCHDOG_S}s — the server "
            "hung instead of answering"
        )

    old = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(WATCHDOG_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


@pytest.fixture
def server():
    st = ServerThread(idle_timeout_s=10.0)
    host, port = st.start()
    yield st, host, port
    st.stop()


def fresh_engine_server(**kwargs):
    """A server on its own engine (isolated caches/counters)."""
    service = DecisionService(engine=HomEngine(), **kwargs)
    return ServerThread(service=service, idle_timeout_s=10.0)


# ----------------------------------------------------------------------
# Differential: the wire answers match the engine's answers
# ----------------------------------------------------------------------
class TestDifferential:
    def test_hom_verdicts_match_direct_engine(self, server):
        _, host, port = server
        engine = HomEngine()  # independent oracle engine
        pool = (
            [directed_cycle(n) for n in (2, 3, 4, 6)]
            + [directed_path(n) for n in (2, 3, 5)]
            + [random_directed_graph(5, 0.3, seed=s) for s in (1, 2)]
        )
        client = ServeClient(host, port)
        checked = 0
        for a in pool:
            for b in pool:
                expected = engine.decide_homomorphism(a, b)
                entry = client.decide(hom_query(a, b))
                assert entry["status"] == "ok"
                assert entry["verdict"]["value"] == expected.value.value
                if entry["verdict"]["value"] == "TRUE":
                    witness = decode_witness(entry["verdict"]["witness"])
                    assert all(witness[s] is not None for s in a.universe)
                checked += 1
        assert checked == len(pool) ** 2
        client.close()

    def test_containment_matches_chandra_merlin(self, server):
        _, host, port = server
        engine = HomEngine()
        client = ServeClient(host, port)
        pairs = [
            (directed_path(3), directed_path(2)),
            (directed_path(2), directed_path(3)),
            (directed_cycle(3), directed_cycle(6)),
            (directed_cycle(6), directed_cycle(3)),
        ]
        for q1, q2 in pairs:
            entry = client.decide(containment_query(q1, q2))
            expected = engine.decide_homomorphism(q2, q1)
            assert entry["verdict"]["value"] == expected.value.value
        client.close()

    def test_equivalence(self, server):
        _, host, port = server
        client = ServeClient(host, port)
        c3, c6 = directed_cycle(3), directed_cycle(6)
        assert (
            client.decide(equivalence_query(c3, c3))["verdict"]["value"]
            == "TRUE"
        )
        # C6 -> C3 exists, C3 -> C6 does not: inequivalent.
        assert (
            client.decide(equivalence_query(c3, c6))["verdict"]["value"]
            == "FALSE"
        )
        client.close()

    def test_core_and_treewidth(self, server):
        _, host, port = server
        client = ServeClient(host, port)
        c6 = directed_cycle(6)
        entry = client.decide(core_query(c6))
        # The core of an even directed cycle is a 2-cycle... no: C6's
        # core is C2?  For *directed* cycles the core of C6 is C2 only
        # if a hom C6 -> C2 exists (it does: 6 is even under the
        # directed-cycle divisibility rule gcd-style).  Assert against
        # the engine instead of hand-derived folklore.
        core = HomEngine().core(c6)
        assert entry["verdict"]["witness"]["size"] == core.size()
        tw = client.decide(treewidth_query(c6, exact=True))
        assert tw["verdict"]["witness"]["width"] == 2
        client.close()

    def test_batch_results_are_ordered(self, server):
        _, host, port = server
        client = ServeClient(host, port)
        p3, c3 = directed_path(3), directed_cycle(3)
        results = client.batch([
            hom_query(p3, c3),
            core_query(c3),
            treewidth_query(p3),
        ])
        assert [e["op"] for e in results] == ["hom", "core", "treewidth"]
        assert all(e["status"] == "ok" for e in results)
        client.close()


# ----------------------------------------------------------------------
# Circuit breaker: kernel faults are absorbed, not served
# ----------------------------------------------------------------------
class TestBreakerFallback:
    def test_kernel_fault_is_reanswered_on_fallback(self):
        # Exactly failure_threshold faults: the breaker trips, and the
        # first half-open probe meets a recovered kernel.
        faults = {"remaining": 3}

        def injector(op):
            if faults["remaining"] > 0:
                faults["remaining"] -= 1
                raise RuntimeError("synthetic kernel fault")

        st = fresh_engine_server(
            breaker=CircuitBreaker(failure_threshold=3, cooldown_s=0.05),
            kernel_fault_injector=injector,
        )
        host, port = st.start()
        try:
            client = ServeClient(host, port)
            c3, c6 = directed_cycle(3), directed_cycle(6)
            # Every answer is correct even while the kernel "faults".
            for _ in range(8):
                entry = client.decide(hom_query(c6, c3))
                assert entry["verdict"]["value"] == "TRUE"
            stats = client.stats()
            assert stats["service"]["breaker"]["trips"] >= 1
            serve = stats["serve"]
            assert serve["breaker_fallback_solves"] >= 3
            # Cooldown elapsed under repeated requests: the breaker
            # probed and recovered to CLOSED.
            time.sleep(0.1)
            entry = client.decide(hom_query(c3, c6))
            assert entry["verdict"]["value"] == "FALSE"
            assert client.stats()["service"]["breaker"]["state"] in (
                "CLOSED", "HALF_OPEN",
            )
            client.close()
        finally:
            st.stop()

    def test_validation_errors_are_not_faults(self):
        service = DecisionService(engine=HomEngine())
        entry = service.execute({"op": "hom", "source": {"bad": 1}})
        assert entry["status"] == "error"
        assert service.breaker.consecutive_faults == 0


# ----------------------------------------------------------------------
# Warm sessions shared across connections
# ----------------------------------------------------------------------
class TestSessions:
    def test_session_shared_and_editable_across_connections(self):
        st = fresh_engine_server()
        host, port = st.start()
        try:
            c3, p3 = directed_cycle(3), directed_path(3)
            with ServeClient(host, port) as c1:
                entry = c1.decide(hom_query(c3, p3, session="shared"))
                assert entry["session_created"] is True
                assert entry["verdict"]["value"] == "FALSE"
            with ServeClient(host, port) as c2:
                # Another connection reuses the same warm session.
                entry = c2.decide(hom_query(c3, p3, session="shared"))
                assert entry["session_created"] is False
                # Break the cycle: now a hom into the path exists.
                entry = c2.edit_session(
                    "shared", "source",
                    {"remove_facts": [["E", [2, 0]]]},
                )
                assert entry["verdict"]["value"] == "TRUE"
        finally:
            st.stop()

    def test_edit_unknown_session_is_structured(self):
        # A bad query inside an accepted request is a per-query error
        # *entry* (the frame itself is fine), not a frame-level error.
        st = fresh_engine_server()
        host, port = st.start()
        try:
            with ServeClient(host, port) as client:
                entry = client.edit_session("ghost", "source", {})
                assert entry["status"] == "error"
                assert entry["code"] == "unknown-session"
        finally:
            st.stop()


# ----------------------------------------------------------------------
# Hostile input on a live socket
# ----------------------------------------------------------------------
class TestHostileFrames:
    def test_malformed_then_valid_on_same_connection(self, server):
        _, host, port = server
        sock = socket.create_connection((host, port), timeout=10)
        rfile = sock.makefile("rb")
        sock.sendall(b"}{ not json\n")
        first = json.loads(rfile.readline())
        assert first["status"] == "error" and first["code"] == "bad-frame"
        # The connection survives malformed frames.
        sock.sendall(encode_frame({"op": "ping", "id": 1}))
        second = json.loads(rfile.readline())
        assert second["status"] == "ok" and second["id"] == 1
        sock.close()

    def test_oversized_frame_errors_and_closes(self, server):
        _, host, port = server
        sock = socket.create_connection((host, port), timeout=10)
        rfile = sock.makefile("rb")
        sock.sendall(b"x" * (2 << 20) + b"\n")
        reply = rfile.readline()
        assert json.loads(reply)["code"] == "frame-too-large"
        assert rfile.readline() == b""  # server closed the stream
        sock.close()

    def test_oversized_batch_is_rejected_before_compute(self, server):
        _, host, port = server
        c3 = directed_cycle(3)
        queries = [hom_query(c3, c3)] * 65
        with ServeClient(host, port) as client:
            with pytest.raises(ServeProtocolError) as exc:
                client.batch(queries)
            assert exc.value.code == "batch-too-large"

    def test_truncated_frame_then_disconnect_leaves_server_alive(
        self, server
    ):
        _, host, port = server
        sock = socket.create_connection((host, port), timeout=10)
        sock.sendall(b'{"op": "hom", "source"')  # no newline, vanish
        sock.close()
        with ServeClient(host, port) as client:
            assert client.ping()["ready"] is True


# ----------------------------------------------------------------------
# Overload and shedding
# ----------------------------------------------------------------------
def slow_checkpointing_injector(duration_s):
    """A kernel 'fault injector' that just burns governed time: it
    loops on the ambient checkpoint so deadlines/cancels still work."""

    def injector(op):
        ctx = current_context()
        t0 = time.monotonic()
        while time.monotonic() - t0 < duration_s:
            ctx.checkpoint("test.slow-serve")
            time.sleep(0.005)

    return injector


class TestOverload:
    def test_every_pipelined_frame_is_answered_exactly_once(self):
        from repro.serve.admission import AdmissionController

        st = ServerThread(
            service=DecisionService(
                engine=HomEngine(),
                kernel_fault_injector=slow_checkpointing_injector(0.3),
            ),
            admission=AdmissionController(queue_limit=1),
            idle_timeout_s=10.0,
        )
        host, port = st.start()
        try:
            c3 = directed_cycle(3)
            frames = b"".join(
                encode_frame({**hom_query(c3, c3), "id": i,
                              "deadline_s": 30.0})
                for i in range(6)
            )
            sock = socket.create_connection((host, port), timeout=30)
            sock.sendall(frames)
            rfile = sock.makefile("rb")
            responses = [json.loads(rfile.readline()) for _ in range(6)]
            sock.close()
            ids = sorted(r["id"] for r in responses)
            assert ids == list(range(6))  # exactly one answer each
            by_status = {}
            for r in responses:
                by_status.setdefault(r["status"], []).append(r["id"])
            assert len(by_status.get("ok", [])) >= 1
            assert len(by_status.get("overloaded", [])) >= 1
        finally:
            st.stop()

    def test_ping_stays_responsive_under_load(self):
        st = ServerThread(
            service=DecisionService(
                engine=HomEngine(),
                kernel_fault_injector=slow_checkpointing_injector(0.5),
            ),
            idle_timeout_s=10.0,
        )
        host, port = st.start()
        try:
            c3 = directed_cycle(3)
            busy = socket.create_connection((host, port), timeout=30)
            busy.sendall(encode_frame(hom_query(c3, c3)))
            t0 = time.monotonic()
            with ServeClient(host, port) as probe:
                assert probe.ping()["ready"] is True
            assert time.monotonic() - t0 < 0.4  # not behind the queue
            busy.makefile("rb").readline()  # collect the slow answer
            busy.close()
        finally:
            st.stop()


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_cancels_in_flight_to_unknown(self):
        st = ServerThread(
            service=DecisionService(
                engine=HomEngine(),
                kernel_fault_injector=slow_checkpointing_injector(30.0),
            ),
            idle_timeout_s=10.0,
            drain_grace_s=0.1,
        )
        host, port = st.start()
        c3 = directed_cycle(3)
        sock = socket.create_connection((host, port), timeout=60)
        sock.sendall(encode_frame({**hom_query(c3, c3), "id": "inflight"}))
        time.sleep(0.2)  # let it enter the compute lane
        t0 = time.monotonic()
        st.stop()  # graceful drain, must not wait the full 30s
        elapsed = time.monotonic() - t0
        assert elapsed < 10.0
        reply = json.loads(sock.makefile("rb").readline())
        sock.close()
        assert reply["id"] == "inflight"
        assert reply["status"] == "ok"
        assert reply["results"][0]["verdict"]["value"] == "UNKNOWN"
        assert "cancel" in reply["results"][0]["verdict"]["reason"].lower()

    def test_requests_after_drain_get_draining_response(self):
        st = fresh_engine_server()
        host, port = st.start()
        sock = socket.create_connection((host, port), timeout=30)
        rfile = sock.makefile("rb")
        st.drain()
        time.sleep(0.2)
        c3 = directed_cycle(3)
        try:
            sock.sendall(encode_frame(hom_query(c3, c3)))
            reply = rfile.readline()
        except OSError:
            reply = b""
        # Either the listener already closed our connection (fine) or
        # we got an explicit draining soft-failure.
        if reply:
            assert json.loads(reply)["status"] == "overloaded"
        sock.close()
        st.stop()

    def test_double_drain_is_idempotent(self):
        st = fresh_engine_server()
        st.start()
        st.drain()
        st.drain()
        st.stop()


# ----------------------------------------------------------------------
# Client retries
# ----------------------------------------------------------------------
class _ScriptedServer(threading.Thread):
    """A minimal scripted peer: per accepted connection, optionally
    drop it; otherwise answer each frame from a canned list."""

    def __init__(self, script):
        super().__init__(daemon=True)
        self.script = list(script)
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.sock.settimeout(30)

    def run(self):
        while self.script:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            action = self.script.pop(0)
            if action == "drop":
                conn.close()
                continue
            rfile = conn.makefile("rb")
            while action:
                if not rfile.readline():
                    break
                conn.sendall(encode_frame(action.pop(0)))
            conn.close()
        self.sock.close()


class TestClientRetries:
    def test_retries_through_overload_to_success(self):
        script = [[
            {"id": 1, "status": "overloaded", "reason": "busy"},
            {"id": 1, "status": "overloaded", "reason": "busy"},
            {"id": 1, "status": "ok", "results": [{"op": "ping"}],
             "elapsed_ms": 0.0},
        ]]
        peer = _ScriptedServer(script)
        peer.start()
        sleeps = []
        client = ServeClient(
            "127.0.0.1", peer.port,
            retry_policy=RetryPolicy(
                max_attempts=4, base_delay=0.01, max_delay=0.05,
                retryable=frozenset({"ServeOverloadedError",
                                     "ServeConnectionError"}),
            ),
            sleep=sleeps.append,
        )
        response = client.request({"op": "ping", "id": 1})
        assert response["status"] == "ok"
        assert len(sleeps) == 2          # backed off twice
        assert sleeps[1] > sleeps[0]     # exponential
        client.close()

    def test_gives_up_with_overloaded_error(self):
        script = [[{"id": 1, "status": "overloaded", "reason": "full"}] * 9]
        peer = _ScriptedServer(script)
        peer.start()
        client = ServeClient(
            "127.0.0.1", peer.port,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.0, jitter=0.0,
                retryable=frozenset({"ServeOverloadedError"}),
            ),
            sleep=lambda s: None,
        )
        with pytest.raises(ServeOverloadedError) as exc:
            client.request({"op": "ping", "id": 1})
        assert exc.value.reason == "full"
        client.close()

    def test_reconnects_after_dropped_connection(self):
        script = [
            "drop",
            [{"id": 1, "status": "ok", "results": [{"op": "ping"}],
              "elapsed_ms": 0.0}],
        ]
        peer = _ScriptedServer(script)
        peer.start()
        client = ServeClient(
            "127.0.0.1", peer.port,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay=0.01,
                retryable=frozenset({"ServeConnectionError"}),
            ),
            sleep=lambda s: None,
        )
        assert client.request({"op": "ping", "id": 1})["status"] == "ok"
        client.close()

    def test_connection_error_when_nobody_listens(self):
        client = ServeClient(
            "127.0.0.1", 1,  # reserved port, nothing listens
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.0, jitter=0.0,
                retryable=frozenset({"ServeConnectionError"}),
            ),
            sleep=lambda s: None,
        )
        with pytest.raises(ServeConnectionError):
            client.request({"op": "ping"})

    def test_protocol_errors_do_not_retry(self):
        script = [[
            {"id": 1, "status": "error", "code": "unknown-op",
             "detail": "nope"},
        ]]
        peer = _ScriptedServer(script)
        peer.start()
        calls = []
        client = ServeClient(
            "127.0.0.1", peer.port, sleep=calls.append
        )
        with pytest.raises(ServeProtocolError) as exc:
            client.request({"op": "ping", "id": 1})
        assert exc.value.code == "unknown-op"
        assert calls == []  # no backoff, no retry
        client.close()


# ----------------------------------------------------------------------
# Stats wiring and health checks
# ----------------------------------------------------------------------
class TestStatsAndHealth:
    def test_serve_counters_reach_engine_snapshot(self):
        engine = HomEngine()
        engine.reset_stats()  # zeroes the process-global SERVE family
        st = ServerThread(
            service=DecisionService(engine=engine), idle_timeout_s=10.0
        )
        host, port = st.start()
        try:
            c3 = directed_cycle(3)
            with ServeClient(host, port) as client:
                client.decide(hom_query(c3, c3))
            snapshot = engine.snapshot()
            assert snapshot["serve"]["completed"] == 1
            assert snapshot["serve"]["accepted"] == 1
            assert snapshot["serve"]["latency_samples"] == 1
            assert snapshot["serve"]["latency_p99_ms"] >= 0.0
        finally:
            st.stop()

    def test_health_check_roundtrip(self):
        st = fresh_engine_server()
        host, port = st.start()
        try:
            ready, detail = health_check(host, port)
            assert ready and detail == "ready"
        finally:
            st.stop()
        ready, detail = health_check(host, port, timeout_s=1.0)
        assert not ready

    def test_reset_stats_zeroes_serve_family(self):
        SERVE.frames += 3
        HomEngine().reset_stats()
        assert SERVE.frames == 0
