"""Property-based tests for the extension subsystems.

Invariants checked on randomized inputs: data-exchange chase results are
always solutions with universal cores; treewidth DP agrees with brute
force; semipositive evaluation degenerates to pure Datalog when no
negation is used; EF equivalence is an equivalence relation (sampled);
Lovász vectors are isomorphism invariants.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dataexchange import (
    chase,
    core_solution,
    is_solution,
    parse_mapping,
    solution_homomorphism,
)
from repro.datalog import (
    evaluate_semi_naive,
    evaluate_semipositive,
    parse_program,
    parse_semipositive_program,
)
from repro.graphtheory import (
    Graph,
    max_independent_set_treewidth,
    nice_decomposition,
)
from repro.graphtheory.scattered import _max_independent_set
from repro.homomorphism.counting import lovasz_vector
from repro.logic import ef_equivalent
from repro.structures import GRAPH_VOCABULARY, Structure, Vocabulary

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def digraphs(draw, max_size=4):
    n = draw(st.integers(min_value=1, max_value=max_size))
    possible = [(i, j) for i in range(n) for j in range(n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=7, unique=True))
    return Structure(GRAPH_VOCABULARY, range(n), {"E": edges})


@st.composite
def simple_graphs(draw, max_size=7):
    n = draw(st.integers(min_value=1, max_value=max_size))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = (
        draw(st.lists(st.sampled_from(possible), max_size=10, unique=True))
        if possible else []
    )
    return Graph(range(n), edges)


SRC = Vocabulary({"S": 2})
TGT = Vocabulary({"T": 2, "U": 2})
MAPPING = parse_mapping(
    "S(x, y) -> exists z. T(x, z) & U(z, y)", SRC, TGT
)


@st.composite
def source_instances(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    possible = [(i, j) for i in range(n) for j in range(n)]
    facts = draw(st.lists(st.sampled_from(possible), max_size=6, unique=True))
    return Structure(SRC, range(n), {"S": facts})


class TestDataExchangeProperties:
    @given(source=source_instances())
    @SETTINGS
    def test_chase_is_solution(self, source):
        result = chase(MAPPING, source)
        assert is_solution(MAPPING, source, result)

    @given(source=source_instances())
    @SETTINGS
    def test_core_is_smaller_universal_solution(self, source):
        report = core_solution(MAPPING, source)
        assert report.core.size() <= report.canonical.size()
        assert is_solution(MAPPING, source, report.core)
        assert solution_homomorphism(
            report.canonical, report.core
        ) is not None


class TestTreewidthDPProperties:
    @given(g=simple_graphs())
    @SETTINGS
    def test_mis_dp_matches_branch_and_bound(self, g):
        nd = nice_decomposition(g)
        nd.validate(g)
        assert max_independent_set_treewidth(g, nd) == len(
            _max_independent_set(g, 10 ** 6)
        )


class TestSemipositiveDegeneration:
    @given(s=digraphs())
    @SETTINGS
    def test_no_negation_matches_pure_engine(self, s):
        pure = parse_program(
            "T(x, y) <- E(x, y).\nT(x, y) <- E(x, z), T(z, y).",
            GRAPH_VOCABULARY,
        )
        semi = parse_semipositive_program(
            "T(x, y) <- E(x, y).\nT(x, y) <- E(x, z), T(z, y).",
            GRAPH_VOCABULARY,
        )
        assert evaluate_semipositive(semi, s)["T"] == \
            evaluate_semi_naive(pure, s).relations["T"]


class TestEFProperties:
    @given(a=digraphs(max_size=3), b=digraphs(max_size=3),
           m=st.integers(min_value=0, max_value=2))
    @SETTINGS
    def test_symmetry(self, a, b, m):
        assert ef_equivalent(a, b, m) == ef_equivalent(b, a, m)

    @given(a=digraphs(max_size=3), m=st.integers(min_value=0, max_value=2))
    @SETTINGS
    def test_reflexivity(self, a, m):
        assert ef_equivalent(a, a, m)

    @given(a=digraphs(max_size=3), b=digraphs(max_size=3),
           m=st.integers(min_value=1, max_value=2))
    @SETTINGS
    def test_monotone_in_rounds(self, a, b, m):
        if ef_equivalent(a, b, m):
            assert ef_equivalent(a, b, m - 1)


class TestLovaszProperties:
    @given(a=digraphs(max_size=3))
    @SETTINGS
    def test_vector_invariant_under_renaming(self, a):
        renamed = a.rename({e: ("r", e) for e in a.universe})
        assert lovasz_vector(a, 2) == lovasz_vector(renamed, 2)
