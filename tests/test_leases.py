"""The shard-lease protocol: claims, heartbeats, fencing, contention.

The centrepiece is the 200-trial seeded contention campaign: two live
processes race an :func:`os.open`-``O_EXCL`` fence-marker CAS for the
same shard on every trial, and the protocol must never let both win —
exactly one owner per trial, fencing tokens strictly increasing across
the campaign.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.distributed.leases import (
    CLAIMED,
    DAMAGED,
    EXPIRED,
    FREE,
    RELEASED,
    RUNNING,
    LeaseManager,
)
from repro.distributed.sharding import fence_marker_path, lease_path
from repro.exceptions import LeaseError, LeaseLostError, ValidationError
from repro.parallel.retry import RetryPolicy

TTL = 30.0


class FakeClock:
    """A settable wall clock for expiring leases without sleeping."""

    def __init__(self, now=1_000_000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# The state machine
# ---------------------------------------------------------------------------
def test_claim_starts_at_fence_one(tmp_path):
    manager = LeaseManager(str(tmp_path), "r1", ttl_s=TTL)
    lease = manager.claim(0)
    assert lease is not None
    assert lease.fence == 1
    assert lease.state == CLAIMED
    assert not lease.stolen
    assert os.path.exists(lease_path(str(tmp_path), 0))
    assert os.path.exists(fence_marker_path(str(tmp_path), 0, 1))


def test_valid_lease_blocks_other_claimants(tmp_path):
    m1 = LeaseManager(str(tmp_path), "r1", ttl_s=TTL)
    m2 = LeaseManager(str(tmp_path), "r2", ttl_s=TTL)
    assert m1.claim(0) is not None
    assert m2.claim(0) is None
    assert m2.observe(0)["state"] == CLAIMED


def test_lifecycle_claim_start_renew_release(tmp_path):
    manager = LeaseManager(str(tmp_path), "r1", ttl_s=TTL)
    lease = manager.claim(3)
    lease = manager.start(lease)
    assert lease.state == RUNNING
    assert manager.observe(3)["state"] == RUNNING
    before = lease.heartbeat_unix
    time.sleep(0.01)
    lease = manager.renew(lease)
    assert lease.heartbeat_unix > before
    lease = manager.release(lease)
    assert lease.state == RELEASED
    assert manager.observe(3)["state"] == RELEASED


def test_released_shard_reclaims_at_next_fence(tmp_path):
    m1 = LeaseManager(str(tmp_path), "r1", ttl_s=TTL)
    m2 = LeaseManager(str(tmp_path), "r2", ttl_s=TTL)
    m1.release(m1.start(m1.claim(0)))
    lease = m2.claim(0)
    assert lease is not None
    assert lease.fence == 2
    assert not lease.stolen  # a clean handoff is not a steal


def test_expired_lease_is_stolen_and_old_owner_fenced(tmp_path):
    clock = FakeClock()
    victim = LeaseManager(str(tmp_path), "victim", ttl_s=5.0, clock=clock)
    thief = LeaseManager(str(tmp_path), "thief", ttl_s=5.0, clock=clock)
    held = victim.start(victim.claim(0))

    # Heartbeats fresh: not stealable.
    assert thief.claim(0) is None

    clock.advance(6.0)  # past the TTL without a renewal
    assert thief.observe(0)["state"] == EXPIRED
    stolen = thief.claim(0)
    assert stolen is not None
    assert stolen.stolen
    assert stolen.fence == 2

    # The victim discovers the theft at its next heartbeat.
    with pytest.raises(LeaseLostError) as excinfo:
        victim.renew(held)
    assert excinfo.value.holder == "thief"
    assert excinfo.value.holder_fence == 2
    assert excinfo.value.fence == 1


def test_fenced_out_owner_cannot_release_either(tmp_path):
    clock = FakeClock()
    victim = LeaseManager(str(tmp_path), "victim", ttl_s=5.0, clock=clock)
    thief = LeaseManager(str(tmp_path), "thief", ttl_s=5.0, clock=clock)
    held = victim.start(victim.claim(0))
    clock.advance(6.0)
    assert thief.claim(0) is not None
    with pytest.raises(LeaseLostError):
        victim.release(held)


def test_higher_fenced_owner_self_heals_a_raced_lease_file(tmp_path):
    """A slower lower-fenced writer that races the lease file back is
    overwritten at the higher-fenced owner's next renewal."""
    clock = FakeClock()
    victim = LeaseManager(str(tmp_path), "victim", ttl_s=5.0, clock=clock)
    thief = LeaseManager(str(tmp_path), "thief", ttl_s=5.0, clock=clock)
    held = victim.start(victim.claim(0))
    clock.advance(6.0)
    stolen = thief.claim(0)
    # Simulate the victim's in-flight lease write landing *after* the
    # steal (LeaseManager refuses to regress, so write the file raw).
    with open(lease_path(str(tmp_path), 0), "w", encoding="utf-8") as fh:
        json.dump(held.payload(), fh)
    assert victim.read(0)["fence"] == 1
    renewed = thief.renew(stolen)
    assert renewed.fence == 2
    assert thief.read(0)["fence"] == 2
    assert thief.read(0)["owner"] == "thief"


def test_equal_fence_different_owner_is_a_protocol_error(tmp_path):
    manager = LeaseManager(str(tmp_path), "r1", ttl_s=TTL)
    lease = manager.claim(0)
    payload = lease.payload()
    payload["owner"] = "imposter"
    with open(lease_path(str(tmp_path), 0), "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    with pytest.raises(LeaseError):
        manager.renew(lease)


def test_damaged_lease_file_is_claimable_and_markers_bound_fences(tmp_path):
    manager = LeaseManager(str(tmp_path), "r1", ttl_s=TTL)
    lease = manager.claim(0)
    lease = manager.start(lease)
    with open(lease_path(str(tmp_path), 0), "w", encoding="utf-8") as fh:
        fh.write("\x00garbage{{{")
    assert manager.observe(0)["state"] == DAMAGED
    assert manager.highest_fence(0) == 1  # markers survive the damage
    other = LeaseManager(str(tmp_path), "r2", ttl_s=TTL)
    reclaimed = other.claim(0)
    assert reclaimed is not None
    assert reclaimed.fence == 2  # strictly above every issued token


def test_observe_free_shard(tmp_path):
    manager = LeaseManager(str(tmp_path), "r1", ttl_s=TTL)
    observed = manager.observe(9)
    assert observed["state"] == FREE
    assert observed["fence"] == 0


def test_validation(tmp_path):
    with pytest.raises(ValidationError):
        LeaseManager(str(tmp_path), "", ttl_s=TTL)
    with pytest.raises(ValidationError):
        LeaseManager(str(tmp_path), "r1", ttl_s=0.0)


# ---------------------------------------------------------------------------
# Two-process contention
# ---------------------------------------------------------------------------
CAMPAIGN_TRIALS = 200
CAMPAIGN_SHARD = 0
CAMPAIGN_TIMEOUT_S = 120


def _campaign_worker(shard_dir, owner, barrier, queue, trials):
    """One contender: every trial, rendezvous at the barrier then race
    to claim the same shard; a winner releases immediately so the next
    trial starts from a released lease."""
    manager = LeaseManager(shard_dir, owner, ttl_s=30.0)
    for trial in range(trials):
        barrier.wait(CAMPAIGN_TIMEOUT_S)
        lease = manager.claim(CAMPAIGN_SHARD)
        if lease is not None:
            manager.release(lease)
        queue.put((trial, owner, None if lease is None else lease.fence))
        barrier.wait(CAMPAIGN_TIMEOUT_S)  # trial fully settled


def test_two_process_contention_campaign_yields_one_owner(tmp_path):
    """200 seeded trials of two live processes racing the same shard:
    exactly one claim wins each trial and the winning fencing tokens
    strictly increase."""
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(2)
    queue = ctx.Queue()
    contenders = [
        ctx.Process(
            target=_campaign_worker,
            args=(str(tmp_path), owner, barrier, queue, CAMPAIGN_TRIALS),
        )
        for owner in ("alpha", "beta")
    ]
    for proc in contenders:
        proc.start()
    try:
        outcomes = [
            queue.get(timeout=CAMPAIGN_TIMEOUT_S)
            for _ in range(2 * CAMPAIGN_TRIALS)
        ]
        for proc in contenders:
            proc.join(timeout=CAMPAIGN_TIMEOUT_S)
            assert proc.exitcode == 0
    finally:
        for proc in contenders:
            if proc.is_alive():  # pragma: no cover - only on test bug
                proc.kill()
                proc.join()

    by_trial = {}
    for trial, owner, fence in outcomes:
        by_trial.setdefault(trial, []).append((owner, fence))
    assert len(by_trial) == CAMPAIGN_TRIALS
    previous_fence = 0
    for trial in range(CAMPAIGN_TRIALS):
        winners = [(o, f) for o, f in by_trial[trial] if f is not None]
        assert len(winners) == 1, (
            f"trial {trial}: expected exactly one owner, got "
            f"{by_trial[trial]}"
        )
        fence = winners[0][1]
        assert fence > previous_fence, (
            f"trial {trial}: fencing token did not increase "
            f"({fence} after {previous_fence})"
        )
        previous_fence = fence
    # One token issued per trial, none skipped, none reused.
    assert previous_fence == CAMPAIGN_TRIALS


def test_claim_race_loser_backs_off_and_wins_later(tmp_path):
    """The loser's protocol: back off on the crc32-jitter RetryPolicy
    schedule, re-inspect, and claim once the shard is released."""
    policy = RetryPolicy(max_attempts=10, base_delay=0.001,
                        max_delay=0.01, jitter=0.5)
    winner = LeaseManager(str(tmp_path), "winner", ttl_s=TTL)
    loser = LeaseManager(str(tmp_path), "loser", ttl_s=TTL)
    held = winner.claim(0)
    assert held is not None

    lease = None
    for attempt in range(10):
        lease = loser.claim(0)
        if lease is not None:
            break
        delay = policy.delay(attempt, "loser")
        assert delay >= 0.0
        time.sleep(delay)
        if attempt == 2:
            winner.release(held)
    assert lease is not None
    assert lease.owner == "loser"
    assert lease.fence == held.fence + 1
