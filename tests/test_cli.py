"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.structures import (
    directed_cycle,
    directed_path,
    load_structure,
    save_structure,
    single_loop,
)


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, s in (("p4", directed_path(4)), ("c3", directed_cycle(3)),
                    ("loop", single_loop())):
        path = str(tmp_path / f"{name}.json")
        save_structure(s, path)
        paths[name] = path
    return paths


class TestHom:
    def test_found(self, files, capsys):
        assert main(["hom", files["p4"], files["c3"]]) == 0
        out = capsys.readouterr().out
        assert json.loads(out)

    def test_not_found(self, files, capsys):
        assert main(["hom", files["c3"], files["p4"]]) == 1
        assert "no homomorphism" in capsys.readouterr().out


class TestCore:
    def test_report(self, files, capsys):
        assert main(["core", files["c3"]]) == 0
        out = capsys.readouterr().out
        assert "core:      3 elements" in out

    def test_output_file(self, files, tmp_path, capsys):
        out_path = str(tmp_path / "core.json")
        assert main(["core", files["p4"], "--output", out_path]) == 0
        core = load_structure(out_path)
        assert core.size() <= 4


class TestTreewidth:
    def test_cycle(self, files, capsys):
        assert main(["treewidth", files["c3"]]) == 0
        assert "treewidth: 2" in capsys.readouterr().out


class TestCheck:
    def test_pebble_game(self, files, capsys):
        assert main(["check", files["c3"], files["p4"], "--pebbles", "2"]) == 1
        assert "False" in capsys.readouterr().out
        assert main(["check", files["p4"], files["c3"], "--pebbles", "2"]) == 0


class TestChandraMerlin:
    def test_agreement(self, files, capsys):
        assert main(["chandra-merlin", files["p4"], files["c3"]]) == 0
        out = capsys.readouterr().out
        assert out.count("True") == 3


class TestRewrite:
    def test_mutual_edge(self, capsys):
        code = main([
            "rewrite", "exists x y. E(x,y) & E(y,x)",
            "--relations", "E:2", "--max-size", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "minimal models" in out

    def test_bad_relations_spec(self):
        with pytest.raises(SystemExit):
            main(["rewrite", "exists x. E(x,x)", "--relations", "E"])


class TestDatalog:
    def test_transitive_closure(self, files, tmp_path, capsys):
        program = tmp_path / "tc.dl"
        program.write_text(
            "T(x, y) <- E(x, y).\nT(x, y) <- E(x, z), T(z, y).\n"
        )
        assert main(["datalog", str(program), files["p4"],
                     "--query", "T"]) == 0
        out = capsys.readouterr().out
        assert "6 tuples" in out


class TestErrorPaths:
    def test_datalog_default_predicate(self, files, tmp_path, capsys):
        program = tmp_path / "tc.dl"
        program.write_text("T(x, y) <- E(x, y).\n")
        assert main(["datalog", str(program), files["p4"]]) == 0
        assert "T:" in capsys.readouterr().out

    def test_rewrite_parse_error_propagates(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            main(["rewrite", "exists x. E(x", "--relations", "E:2"])

    def test_treewidth_limit_flag(self, files, capsys):
        assert main(["treewidth", files["loop"], "--limit", "10"]) == 0
        assert "treewidth: 0" in capsys.readouterr().out


class TestStats:
    def _fresh(self):
        from repro.engine import reset_engine

        reset_engine()

    def test_stats_after_repeated_pair(self, files, capsys):
        self._fresh()
        try:
            assert main(["stats", "--pair", files["p4"], files["c3"],
                         "--repeat", "5"]) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["cache_enabled"] is True
            assert data["solver"]["calls"] >= 5
            assert data["solver"]["cache_hits"] >= 4
            assert data["cache"]["hit_rate"] > 0
        finally:
            self._fresh()

    def test_stats_no_cache(self, files, capsys):
        try:
            assert main(["stats", "--no-cache", "--pair", files["c3"],
                         files["p4"], "--repeat", "3"]) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["cache_enabled"] is False
            assert data["solver"]["cache_hits"] == 0
            assert data["solver"]["solves"] == 3
        finally:
            self._fresh()

    def test_stats_bare(self, capsys):
        self._fresh()
        try:
            assert main(["stats"]) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["solver"]["calls"] == 0
        finally:
            self._fresh()

    def test_stats_journal_health(self, tmp_path, capsys):
        from repro.resources import SweepJournal

        journal = tmp_path / "j.jsonl"
        SweepJournal(str(journal)).record("a", 1)
        self._fresh()
        try:
            assert main(["stats", "--journal", str(journal)]) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["journal"]["records"] == 1
            assert data["journal"]["integrity"] == "ok"
        finally:
            self._fresh()


class TestSweep:
    def test_sweep_only_filter_with_journal(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        assert main(["sweep", "cores", "--only", "rigid-cycle",
                     "--journal", str(journal), "--retries", "2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["instances"] == 3
        assert all(key.startswith("rigid-cycle") for key in data["results"])
        assert data["journal"]["integrity"] == "ok"
        # rerun resumes everything from the journal
        assert main(["sweep", "cores", "--only", "rigid-cycle",
                     "--journal", str(journal)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["resumed"] == 3 and data["computed"] == 0

    def test_sweep_only_filter_rejects_no_match(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            main(["sweep", "cores", "--only", "no-such-instance"])
