"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.structures import (
    directed_cycle,
    directed_path,
    load_structure,
    save_structure,
    single_loop,
)


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, s in (("p4", directed_path(4)), ("c3", directed_cycle(3)),
                    ("loop", single_loop())):
        path = str(tmp_path / f"{name}.json")
        save_structure(s, path)
        paths[name] = path
    return paths


class TestHom:
    def test_found(self, files, capsys):
        assert main(["hom", files["p4"], files["c3"]]) == 0
        out = capsys.readouterr().out
        assert json.loads(out)

    def test_not_found(self, files, capsys):
        assert main(["hom", files["c3"], files["p4"]]) == 1
        assert "no homomorphism" in capsys.readouterr().out


class TestCore:
    def test_report(self, files, capsys):
        assert main(["core", files["c3"]]) == 0
        out = capsys.readouterr().out
        assert "core:      3 elements" in out

    def test_output_file(self, files, tmp_path, capsys):
        out_path = str(tmp_path / "core.json")
        assert main(["core", files["p4"], "--output", out_path]) == 0
        core = load_structure(out_path)
        assert core.size() <= 4


class TestTreewidth:
    def test_cycle(self, files, capsys):
        assert main(["treewidth", files["c3"]]) == 0
        assert "treewidth: 2" in capsys.readouterr().out


class TestCheck:
    def test_pebble_game(self, files, capsys):
        assert main(["check", files["c3"], files["p4"], "--pebbles", "2"]) == 1
        assert "False" in capsys.readouterr().out
        assert main(["check", files["p4"], files["c3"], "--pebbles", "2"]) == 0


class TestChandraMerlin:
    def test_agreement(self, files, capsys):
        assert main(["chandra-merlin", files["p4"], files["c3"]]) == 0
        out = capsys.readouterr().out
        assert out.count("True") == 3


class TestRewrite:
    def test_mutual_edge(self, capsys):
        code = main([
            "rewrite", "exists x y. E(x,y) & E(y,x)",
            "--relations", "E:2", "--max-size", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "minimal models" in out

    def test_bad_relations_spec(self):
        with pytest.raises(SystemExit):
            main(["rewrite", "exists x. E(x,x)", "--relations", "E"])


class TestDatalog:
    def test_transitive_closure(self, files, tmp_path, capsys):
        program = tmp_path / "tc.dl"
        program.write_text(
            "T(x, y) <- E(x, y).\nT(x, y) <- E(x, z), T(z, y).\n"
        )
        assert main(["datalog", str(program), files["p4"],
                     "--query", "T"]) == 0
        out = capsys.readouterr().out
        assert "6 tuples" in out


class TestErrorPaths:
    def test_datalog_default_predicate(self, files, tmp_path, capsys):
        program = tmp_path / "tc.dl"
        program.write_text("T(x, y) <- E(x, y).\n")
        assert main(["datalog", str(program), files["p4"]]) == 0
        assert "T:" in capsys.readouterr().out

    def test_rewrite_parse_error_propagates(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            main(["rewrite", "exists x. E(x", "--relations", "E:2"])

    def test_treewidth_limit_flag(self, files, capsys):
        assert main(["treewidth", files["loop"], "--limit", "10"]) == 0
        assert "treewidth: 0" in capsys.readouterr().out


class TestStats:
    def _fresh(self):
        from repro.engine import reset_engine

        reset_engine()

    def test_stats_after_repeated_pair(self, files, capsys):
        self._fresh()
        try:
            assert main(["stats", "--pair", files["p4"], files["c3"],
                         "--repeat", "5"]) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["cache_enabled"] is True
            assert data["solver"]["calls"] >= 5
            assert data["solver"]["cache_hits"] >= 4
            assert data["cache"]["hit_rate"] > 0
        finally:
            self._fresh()

    def test_stats_no_cache(self, files, capsys):
        try:
            assert main(["stats", "--no-cache", "--pair", files["c3"],
                         files["p4"], "--repeat", "3"]) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["cache_enabled"] is False
            assert data["solver"]["cache_hits"] == 0
            assert data["solver"]["solves"] == 3
        finally:
            self._fresh()

    def test_stats_bare(self, capsys):
        self._fresh()
        try:
            assert main(["stats"]) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["solver"]["calls"] == 0
        finally:
            self._fresh()

    def test_stats_reset_zeroes_compiled_cache_counters(
        self, files, capsys
    ):
        self._fresh()
        try:
            # warm the engine (and the compiled-target cache counters)
            assert main(["stats", "--pair", files["p4"], files["c3"],
                         "--repeat", "2"]) == 0
            data = json.loads(capsys.readouterr().out)
            warmed = data["compiled_targets"]
            assert warmed["hits"] + warmed["misses"] > 0
            # --reset zeroes everything before the (fresh) run
            assert main(["stats", "--reset"]) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["solver"]["calls"] == 0
            assert data["compiled_targets"]["hits"] == 0
            assert data["compiled_targets"]["misses"] == 0
            # --reset composes with --pair: counters reflect only the
            # post-reset queries
            assert main(["stats", "--reset", "--pair", files["p4"],
                         files["c3"], "--repeat", "3"]) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["solver"]["calls"] == 3
        finally:
            self._fresh()

    def test_stats_journal_health(self, tmp_path, capsys):
        from repro.resources import SweepJournal

        journal = tmp_path / "j.jsonl"
        SweepJournal(str(journal)).record("a", 1)
        self._fresh()
        try:
            assert main(["stats", "--journal", str(journal)]) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["journal"]["records"] == 1
            assert data["journal"]["integrity"] == "ok"
        finally:
            self._fresh()


class TestSweep:
    def test_sweep_only_filter_with_journal(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        assert main(["sweep", "cores", "--only", "rigid-cycle",
                     "--journal", str(journal), "--retries", "2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["instances"] == 3
        assert all(key.startswith("rigid-cycle") for key in data["results"])
        assert data["journal"]["integrity"] == "ok"
        # rerun resumes everything from the journal
        assert main(["sweep", "cores", "--only", "rigid-cycle",
                     "--journal", str(journal)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["resumed"] == 3 and data["computed"] == 0

    def test_sweep_only_filter_rejects_no_match(self, capsys):
        # a structured error, not a traceback: exit 2 with the valid
        # instance names listed on stderr
        assert main(["sweep", "cores", "--only", "no-such-instance"]) == 2
        err = capsys.readouterr().err
        assert "no-such-instance" in err
        assert "rigid-cycle-5" in err

    def test_unknown_instance_error_carries_structure(self):
        from repro.exceptions import UnknownInstanceError, ValidationError

        err = UnknownInstanceError("nope", ["b", "a"])
        assert isinstance(err, ValidationError)
        assert err.requested == "nope"
        assert err.valid == ["a", "b"]
        assert "nope" in str(err) and "a, b" in str(err)

    def test_hom_batch_sweep_runs(self, capsys):
        from repro.engine import reset_engine

        reset_engine()
        try:
            assert main(["sweep", "hom-batch",
                         "--only", "k2-colorability"]) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["instances"] == 1
            record = data["results"]["k2-colorability"]["result"]
            # odd cycles are not 2-colorable: all five queries refuted
            assert record["queries"] == 5 and record["found"] == 0
            assert record["verdicts"] == ["FALSE"] * 5
        finally:
            # don't leave the global engine's memo cache warm with
            # odd-cycle answers: later forked sweep workers would
            # inherit it and short-circuit governor tests
            reset_engine()


class TestBenchOnlyFilter:
    """The bench script's --only filter fails structurally, like sweep's."""

    def _bench_module(self):
        import importlib
        import os
        import sys

        bench_dir = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks",
        )
        sys.path.insert(0, bench_dir)
        try:
            return importlib.import_module("bench_p01_hom_search")
        finally:
            sys.path.remove(bench_dir)

    def test_unknown_instance_exits_2_with_valid_names(self, capsys):
        bench = self._bench_module()
        code = bench.main(["--kernel-compare", "--only", "no-such-bench"])
        assert code == 2
        err = capsys.readouterr().err
        assert "no-such-bench" in err
        assert "odd-cycle-7-vs-k2" in err

    def test_filter_workload_matches_substrings(self):
        from repro.exceptions import UnknownInstanceError

        bench = self._bench_module()
        pairs = bench.kernel_compare_workload("tiny")
        matched = bench.filter_workload(pairs, "odd-cycle")
        assert [name for name, _, _ in matched] == [
            "odd-cycle-7-vs-k2", "odd-cycle-9-vs-k2",
        ]
        with pytest.raises(UnknownInstanceError) as excinfo:
            bench.filter_workload(pairs, "zzz")
        assert "odd-cycle-7-vs-k2" in excinfo.value.valid
