"""Shard-kill chaos: SIGKILL runners mid-sweep, survivors steal, the
merged report equals a single-host run.

The campaign (mirrored by the ``shard-chaos`` CI job):

1. runner ``r0`` starts alone on a sleepy grid and is SIGKILLed after
   its journal shows real progress — a genuine mid-write kill;
2. runners ``r1`` and ``r2`` start, claim the free shards, and steal
   ``r0``'s expired lease (observed as a fencing token bump);
3. the *thief* is SIGKILLed too (the double-kill), leaving one
   survivor to steal the twice-orphaned shard and finish everything;
4. the merged, fence-resolved journals must equal a single-host
   baseline run of the same grid, modulo wall-clock fields.
"""

import json
import os
import signal
import subprocess
import sys
import time

from repro.distributed import merge_journals, shard_journal_paths
from repro.distributed.leases import LeaseManager
from repro.distributed.merge import normalize_results
from repro.distributed.sharding import journal_dir
from repro.parallel.executor import run_sweep
from repro.parallel.faults import faulty_task

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _shard_runner import chaos_grid  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
RUNNER = os.path.join(REPO_ROOT, "tests", "_shard_runner.py")

SHARDS = 4
INSTANCES = 16
WORK_S = 0.25
TTL_S = 1.2
HEARTBEAT_S = 0.25
CAMPAIGN_TIMEOUT_S = 90

GRID = chaos_grid(INSTANCES, WORK_S)
GRID_KEYS = [key for key, _ in GRID]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn(shard_dir, runner_id):
    config = {
        "shard_dir": str(shard_dir),
        "shards": SHARDS,
        "runner_id": runner_id,
        "instances": INSTANCES,
        "work_s": WORK_S,
        "ttl": TTL_S,
        "heartbeat": HEARTBEAT_S,
        "max_wait": 60.0,
    }
    return subprocess.Popen(
        [sys.executable, RUNNER, json.dumps(config)],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def _journal_records(shard_dir):
    total = 0
    directory = journal_dir(str(shard_dir))
    try:
        names = os.listdir(directory)
    except OSError:
        return 0
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        with open(os.path.join(directory, name), encoding="utf-8") as fh:
            total += sum(1 for line in fh if line.strip())
    return total


def _wait_for(predicate, timeout_s, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    return None


def _sigkill(proc):
    if proc.poll() is None:
        try:
            proc.send_signal(signal.SIGKILL)
        except ProcessLookupError:  # pragma: no cover - exited just now
            pass
    proc.wait(timeout=30)


def _stolen_shard(shard_dir):
    """The (shard, owner) of the first fence token >= 2 seen in the
    lease directory — a steal happened."""
    manager = LeaseManager(str(shard_dir), "observer", ttl_s=TTL_S)
    for shard in range(SHARDS):
        if manager.highest_fence(shard) >= 2:
            payload = manager.read(shard)
            if payload is not None and payload.get("fence", 0) >= 2:
                return shard, payload.get("owner")
    return None


def _baseline():
    outcome = run_sweep(faulty_task, GRID, workers=4, hard_timeout_s=15.0)
    assert outcome.failed == 0
    return normalize_results(outcome.results)


def test_shard_kill_chaos_campaign(tmp_path):
    shard_dir = tmp_path / "shards"
    shard_dir.mkdir()

    # Phase 1: r0 alone, killed after genuine journaled progress.
    victim = _spawn(shard_dir, "r0")
    progressed = _wait_for(
        lambda: _journal_records(shard_dir) >= 1, CAMPAIGN_TIMEOUT_S
    )
    assert progressed, "r0 never journaled a record"
    _sigkill(victim)
    assert victim.returncode == -signal.SIGKILL
    records_at_kill = _journal_records(shard_dir)
    assert records_at_kill < INSTANCES, "r0 finished before the kill"

    # Phase 2: two fresh runners; one steals r0's expired lease.
    survivors = {name: _spawn(shard_dir, name) for name in ("r1", "r2")}
    theft = _wait_for(
        lambda: _stolen_shard(shard_dir), CAMPAIGN_TIMEOUT_S
    )
    assert theft, "no runner stole r0's expired lease"
    stolen_shard, thief = theft
    assert thief in survivors, f"unexpected thief {thief!r}"

    # Phase 3: double-kill — the thief dies too.
    _sigkill(survivors[thief])
    (last_name,) = [name for name in survivors if name != thief]
    last = survivors[last_name]

    stdout, _ = last.communicate(timeout=CAMPAIGN_TIMEOUT_S)
    assert last.returncode == 0, (
        f"the last survivor {last_name} did not complete the sweep"
    )
    final = json.loads(stdout)
    assert final["complete"]
    # The survivor (or the thief, before dying) re-claimed the stolen
    # shard at a fence above the thief's.
    manager = LeaseManager(str(shard_dir), "observer", ttl_s=TTL_S)
    assert manager.highest_fence(stolen_shard) >= 2

    # Phase 4: the merged journals equal a single-host run.
    report = merge_journals(
        shard_journal_paths(str(shard_dir), SHARDS),
        expected_keys=GRID_KEYS,
    )
    assert report.missing == []
    assert report.unexpected == []
    assert report.corrupt_lines == 0
    assert normalize_results(report.results) == _baseline()

    # Two SIGKILLs may legitimately tear journal tails ("recovered")
    # and strand stale-fence lines ("fenced_out") — but nothing may be
    # silently lost, which the equality above already proves.  The CLI
    # classifies any fenced-out lines as findings (exit 2), clean runs
    # as 0.
    from repro.cli import main as cli_main

    code = cli_main([
        "merge-journals", "--shard-dir", str(shard_dir),
        "--shards", str(SHARDS),
    ])
    assert code == (0 if report.clean else 2)


def test_killed_runner_leaves_resumable_state(tmp_path):
    """One kill, one successor, no concurrency: the minimal recovery
    path the bigger campaign builds on."""
    shard_dir = tmp_path / "shards"
    shard_dir.mkdir()
    victim = _spawn(shard_dir, "solo")
    assert _wait_for(
        lambda: _journal_records(shard_dir) >= 1, CAMPAIGN_TIMEOUT_S
    )
    _sigkill(victim)

    successor = _spawn(shard_dir, "heir")
    stdout, _ = successor.communicate(timeout=CAMPAIGN_TIMEOUT_S)
    assert successor.returncode == 0, "successor did not converge"
    final = json.loads(stdout)
    assert final["complete"]

    report = merge_journals(
        shard_journal_paths(str(shard_dir), SHARDS),
        expected_keys=GRID_KEYS,
    )
    assert report.missing == []
    assert normalize_results(report.results) == _baseline()
