"""Unit tests for FO syntax (AST)."""

import pytest

from repro.exceptions import ValidationError
from repro.logic import (
    And,
    Atom,
    Bottom,
    Const,
    Equal,
    Exists,
    Forall,
    Not,
    Or,
    Top,
    Var,
    atom,
    exists_many,
    forall_many,
    implies,
)


class TestTerms:
    def test_var_str(self):
        assert str(Var("x")) == "x"

    def test_const_str(self):
        assert str(Const("c")) == "#c"

    def test_atom_helper(self):
        a = atom("E", "x", "y")
        assert a.relation == "E"
        assert a.terms == (Var("x"), Var("y"))

    def test_atom_helper_with_const(self):
        a = atom("E", "x", Const("c"))
        assert isinstance(a.terms[1], Const)


class TestVariables:
    def test_atom_free_vars(self):
        assert atom("E", "x", "y").free_variables() == frozenset({"x", "y"})

    def test_const_not_a_variable(self):
        a = atom("E", "x", Const("c"))
        assert a.free_variables() == frozenset({"x"})

    def test_exists_binds(self):
        f = Exists("x", atom("E", "x", "y"))
        assert f.free_variables() == frozenset({"y"})
        assert f.variables() == frozenset({"x", "y"})

    def test_forall_binds(self):
        f = Forall("x", atom("E", "x", "x"))
        assert f.free_variables() == frozenset()

    def test_variable_reuse_counted_once(self):
        # CQ^2 style: x requantified
        f = Exists("x", And.of(atom("E", "x", "y"),
                               Exists("x", atom("E", "y", "x"))))
        assert f.variables() == frozenset({"x", "y"})

    def test_equal_vars(self):
        assert Equal(Var("x"), Var("y")).variables() == frozenset({"x", "y"})

    def test_top_bottom(self):
        assert Top().variables() == frozenset()
        assert Bottom().free_variables() == frozenset()


class TestSmartConstructors:
    def test_and_flattens(self):
        f = And.of(atom("E", "x", "y"), And.of(atom("E", "y", "z"),
                                               atom("E", "z", "w")))
        assert isinstance(f, And)
        assert len(f.operands) == 3

    def test_and_drops_top(self):
        f = And.of(Top(), atom("E", "x", "y"))
        assert isinstance(f, Atom)

    def test_and_empty_is_top(self):
        assert isinstance(And.of(), Top)

    def test_or_flattens(self):
        f = Or.of(atom("E", "x", "y"), Or.of(atom("E", "y", "x")))
        assert isinstance(f, Atom) or isinstance(f, Or)

    def test_or_drops_bottom(self):
        f = Or.of(Bottom(), atom("E", "x", "y"))
        assert isinstance(f, Atom)

    def test_or_empty_is_bottom(self):
        assert isinstance(Or.of(), Bottom)

    def test_empty_constructor_rejected(self):
        with pytest.raises(ValidationError):
            And(())

    def test_operators(self):
        a, b = atom("E", "x", "y"), atom("E", "y", "x")
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)

    def test_exists_many(self):
        f = exists_many(["x", "y"], atom("E", "x", "y"))
        assert isinstance(f, Exists) and f.var == "x"
        assert isinstance(f.body, Exists)

    def test_forall_many(self):
        f = forall_many(["x"], atom("E", "x", "x"))
        assert isinstance(f, Forall)

    def test_implies(self):
        f = implies(atom("E", "x", "y"), atom("E", "y", "x"))
        assert isinstance(f, Or)


class TestSubformulas:
    def test_preorder(self):
        f = Exists("x", And.of(atom("E", "x", "y"), Not(atom("E", "y", "x"))))
        subs = list(f.subformulas())
        assert subs[0] is f
        assert len(subs) == 5

    def test_atom_is_leaf(self):
        assert list(atom("E", "x", "y").subformulas()) == [atom("E", "x", "y")]


class TestHashability:
    def test_formulas_hashable_and_equal(self):
        a = Exists("x", atom("E", "x", "x"))
        b = Exists("x", atom("E", "x", "x"))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_str_forms(self):
        f = Forall("x", Or.of(atom("E", "x", "x"), Not(Top())))
        text = str(f)
        assert "forall x" in text and "E(x, x)" in text
