"""Unit tests for the Sunflower Lemma implementation."""

from itertools import combinations

import pytest

from repro.exceptions import ValidationError
from repro.graphtheory import (
    Sunflower,
    find_sunflower,
    is_sunflower,
    sunflower_bound,
    sunflower_free_family,
)


def F(*sets):
    return [frozenset(s) for s in sets]


class TestPredicate:
    def test_disjoint_sets_are_sunflower(self):
        assert is_sunflower(F({1, 2}, {3, 4}, {5, 6}), frozenset())

    def test_common_core(self):
        family = F({1, 2, 3}, {1, 2, 4}, {1, 2, 5})
        assert is_sunflower(family, frozenset({1, 2}))
        assert is_sunflower(family)  # core inferred

    def test_not_sunflower(self):
        assert not is_sunflower(F({1, 2}, {2, 3}, {3, 4}))

    def test_wrong_core_rejected(self):
        assert not is_sunflower(F({1, 2}, {1, 3}), frozenset({2}))

    def test_single_set(self):
        assert is_sunflower(F({1, 2}))

    def test_duplicates_rejected(self):
        assert not is_sunflower([frozenset({1}), frozenset({1})])


class TestBound:
    def test_values(self):
        assert sunflower_bound(1, 2) == 1
        assert sunflower_bound(2, 3) == 8
        assert sunflower_bound(3, 3) == 48

    def test_invalid(self):
        with pytest.raises(ValidationError):
            sunflower_bound(-1, 2)
        with pytest.raises(ValidationError):
            sunflower_bound(2, 0)


class TestExtraction:
    def test_simple_extraction(self):
        family = F({1, 2}, {1, 3}, {1, 4}, {5, 6})
        flower = find_sunflower(family, 3)
        assert flower is not None
        assert flower.num_petals() == 3
        assert is_sunflower(flower.petals, flower.core)
        assert all(p in family for p in flower.petals)

    def test_empty_core_extraction(self):
        family = F({1}, {2}, {3}, {4})
        flower = find_sunflower(family, 4)
        assert flower.core == frozenset()

    def test_too_few_sets(self):
        assert find_sunflower(F({1, 2}), 2) is None

    def test_p_must_be_positive(self):
        with pytest.raises(ValidationError):
            find_sunflower(F({1}), 0)

    def test_above_bound_always_succeeds(self):
        # all 2-subsets of a 6-set: 15 > 2!(3-1)^2 = 8 -> 3 petals exist
        universe = range(6)
        family = [frozenset(c) for c in combinations(universe, 2)]
        assert len(family) > sunflower_bound(2, 3)
        flower = find_sunflower(family, 3)
        assert flower is not None
        assert flower.num_petals() >= 3

    def test_mixed_sizes(self):
        family = F({1, 2, 3}, {1, 4}, {1, 5}, {1, 6})
        flower = find_sunflower(family, 3)
        assert flower is not None
        assert is_sunflower(flower.petals, flower.core)

    def test_open_petals_disjoint(self):
        family = F({1, 2}, {1, 3}, {1, 4})
        flower = find_sunflower(family, 3)
        opened = flower.open_petals()
        for i, a in enumerate(opened):
            for b in opened[i + 1:]:
                assert not (a & b)


class TestLowerBoundConstruction:
    def test_family_size(self):
        family = sunflower_free_family(2, 3)
        assert len(family) == 4  # (p-1)^k = 2^2

    def test_no_sunflower_inside(self):
        family = sunflower_free_family(2, 3)
        # check exhaustively: no 3 sets form a sunflower
        for trio in combinations(family, 3):
            assert not is_sunflower(list(trio))

    def test_uniform_size(self):
        family = sunflower_free_family(3, 4)
        assert all(len(s) == 3 for s in family)
        assert len(family) == 27

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            sunflower_free_family(0, 3)
        with pytest.raises(ValidationError):
            sunflower_free_family(2, 1)
