"""Differential harness: the bitset kernel vs the reference solver.

The compiled kernel is only allowed to be *fast*, never *different*:
its value interning and MRV tie-breaks are aligned with the reference
solver on purpose, so the two explore identical search trees.  The
harness feeds 500+ seeded random instances to both solvers across every
mode (plain, injective, pinned, forbidden images, propagation off) and
asserts

* existence agreement and witness validity in every mode,
* *node-for-node* tree identity (equal ``nodes`` and ``backtracks``
  counters), which pins the alignment down far harder than existence,
* identical full enumerations (same solutions, same order),
* the same ``ValidationError`` behavior on misuse, and
* honest trivalence under governor trips: with a budget installed, the
  kernel answers UNKNOWN or agrees with the brute-force oracle — never
  a wrong definite verdict.
"""

import itertools

import pytest

from repro.engine import HomEngine
from repro.engine.instrumentation import SolverStats
from repro.exceptions import ResourceError, ValidationError
from repro.homomorphism import is_homomorphism
from repro.homomorphism.search import HomomorphismSearch
from repro.kernel import BitsetHomomorphismSolver, CompiledTarget
from repro.resources import governed
from repro.structures import (
    Structure,
    Vocabulary,
    random_structure,
    undirected_cycle,
    undirected_path,
)

GRAPH = Vocabulary({"E": 2})
COLORED = Vocabulary({"E": 2, "P": 1})


def _random_pair(vocabulary, seed):
    size_a = 1 + seed % 4
    size_b = 1 + (seed // 4) % 4
    density_a = 0.15 + 0.2 * (seed % 3)
    density_b = 0.15 + 0.2 * ((seed // 3) % 3)
    a = random_structure(vocabulary, size_a, density_a, seed=2 * seed)
    b = random_structure(vocabulary, size_b, density_b, seed=2 * seed + 1)
    return a, b


def _both(source, target, **options):
    """Run both solvers on one instance; return the two witnesses after
    asserting agreement and tree identity."""
    ref_stats, ker_stats = SolverStats(), SolverStats()
    reference = HomomorphismSearch(
        source, target, stats=ref_stats, **options
    ).first()
    kernel = BitsetHomomorphismSolver(
        source, CompiledTarget(target), stats=ker_stats, **options
    ).first()
    assert (reference is None) == (kernel is None), (
        f"existence disagreement: {source!r} -> {target!r} {options}"
    )
    assert ref_stats.nodes == ker_stats.nodes, (
        f"search trees diverged (nodes {ref_stats.nodes} vs "
        f"{ker_stats.nodes}): {source!r} -> {target!r} {options}"
    )
    assert ref_stats.backtracks == ker_stats.backtracks, (
        f"search trees diverged (backtracks): {source!r} -> {target!r}"
    )
    if kernel is not None:
        assert is_homomorphism(source, target, kernel)
    return reference, kernel


def _modes(a, b):
    """Every solver mode for one (a, b) pair: 5 differential cases."""
    _both(a, b)
    _both(b, a)
    _, injective = _both(a, b, injective=True)
    if injective is not None:
        assert len(set(injective.values())) == len(injective)
    if a.universe and b.universe:
        pin = {a.universe[0]: b.universe[0]}
        _, pinned = _both(a, b, pinned=pin)
        if pinned is not None:
            assert pinned[a.universe[0]] == b.universe[0]
        forbidden = frozenset([b.universe[0]])
        _, avoiding = _both(a, b, forbidden_images=forbidden)
        if avoiding is not None:
            assert not set(avoiding.values()) & forbidden
    else:
        _both(a, b, propagate=False)
        _both(b, a, propagate=False)


@pytest.mark.parametrize("seed", range(80))
def test_kernel_differential_graph_pairs(seed):
    a, b = _random_pair(GRAPH, seed)
    _modes(a, b)


@pytest.mark.parametrize("seed", range(40))
def test_kernel_differential_colored_pairs(seed):
    a, b = _random_pair(COLORED, seed)
    _modes(a, b)


@pytest.mark.parametrize("seed", range(30))
def test_kernel_differential_without_propagation(seed):
    a, b = _random_pair(GRAPH, seed)
    _both(a, b, propagate=False)
    _both(b, a, propagate=False)


def test_harness_covers_500_cases():
    """The sweeps above run >= 500 (pair, mode) differential cases."""
    assert (80 + 40) * 5 + 30 * 2 >= 500


def test_kernel_enumeration_matches_reference_order():
    """Full enumerations agree solution-for-solution, in order."""
    for source, target in [
        (undirected_path(3), undirected_path(4)),
        (undirected_cycle(3), undirected_cycle(3)),
        (undirected_path(2), undirected_cycle(5)),
    ]:
        reference = list(HomomorphismSearch(source, target).solutions())
        kernel = list(
            BitsetHomomorphismSolver(
                source, CompiledTarget(target)
            ).solutions()
        )
        assert reference == kernel


def test_kernel_validation_parity():
    """Misuse raises the same typed error as the reference solver."""
    a = undirected_path(2)
    mismatched = Structure(Vocabulary({"R": 1}), [0], {"R": [(0,)]})
    with pytest.raises(ValidationError):
        HomomorphismSearch(a, mismatched)
    with pytest.raises(ValidationError):
        BitsetHomomorphismSolver(a, CompiledTarget(mismatched))
    b = undirected_path(3)
    bad_pin = {"not-an-element": b.universe[0]}
    with pytest.raises(ValidationError):
        HomomorphismSearch(a, b, pinned=bad_pin)
    with pytest.raises(ValidationError):
        BitsetHomomorphismSolver(a, CompiledTarget(b), pinned=bad_pin)


def test_pin_to_foreign_target_value_is_a_clean_false():
    """Pinning onto a value outside the target universe refutes (both
    solvers), it does not crash."""
    a, b = undirected_path(2), undirected_path(3)
    pin = {a.universe[0]: "no-such-target-element"}
    assert HomomorphismSearch(a, b, pinned=pin).first() is None
    assert (
        BitsetHomomorphismSolver(a, CompiledTarget(b), pinned=pin).first()
        is None
    )


# ----------------------------------------------------------------------
# Governor trips inside the kernel stay honest
# ----------------------------------------------------------------------
def _oracle(source, target):
    src, tgt = list(source.universe), list(target.universe)
    if not src:
        return True
    if not tgt:
        return False
    return any(
        is_homomorphism(source, target, dict(zip(src, images)))
        for images in itertools.product(tgt, repeat=len(src))
    )


@pytest.mark.parametrize("budget", [0, 1, 3, 10, 100])
def test_kernel_budget_trips_yield_unknown_never_wrong(budget):
    """Under any budget, the kernel path answers UNKNOWN or agrees with
    the brute-force oracle — a trip must never flip a verdict."""
    engine = HomEngine(cache_enabled=False, use_kernel=True)
    for seed in range(12):
        a, b = _random_pair(GRAPH, seed)
        expected = _oracle(a, b)
        with governed(budget=budget):
            verdict = engine.decide_homomorphism(a, b)
        if verdict.is_unknown:
            continue
        assert verdict.is_true == expected
        if verdict.is_true:
            assert is_homomorphism(a, b, verdict.witness)


def test_kernel_raw_solver_raises_typed_resource_error():
    """The raw solver (no trivalent wrapper) surfaces trips as typed
    ResourceErrors from its checkpoint sites, like the reference."""
    source = undirected_cycle(7)
    target = CompiledTarget(undirected_path(2))
    with pytest.raises(ResourceError):
        with governed(budget=1):
            BitsetHomomorphismSolver(source, target).first()
