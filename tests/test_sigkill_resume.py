"""Resume-after-SIGKILL: the crash-safety contract, end to end.

Each case launches ``python -m repro sweep <name> --journal J`` as a
real subprocess, polls the journal until at least two records are
fsynced, SIGKILLs the process mid-run, reruns the same command to
completion, and asserts the merged results equal an uninterrupted run —
across the ``hom``, ``cores`` and ``treewidth`` registry sweeps.

Volatile per-record fields (wall clock, engine counters whose values
depend on memo-cache warmth, which a resumed process legitimately lacks)
are stripped before comparison; everything semantic — statuses,
verdicts, witness-level facts, widths, core sizes — must match exactly.
A SIGKILL can also land mid-``write`` and tear the journal's final
line; the resumed run must then report ``integrity: recovered`` (or
``ok``) and still converge to the same results.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

#: Record fields that legitimately differ between a warm uninterrupted
#: process and a cold resumed one.
VOLATILE_RECORD = ("elapsed_s",)
VOLATILE_RESULT = ("nodes", "backtracks")

#: How long one sweep subprocess may take before the test declares a
#: hang (generous: observed full serial sweeps are < 2s each).
SUBPROCESS_TIMEOUT_S = 120

KILL_ATTEMPTS = 6


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _sweep_cmd(name, journal):
    return [
        sys.executable, "-m", "repro", "sweep", name,
        "--workers", "1", "--journal", str(journal),
    ]


def _run_to_completion(name, journal):
    proc = subprocess.run(
        _sweep_cmd(name, journal),
        env=_env(), capture_output=True, text=True,
        timeout=SUBPROCESS_TIMEOUT_S,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def _journal_records(journal):
    try:
        with open(journal, encoding="utf-8") as handle:
            return sum(1 for line in handle if line.strip())
    except FileNotFoundError:
        return 0


def _kill_mid_run(name, journal, min_records=2):
    """Start the sweep and SIGKILL it after >= ``min_records`` are
    journaled but before it finishes.  Returns True when the kill
    genuinely landed mid-run (journal incomplete)."""
    proc = subprocess.Popen(
        _sweep_cmd(name, journal),
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + SUBPROCESS_TIMEOUT_S
    try:
        while time.monotonic() < deadline:
            if _journal_records(journal) >= min_records:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.001)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - only on test bug
            proc.kill()
            proc.wait(timeout=30)
    return proc.returncode == -signal.SIGKILL


def _normalize(results):
    """Strip volatile fields; keep everything semantic."""
    normalized = {}
    for key, record in results.items():
        assert record is not None, f"record for {key} missing entirely"
        record = {
            k: v for k, v in record.items() if k not in VOLATILE_RECORD
        }
        if isinstance(record.get("result"), dict):
            record["result"] = {
                k: v for k, v in record["result"].items()
                if k not in VOLATILE_RESULT
            }
        normalized[key] = record
    return normalized


@pytest.mark.parametrize("name", ["hom", "cores", "treewidth"])
def test_sigkill_resume_matches_uninterrupted(name, tmp_path):
    baseline = _run_to_completion(name, tmp_path / "baseline.jsonl")

    journal = tmp_path / "killed.jsonl"
    killed_mid_run = False
    for attempt in range(KILL_ATTEMPTS):
        if journal.exists():
            journal.unlink()
        if _kill_mid_run(name, journal):
            records = _journal_records(journal)
            if 0 < records < baseline["instances"]:
                killed_mid_run = True
                break
    assert killed_mid_run, (
        f"could not SIGKILL the {name} sweep mid-run in "
        f"{KILL_ATTEMPTS} attempts — sweep too fast for the harness?"
    )

    resumed = _run_to_completion(name, journal)

    # The resumed run must actually resume, not recompute everything...
    assert resumed["resumed"] > 0
    assert resumed["resumed"] + resumed["computed"] == baseline["instances"]
    # ...must report a sane journal (a SIGKILL mid-write tears the tail;
    # recovery truncates it and says so)...
    assert resumed["journal"]["integrity"] in ("ok", "recovered")
    # ...and the merged results must equal the uninterrupted run's.
    assert _normalize(resumed["results"]) == _normalize(baseline["results"])


def test_double_kill_then_resume_still_converges(tmp_path):
    """Two successive mid-run SIGKILLs must not compound into loss."""
    baseline = _run_to_completion("cores", tmp_path / "baseline.jsonl")
    journal = tmp_path / "killed.jsonl"

    first_records = 0
    for attempt in range(KILL_ATTEMPTS):
        if journal.exists():
            journal.unlink()
        if _kill_mid_run("cores", journal, min_records=1):
            first_records = _journal_records(journal)
            if 0 < first_records < baseline["instances"]:
                break
    if not 0 < first_records < baseline["instances"]:
        pytest.skip("could not land the first mid-run kill")
    # Second pass resumes from the first kill's journal and is killed
    # again (it may finish first if little work remains — that is fine,
    # the point is that resume-after-resume converges).
    _kill_mid_run("cores", journal, min_records=first_records + 1)

    resumed = _run_to_completion("cores", journal)
    assert resumed["journal"]["integrity"] in ("ok", "recovered")
    assert _normalize(resumed["results"]) == _normalize(baseline["results"])
