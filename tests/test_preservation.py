"""Unit tests for the preservation checks and the FO -> UCQ rewriting."""

import pytest

from repro.core import (
    bounded_degree_class,
    check_preserved_under_homomorphisms,
    rewrite_to_ucq,
    rewrite_to_ucq_from_seeds,
    ucq_equivalent_to_query_on,
)
from repro.logic import parse_formula
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    directed_cycle,
    directed_path,
    random_directed_graph,
    single_loop,
)


def fo(text):
    return parse_formula(text, GRAPH_VOCABULARY)


WALK3 = fo("exists x y z. E(x, y) & E(y, z) & E(z, x)")
HAS_EDGE = fo("exists x y. E(x, y)")
TOTAL = fo("forall x. exists y. E(x, y)")

SAMPLES = [random_directed_graph(4, 0.35, s) for s in range(10)]
SAMPLES += [directed_cycle(3), directed_path(4), single_loop()]


class TestPreservationCheck:
    def test_ep_queries_pass(self):
        for query in (WALK3, HAS_EDGE):
            assert check_preserved_under_homomorphisms(query, SAMPLES) is None

    def test_totality_violation_found(self):
        # C3 is total; C3 plus a dangling out-vertexless element is not,
        # and the inclusion is a homomorphism.
        extended = directed_cycle(3).with_element(9).with_fact("E", (0, 9))
        violation = check_preserved_under_homomorphisms(
            TOTAL, [directed_cycle(3), extended]
        )
        assert violation is not None
        assert violation.source.size() == 3

    def test_negated_query_violation(self):
        no_loop = fo("~(exists x. E(x, x))")
        violation = check_preserved_under_homomorphisms(
            no_loop, [directed_cycle(3), single_loop()]
        )
        assert violation is not None

    def test_violation_carries_witness(self):
        from repro.homomorphism import is_homomorphism

        extended = directed_cycle(3).with_element(9).with_fact("E", (0, 9))
        violation = check_preserved_under_homomorphisms(
            TOTAL, [directed_cycle(3), extended]
        )
        assert is_homomorphism(
            violation.source, violation.target, violation.homomorphism
        )


class TestRewriting:
    def test_walk3_rewrites(self):
        result = rewrite_to_ucq(
            WALK3, GRAPH_VOCABULARY, max_size=3,
            verification_sample=SAMPLES,
        )
        assert result.mode == "exact"
        assert len(result.minimal_models) == 2
        assert result.verified_on == len(SAMPLES)
        # minimized union: the loop's query subsumes under the triangle's
        assert len(result.ucq) >= 1

    def test_rewritten_ucq_equivalent(self):
        result = rewrite_to_ucq(WALK3, GRAPH_VOCABULARY, max_size=3)
        assert ucq_equivalent_to_query_on(result.ucq, WALK3, SAMPLES)

    def test_has_edge_rewrites(self):
        result = rewrite_to_ucq(
            HAS_EDGE, GRAPH_VOCABULARY, max_size=2,
            verification_sample=SAMPLES,
        )
        assert ucq_equivalent_to_query_on(result.ucq, HAS_EDGE, SAMPLES)
        # minimized: the single edge subsumes the loop
        assert len(result.ucq) == 1

    def test_cap_too_small_detected(self):
        # minimal model of WALK3 has 3 elements; cap 2 misses the triangle
        with pytest.raises(AssertionError):
            rewrite_to_ucq(
                WALK3, GRAPH_VOCABULARY, max_size=2,
                verification_sample=[directed_cycle(3)],
            )

    def test_restricted_class(self):
        cls = bounded_degree_class(2)
        result = rewrite_to_ucq(
            WALK3, GRAPH_VOCABULARY, structure_class=cls, max_size=3,
            verification_sample=[s for s in SAMPLES if cls.contains(s)],
        )
        assert len(result.minimal_models) == 2

    def test_summary_text(self):
        result = rewrite_to_ucq(HAS_EDGE, GRAPH_VOCABULARY, max_size=2)
        assert "minimal models" in result.summary()


class TestSeedsMode:
    def test_seeds_rewriting(self):
        seeds = [directed_cycle(3), single_loop(), directed_cycle(6),
                 random_directed_graph(5, 0.5, 9)]
        result = rewrite_to_ucq_from_seeds(
            WALK3, seeds, GRAPH_VOCABULARY, verification_sample=SAMPLES
        )
        assert result.mode == "seeds"
        assert ucq_equivalent_to_query_on(result.ucq, WALK3, SAMPLES)

    def test_seeds_mode_is_sound_under_approximation(self):
        # with only the loop as seed, the UCQ misses triangle-only models
        result = rewrite_to_ucq_from_seeds(
            WALK3, [single_loop()], GRAPH_VOCABULARY
        )
        assert len(result.ucq) == 1
        assert not result.ucq.holds_in(directed_cycle(3))
        assert result.ucq.holds_in(single_loop())
