"""Unit tests for the serve layers below the socket: wire protocol
decoding (malformed / truncated / oversized inputs must become
structured errors, never exceptions of any other type), the admission
controller's reject/shed/expiry state machine, and the circuit
breaker's CLOSED/OPEN/HALF_OPEN transitions.

Everything here is pure logic with injectable clocks — no sockets, no
threads, no event loop.
"""

import json

import pytest

from repro.exceptions import ServeProtocolError, ValidationError
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionController,
    CircuitBreaker,
    Ticket,
    decode_frame,
    encode_frame,
    parse_request,
)
from repro.serve.service import decode_delta
from repro.structures import directed_cycle
from repro.structures.io import structure_to_dict


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ----------------------------------------------------------------------
# Frame decoding: total, structured, typed
# ----------------------------------------------------------------------
class TestDecodeFrame:
    def test_roundtrip(self):
        payload = {"op": "ping", "id": 7}
        assert decode_frame(encode_frame(payload).rstrip(b"\n")) == payload

    @pytest.mark.parametrize("raw", [
        b"not json",
        b"{truncated",
        b'{"op": "hom"',          # truncated mid-object
        b'{"op": }',
        b"\xff\xfe garbage",      # invalid UTF-8
        b'"just a string"',       # JSON, but not an object
        b"[1, 2, 3]",
        b"42",
        b"null",
    ])
    def test_malformed_is_structured(self, raw):
        with pytest.raises(ServeProtocolError) as exc:
            decode_frame(raw)
        assert exc.value.code == "bad-frame"

    def test_never_raises_anything_else(self):
        # A representative storm of hostile byte strings: the decoder's
        # contract is ServeProtocolError or a dict, nothing else.
        hostiles = [
            bytes([b % 256 for b in range(i, i + 40)]) for i in range(50)
        ]
        for raw in hostiles:
            try:
                out = decode_frame(raw)
            except ServeProtocolError:
                continue
            assert isinstance(out, dict)


# ----------------------------------------------------------------------
# Request parsing
# ----------------------------------------------------------------------
class TestParseRequest:
    def test_single_op_normalizes_to_batch_of_one(self):
        req = parse_request({"op": "hom", "id": "x"})
        assert req.op == "hom"
        assert req.weight == 1
        assert req.queries[0]["op"] == "hom"

    def test_batch_carries_weight(self):
        req = parse_request(
            {"op": "batch", "queries": [{"op": "hom"}, {"op": "core"}]}
        )
        assert req.weight == 2

    def test_missing_op(self):
        with pytest.raises(ServeProtocolError) as exc:
            parse_request({"id": 1})
        assert exc.value.code == "bad-request"

    def test_unknown_op(self):
        with pytest.raises(ServeProtocolError) as exc:
            parse_request({"op": "explode"})
        assert exc.value.code == "unknown-op"

    def test_unknown_op_inside_batch(self):
        with pytest.raises(ServeProtocolError) as exc:
            parse_request({"op": "batch", "queries": [{"op": "explode"}]})
        assert exc.value.code == "unknown-op"

    @pytest.mark.parametrize("deadline", ["soon", -1, 0, True, []])
    def test_bad_deadline(self, deadline):
        with pytest.raises(ServeProtocolError) as exc:
            parse_request({"op": "hom", "deadline_s": deadline})
        assert exc.value.code == "bad-request"

    @pytest.mark.parametrize("budget", ["many", -5, 0, 1.5, True])
    def test_bad_budget(self, budget):
        with pytest.raises(ServeProtocolError) as exc:
            parse_request({"op": "hom", "budget": budget})
        assert exc.value.code == "bad-request"

    def test_oversized_batch(self):
        queries = [{"op": "hom"}] * 65
        with pytest.raises(ServeProtocolError) as exc:
            parse_request({"op": "batch", "queries": queries})
        assert exc.value.code == "batch-too-large"

    def test_oversized_batch_respects_custom_cap(self):
        with pytest.raises(ServeProtocolError) as exc:
            parse_request(
                {"op": "batch", "queries": [{"op": "hom"}] * 3},
                max_batch=2,
            )
        assert exc.value.code == "batch-too-large"

    @pytest.mark.parametrize("queries", [None, [], "hom", [{"op": "hom"}, 3]])
    def test_bad_batch_shapes(self, queries):
        with pytest.raises(ServeProtocolError):
            parse_request({"op": "batch", "queries": queries})


# ----------------------------------------------------------------------
# Delta decoding (the edit op's payload)
# ----------------------------------------------------------------------
class TestDecodeDelta:
    def test_roundtrip(self):
        delta = decode_delta({
            "add_elements": [9],
            "add_facts": [["E", [0, 9]]],
            "remove_facts": [["E", [0, 1]]],
        })
        assert delta.add_elements == (9,)
        assert delta.add_facts == (("E", (0, 9)),)
        assert delta.remove_facts == (("E", (0, 1)),)

    @pytest.mark.parametrize("raw", [None, "delta", 42, []])
    def test_non_object(self, raw):
        with pytest.raises(ServeProtocolError):
            decode_delta(raw)

    @pytest.mark.parametrize("facts", [
        [["E"]], [["E", [0, 1], "extra"]], [[2, [0, 1]]], ["E"], [None],
    ])
    def test_bad_fact_shapes(self, facts):
        with pytest.raises(ServeProtocolError):
            decode_delta({"add_facts": facts})


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_first_requests_always_admitted(self):
        # No service history -> optimistic admission, even with a
        # microscopic deadline: rejecting on a made-up estimate is
        # worse than computing.
        adm = AdmissionController(clock=FakeClock())
        decision = adm.admit(Ticket(request_id=1, deadline_s=1e-6))
        assert decision.admitted

    def test_reject_before_compute_on_projected_wait(self):
        clock = FakeClock()
        adm = AdmissionController(clock=clock)
        adm.observe_service(2.0, 1)  # ewma = 2s per query
        adm.admit(Ticket(request_id=1))      # 2s projected behind this
        decision = adm.admit(Ticket(request_id=2, deadline_s=0.5))
        assert not decision.admitted
        assert "exceeds the request deadline" in decision.reason
        # A patient request still gets in.
        assert adm.admit(Ticket(request_id=3, deadline_s=60.0)).admitted

    def test_full_queue_sheds_oldest_deadline(self):
        clock = FakeClock()
        adm = AdmissionController(queue_limit=2, clock=clock)
        adm.admit(Ticket(request_id="tight", deadline_s=1.0))
        adm.admit(Ticket(request_id="loose", deadline_s=50.0))
        decision = adm.admit(Ticket(request_id="new", deadline_s=10.0))
        assert decision.admitted
        assert [t.request_id for t in decision.shed] == ["tight"]
        assert [t.request_id for t in adm.queue] == ["loose", "new"]

    def test_newcomer_with_earliest_deadline_is_shed(self):
        clock = FakeClock()
        adm = AdmissionController(queue_limit=2, clock=clock)
        adm.admit(Ticket(request_id=1, deadline_s=10.0))
        adm.admit(Ticket(request_id=2, deadline_s=20.0))
        decision = adm.admit(Ticket(request_id=3, deadline_s=0.5))
        assert not decision.admitted
        assert decision.shed == []
        assert len(adm.queue) == 2

    def test_deadline_less_tickets_never_lose_to_deadlined(self):
        clock = FakeClock()
        adm = AdmissionController(queue_limit=2, clock=clock)
        adm.admit(Ticket(request_id="patient"))          # no deadline
        adm.admit(Ticket(request_id="d1", deadline_s=5.0))
        decision = adm.admit(Ticket(request_id="d2", deadline_s=9.0))
        assert decision.admitted
        assert [t.request_id for t in decision.shed] == ["d1"]
        assert "patient" in [t.request_id for t in adm.queue]

    def test_expiry_on_dequeue(self):
        clock = FakeClock()
        adm = AdmissionController(clock=clock)
        adm.admit(Ticket(request_id="stale", deadline_s=1.0))
        adm.admit(Ticket(request_id="fresh", deadline_s=100.0))
        clock.advance(5.0)
        ticket, expired = adm.next_ready()
        assert ticket.request_id == "fresh"
        assert [t.request_id for t in expired] == ["stale"]

    def test_finish_updates_ewma_and_in_flight(self):
        clock = FakeClock()
        adm = AdmissionController(clock=clock)
        adm.admit(Ticket(request_id=1, weight=2))
        ticket, _ = adm.next_ready()
        assert adm.in_flight_weight == 2
        adm.finish(ticket, elapsed_s=1.0)
        assert adm.in_flight_weight == 0
        assert adm.service_ewma_s == pytest.approx(0.5)  # 1s / weight 2

    def test_drain_queue_empties(self):
        adm = AdmissionController(clock=FakeClock())
        adm.admit(Ticket(request_id=1))
        adm.admit(Ticket(request_id=2))
        drained = adm.drain_queue()
        assert len(drained) == 2 and adm.queue == []

    def test_queue_limit_validation(self):
        with pytest.raises(ValidationError):
            AdmissionController(queue_limit=0)

    def test_snapshot_is_json(self):
        adm = AdmissionController(clock=FakeClock())
        json.dumps(adm.snapshot())


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestBreaker:
    def make(self, threshold=3, cooldown=5.0):
        clock = FakeClock()
        return CircuitBreaker(
            failure_threshold=threshold, cooldown_s=cooldown, clock=clock
        ), clock

    def test_trips_after_consecutive_faults(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_fault(RuntimeError("boom"))
        assert breaker.state == CLOSED
        breaker.record_fault(RuntimeError("boom"))
        assert breaker.state == OPEN
        assert not breaker.allow_primary()

    def test_success_resets_streak(self):
        breaker, _ = self.make()
        breaker.record_fault(RuntimeError("boom"))
        breaker.record_fault(RuntimeError("boom"))
        breaker.record_success()
        breaker.record_fault(RuntimeError("boom"))
        breaker.record_fault(RuntimeError("boom"))
        assert breaker.state == CLOSED

    def test_half_open_probe_after_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_fault(RuntimeError("boom"))
        assert not breaker.allow_primary()
        clock.advance(5.1)
        assert breaker.allow_primary()       # the single probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow_primary()   # only one probe at a time

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1)
        breaker.record_fault(RuntimeError("boom"))
        clock.advance(10.0)
        assert breaker.allow_primary()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow_primary()

    def test_probe_fault_reopens(self):
        breaker, clock = self.make(threshold=3)
        for _ in range(3):
            breaker.record_fault(RuntimeError("boom"))
        clock.advance(10.0)
        assert breaker.allow_primary()
        breaker.record_fault(RuntimeError("still broken"))
        assert breaker.state == OPEN
        assert not breaker.allow_primary()
        assert breaker.trips == 2

    def test_validation(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(cooldown_s=-1.0)

    def test_snapshot_is_json(self):
        breaker, _ = self.make()
        breaker.record_fault(RuntimeError("boom"))
        json.dumps(breaker.snapshot())


# ----------------------------------------------------------------------
# Structure payloads survive the wire
# ----------------------------------------------------------------------
def test_structure_payload_roundtrips_through_frames():
    c3 = directed_cycle(3)
    frame = encode_frame({"op": "hom", "source": structure_to_dict(c3)})
    payload = decode_frame(frame.rstrip(b"\n"))
    from repro.structures.io import structure_from_dict

    assert structure_from_dict(payload["source"]) == c3
