"""Unit tests for ConjunctiveQuery."""

import pytest

from repro.exceptions import UnsupportedFragmentError, ValidationError
from repro.cq import ConjunctiveQuery, boolean_cq
from repro.logic import Atom, Const, Var, atom, parse_formula, satisfies
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    directed_clique,
    directed_cycle,
    directed_path,
    random_directed_graph,
)


def cq(text, vocab=GRAPH_VOCABULARY):
    return ConjunctiveQuery.from_formula(parse_formula(text, vocab), vocab)


class TestConstruction:
    def test_boolean(self):
        q = boolean_cq(GRAPH_VOCABULARY, [atom("E", "x", "y")])
        assert q.is_boolean() and q.arity() == 0
        assert q.variables() == ("x", "y")

    def test_head_must_be_safe(self):
        with pytest.raises(ValidationError):
            ConjunctiveQuery(GRAPH_VOCABULARY, ("z",), (atom("E", "x", "y"),))

    def test_arity_checked(self):
        with pytest.raises(ValidationError):
            ConjunctiveQuery(GRAPH_VOCABULARY, (), (atom("E", "x"),))

    def test_unknown_relation(self):
        with pytest.raises(ValidationError):
            ConjunctiveQuery(GRAPH_VOCABULARY, (), (atom("Z", "x"),))

    def test_unknown_constant(self):
        with pytest.raises(ValidationError):
            ConjunctiveQuery(
                GRAPH_VOCABULARY, (), (atom("E", "x", Const("c")),)
            )

    def test_repeated_head(self):
        q = ConjunctiveQuery(GRAPH_VOCABULARY, ("x", "x"),
                             (atom("E", "x", "y"),))
        assert q.arity() == 2


class TestFromFormula:
    def test_variables_renamed_apart(self):
        q = cq("exists x. (E(x, y) & exists x. E(y, x))")
        assert q.head == ("y",)
        assert len(q.variables()) == 3

    def test_rejects_disjunction(self):
        with pytest.raises(UnsupportedFragmentError):
            cq("E(x, y) | E(y, x)")

    def test_equality_substitution(self):
        q = cq("exists x y z. E(x, y) & y = z & E(z, x)")
        # y and z merged: only 2 variables remain
        assert len(q.variables()) == 2
        assert q.num_atoms() == 2

    def test_equality_between_free_vars(self):
        q = cq("E(x, y) & x = y")
        assert q.head == ("x", "x") or q.head == ("y", "y")
        # body uses the representative only
        assert len(q.variables()) == 1

    def test_equality_only_query_rejected(self):
        with pytest.raises(UnsupportedFragmentError):
            cq("x = y")

    def test_to_formula_round_trip(self):
        samples = [random_directed_graph(4, 0.4, s) for s in range(6)]
        q = cq("exists x. (E(x, y) & exists z. E(y, z))")
        f = q.to_formula()
        for s in samples:
            for e in s.universe:
                from repro.logic import evaluate

                direct = (e,) in q.evaluate(s)
                via_formula = evaluate(f, s, {"y": e})
                assert direct == via_formula


class TestCanonicalStructure:
    def test_elements_are_variables(self):
        q = cq("exists x y. E(x, y)")
        canon = q.canonical_structure()
        assert canon.size() == 2
        assert canon.num_facts() == 1

    def test_repeated_variable_makes_loop(self):
        q = cq("exists x. E(x, x)")
        canon = q.canonical_structure()
        assert canon.size() == 1
        element = canon.universe[0]
        assert canon.has_fact("E", (element, element))

    def test_constants_become_named_elements(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        q = ConjunctiveQuery(vocab, (), (atom("E", "x", Const("c")),))
        canon = q.canonical_structure()
        assert canon.size() == 2
        assert canon.constant("c") == ("const", "c")

    def test_frozen_structure_pins_head(self):
        q = cq("exists y. E(x, y)")
        frozen = q.frozen_structure()
        assert frozen.vocabulary.has_constant("__head_0")
        assert frozen.constant("__head_0") == ("var", "x")


class TestEvaluation:
    def test_boolean_satisfaction(self):
        q = cq("exists x y z. E(x, y) & E(y, z) & E(z, x)")
        assert q.holds_in(directed_cycle(3))
        assert not q.holds_in(directed_cycle(4))
        assert q.evaluate(directed_cycle(3)) == {()}
        assert q.evaluate(directed_cycle(4)) == set()

    def test_unary_answers(self):
        q = cq("exists y. E(x, y)")
        assert q.evaluate(directed_path(3)) == {(0,), (1,)}

    def test_binary_answers(self):
        q = cq("exists z. E(x, z) & E(z, y)")
        answers = q.evaluate(directed_path(4))
        assert answers == {(0, 2), (1, 3)}

    def test_matches_fo_semantics(self):
        samples = [random_directed_graph(4, 0.4, s) for s in range(6)]
        f = parse_formula(
            "exists x y. E(x, y) & E(y, x)", GRAPH_VOCABULARY
        )
        q = ConjunctiveQuery.from_formula(f, GRAPH_VOCABULARY)
        for s in samples:
            assert q.holds_in(s) == satisfies(s, f)

    def test_richer_vocabulary_target(self):
        # evaluating an E-query on a structure with extra relations
        vocab = Vocabulary({"E": 2, "P": 1})
        s = Structure(vocab, [0, 1], {"E": [(0, 1)], "P": [(0,)]})
        q = cq("exists x y. E(x, y)")
        assert q.holds_in(s)

    def test_str(self):
        q = cq("exists y. E(x, y)")
        text = str(q)
        assert "E(x," in text and "exists" in text
