"""Unit tests for repro.graphtheory.generators."""

import pytest

from repro.exceptions import ValidationError
from repro.graphtheory import (
    bicycle_graph,
    binary_tree,
    caterpillar,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    degree3_clique_expansion,
    degree3_clique_expansion_model,
    empty_graph,
    grid_graph,
    is_bipartite,
    is_connected,
    is_tree,
    k_tree,
    path_graph,
    random_graph,
    random_planar_like,
    random_regular_graph,
    random_tree,
    spider_graph,
    star_graph,
    wheel_graph,
    treewidth_exact,
    verify_minor_model,
)


class TestBasicFamilies:
    def test_empty_graph(self):
        g = empty_graph(4)
        assert g.num_vertices() == 4 and g.num_edges() == 0

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges() == 4 and is_tree(g)

    def test_single_vertex_path(self):
        assert path_graph(1).num_edges() == 0

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges() == 5
        assert all(g.degree(v) == 2 for v in g)

    def test_cycle_too_small(self):
        with pytest.raises(ValidationError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges() == 10

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.num_edges() == 12
        assert is_bipartite(g)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert is_tree(g)

    def test_spider(self):
        g = spider_graph(3, 4)
        assert g.num_vertices() == 13
        assert is_tree(g)
        assert g.degree("root") == 3

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices() == 12
        assert g.num_edges() == 3 * 3 + 2 * 4
        assert is_bipartite(g)

    def test_grid_invalid(self):
        with pytest.raises(ValidationError):
            grid_graph(0, 3)

    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.num_vertices() == 15
        assert is_tree(g)

    def test_caterpillar(self):
        g = caterpillar(4, 2)
        assert g.num_vertices() == 4 + 8
        assert is_tree(g)


class TestPaperFamilies:
    def test_wheel(self):
        g = wheel_graph(5)
        assert g.num_vertices() == 6
        assert g.degree("h") == 5
        assert all(g.degree(i) == 3 for i in range(5))

    def test_wheel_too_small(self):
        with pytest.raises(ValidationError):
            wheel_graph(2)

    def test_bicycle_is_disjoint_union(self):
        g = bicycle_graph(5)
        assert g.num_vertices() == 6 + 4
        assert not is_connected(g)

    def test_degree3_expansion_degree(self):
        for k in (4, 5, 6):
            assert degree3_clique_expansion(k).max_degree() <= 3

    def test_degree3_expansion_has_clique_minor(self):
        k = 5
        host = degree3_clique_expansion(k)
        model = degree3_clique_expansion_model(k)
        assert verify_minor_model(host, complete_graph(k), model)

    def test_k_tree_treewidth(self):
        g = k_tree(2, 12, seed=7)
        assert treewidth_exact(g) == 2

    def test_k_tree_too_small(self):
        with pytest.raises(ValidationError):
            k_tree(3, 3)


class TestRandomFamilies:
    def test_random_graph_deterministic(self):
        assert random_graph(10, 0.5, seed=1) == random_graph(10, 0.5, seed=1)

    def test_random_graph_probability_bounds(self):
        assert random_graph(5, 0.0, seed=1).num_edges() == 0
        assert random_graph(5, 1.0, seed=1).num_edges() == 10
        with pytest.raises(ValidationError):
            random_graph(5, 1.5)

    def test_random_regular_degrees(self):
        g = random_regular_graph(10, 3, seed=2)
        assert all(g.degree(v) <= 3 for v in g)
        # pairing model usually succeeds exactly
        assert sum(g.degree(v) for v in g) >= 10 * 3 - 6

    def test_random_regular_parity(self):
        with pytest.raises(ValidationError):
            random_regular_graph(5, 3)

    def test_random_regular_degree_too_big(self):
        with pytest.raises(ValidationError):
            random_regular_graph(4, 4)

    def test_random_tree_is_tree(self):
        for seed in range(5):
            assert is_tree(random_tree(20, seed=seed))

    def test_random_tree_single(self):
        assert random_tree(1).num_vertices() == 1

    def test_random_tree_invalid(self):
        with pytest.raises(ValidationError):
            random_tree(0)

    def test_random_planar_like_treewidth_two(self):
        g = random_planar_like(12, seed=4)
        assert treewidth_exact(g) <= 2
        assert is_connected(g)

    def test_random_planar_like_tiny(self):
        assert random_planar_like(2).num_vertices() == 2
