"""Unit tests for Gaifman graphs and structure/graph conversions."""

from repro.graphtheory import cycle_graph, grid_graph, is_connected, path_graph
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    gaifman_graph,
    graph_as_structure,
    structure_as_graph,
    structure_degree,
    structure_treewidth,
    structure_treewidth_upper_bound,
    directed_cycle,
)


class TestGaifmanGraph:
    def test_directed_edges_become_undirected(self):
        g = gaifman_graph(directed_cycle(3))
        assert g.num_edges() == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_ternary_relation_makes_triangle(self):
        vocab = Vocabulary({"T": 3})
        s = Structure(vocab, [0, 1, 2], {"T": [(0, 1, 2)]})
        g = gaifman_graph(s)
        assert g.num_edges() == 3

    def test_repeated_elements_no_loop(self):
        s = Structure(GRAPH_VOCABULARY, [0], {"E": [(0, 0)]})
        g = gaifman_graph(s)
        assert g.num_edges() == 0

    def test_isolated_elements_kept(self):
        s = Structure(GRAPH_VOCABULARY, [0, 1], {})
        assert gaifman_graph(s).num_vertices() == 2

    def test_constants_add_no_edges(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        s = Structure(vocab, [0, 1], {"E": [(0, 1)]}, {"c": 0})
        assert gaifman_graph(s).num_edges() == 1


class TestMeasures:
    def test_degree(self):
        s = graph_as_structure(grid_graph(3, 3))
        assert structure_degree(s) == 4

    def test_treewidth(self):
        assert structure_treewidth(graph_as_structure(path_graph(6))) == 1
        assert structure_treewidth(graph_as_structure(cycle_graph(5))) == 2

    def test_treewidth_upper_bound(self):
        s = graph_as_structure(grid_graph(3, 3))
        assert structure_treewidth_upper_bound(s) >= 3


class TestConversions:
    def test_round_trip(self):
        g = grid_graph(2, 3)
        s = graph_as_structure(g)
        assert structure_as_graph(s) == g

    def test_symmetric_encoding(self):
        s = graph_as_structure(path_graph(2))
        assert s.has_fact("E", (0, 1)) and s.has_fact("E", (1, 0))

    def test_asymmetric_encoding(self):
        s = graph_as_structure(path_graph(2), symmetric=False)
        assert s.num_facts() == 1

    def test_connectivity_preserved(self):
        s = graph_as_structure(cycle_graph(5))
        assert is_connected(gaifman_graph(s))
