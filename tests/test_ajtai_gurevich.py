"""Unit tests for Section 7: Lemma 7.3 and the VCQk machinery."""

import pytest

from repro.core import (
    VCQkSentence,
    directed_cycle_is_nonwitness,
    finite_vcqk,
    lemma_7_3_witness,
)
from repro.cq import path_sentence_two_variables
from repro.exceptions import UnsupportedFragmentError, ValidationError
from repro.homomorphism import is_homomorphism
from repro.logic import parse_formula
from repro.structures import (
    GRAPH_VOCABULARY,
    directed_cycle,
    directed_path,
    random_directed_graph,
    single_loop,
)


def paths_sentence(lengths, k=2):
    return finite_vcqk(
        [path_sentence_two_variables(n) for n in lengths], k
    )


class TestVCQkSentence:
    def test_holds_in(self):
        sentence = paths_sentence([2, 4])
        assert sentence.holds_in(directed_path(3))     # has path of length 2
        assert not sentence.holds_in(directed_path(2))

    def test_infinite_presentation(self):
        # "path of length n for every even n" — an infinite ∨CQ^2
        def disjunct(i):
            return path_sentence_two_variables(2 * (i + 1))

        sentence = VCQkSentence(2, disjunct, prefix_hint=16)
        assert sentence.holds_in(directed_path(3))
        assert not sentence.holds_in(directed_path(2))

    def test_variable_budget_enforced(self):
        bad = finite_vcqk(
            [parse_formula("exists x y z. E(x,y) & E(y,z) & E(z,x)",
                           GRAPH_VOCABULARY)],
            2,
        )
        with pytest.raises(UnsupportedFragmentError):
            bad.holds_in(directed_cycle(3))

    def test_shape_enforced(self):
        bad = finite_vcqk(
            [parse_formula("exists x. ~E(x, x)", GRAPH_VOCABULARY)], 2
        )
        with pytest.raises(UnsupportedFragmentError):
            bad.disjuncts_up_to(1)

    def test_disjuncts_stop_at_none(self):
        sentence = paths_sentence([1, 2])
        assert len(sentence.disjuncts_up_to(10)) == 2


class TestLemma73:
    def test_witness_on_cycle(self):
        sentence = paths_sentence([1, 2, 3])
        witness = lemma_7_3_witness(sentence, directed_cycle(5))
        assert witness.treewidth < 2
        assert is_homomorphism(
            witness.minimal_model, directed_cycle(5), witness.homomorphism
        )
        # the minimal model must itself model the sentence
        assert sentence.holds_in(witness.minimal_model)

    def test_witness_on_loop(self):
        sentence = paths_sentence([1, 2, 3])
        witness = lemma_7_3_witness(sentence, single_loop())
        assert witness.treewidth < 2
        # the hom collapses the path onto the loop, and the image covers it
        assert witness.surjective

    def test_non_model_rejected(self):
        sentence = paths_sentence([3])
        with pytest.raises(ValidationError):
            lemma_7_3_witness(sentence, directed_path(2))

    def test_minimal_model_minimality(self):
        from repro.core import is_minimal_model

        sentence = paths_sentence([2])
        witness = lemma_7_3_witness(sentence, directed_path(5))
        assert is_minimal_model(
            lambda s: sentence.holds_in(s), witness.minimal_model,
            assume_preserved=True,
        )

    def test_random_models(self):
        sentence = paths_sentence([1, 2])
        for seed in range(5):
            s = random_directed_graph(4, 0.4, seed)
            if sentence.holds_in(s):
                witness = lemma_7_3_witness(sentence, s)
                assert witness.treewidth < 2


class TestPaperCorrection:
    def test_c3_counterexample(self):
        """Section 7.1: C_3 is a minimal model of the CQ^2 path-of-3
        sentence yet has treewidth 2 — refuting the preliminary claim."""
        c3, treewidth = directed_cycle_is_nonwitness()
        assert treewidth == 2

    def test_but_lemma_7_3_still_provides_low_treewidth_model(self):
        """Lemma 7.3's repair: C_3 is the *image* of a treewidth-1
        minimal model (the path P_4)."""
        sentence = paths_sentence([3])
        witness = lemma_7_3_witness(sentence, directed_cycle(3))
        assert witness.treewidth == 1
        assert witness.minimal_model.size() == 4
        assert witness.surjective
