"""Unit tests for structure generators."""

import pytest

from repro.exceptions import ValidationError
from repro.structures import (
    GRAPH_VOCABULARY,
    Vocabulary,
    bicycle_structure,
    bicycle_with_hub_constant,
    clique_structure,
    directed_clique,
    directed_cycle,
    directed_path,
    grid_structure,
    path_with_random_chords,
    random_directed_graph,
    random_structure,
    single_edge,
    single_loop,
    star_structure,
    structure_degree,
    two_coloring_structure,
    undirected_cycle,
    undirected_path,
    wheel_structure,
)
from repro.graphtheory import path_graph


class TestDirectedFamilies:
    def test_path(self):
        p = directed_path(4)
        assert p.size() == 4 and p.num_facts() == 3
        assert p.has_fact("E", (0, 1))

    def test_cycle(self):
        c = directed_cycle(4)
        assert c.num_facts() == 4
        assert c.has_fact("E", (3, 0))

    def test_clique(self):
        k = directed_clique(3)
        assert k.num_facts() == 6

    def test_single_edge_and_loop(self):
        assert single_edge().num_facts() == 1
        assert single_loop().has_fact("E", (0, 0))

    def test_invalid_sizes(self):
        with pytest.raises(ValidationError):
            directed_path(0)
        with pytest.raises(ValidationError):
            directed_cycle(0)


class TestUndirectedFamilies:
    def test_undirected_path_symmetric(self):
        p = undirected_path(3)
        assert p.has_fact("E", (0, 1)) and p.has_fact("E", (1, 0))

    def test_undirected_cycle(self):
        assert undirected_cycle(5).num_facts() == 10

    def test_clique_structure_degree(self):
        assert structure_degree(clique_structure(5)) == 4

    def test_star_structure(self):
        assert structure_degree(star_structure(7)) == 7

    def test_grid_structure(self):
        g = grid_structure(2, 3)
        assert g.size() == 6


class TestPaperStructures:
    def test_wheel(self):
        w = wheel_structure(5)
        assert w.size() == 6
        assert structure_degree(w) == 5

    def test_bicycle(self):
        b = bicycle_structure(5)
        assert b.size() == 10

    def test_bicycle_with_hub(self):
        b = bicycle_with_hub_constant(5)
        assert b.vocabulary.has_constant("c1")
        assert b.constant("c1") == (0, "h")


class TestRandomStructures:
    def test_deterministic(self):
        a = random_structure(GRAPH_VOCABULARY, 5, 0.3, seed=7)
        b = random_structure(GRAPH_VOCABULARY, 5, 0.3, seed=7)
        assert a == b

    def test_density_extremes(self):
        empty = random_structure(GRAPH_VOCABULARY, 4, 0.0, seed=1)
        assert empty.num_facts() == 0
        full = random_structure(GRAPH_VOCABULARY, 3, 1.0, seed=1)
        assert full.num_facts() == 9

    def test_constants_assigned(self):
        vocab = GRAPH_VOCABULARY.with_constants(["c"])
        s = random_structure(vocab, 4, 0.5, seed=2)
        assert s.constant("c") in s.universe_set

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            random_structure(GRAPH_VOCABULARY, 0, 0.5)
        with pytest.raises(ValidationError):
            random_structure(GRAPH_VOCABULARY, 3, 2.0)

    def test_random_directed_loopless(self):
        s = random_directed_graph(6, 0.5, seed=3)
        assert all(x != y for (x, y) in s.relation("E"))

    def test_chords_are_forward(self):
        s = path_with_random_chords(8, 5, seed=4)
        assert all(x < y for (x, y) in s.relation("E"))

    def test_ternary_vocabulary(self):
        vocab = Vocabulary({"T": 3})
        s = random_structure(vocab, 3, 0.2, seed=5)
        for tup in s.relation("T"):
            assert len(tup) == 3


class TestColoredStructure:
    def test_partition(self):
        s = two_coloring_structure(path_graph(4))
        reds = {v for (v,) in s.relation("Red")}
        blues = {v for (v,) in s.relation("Blue")}
        assert reds | blues == s.universe_set
        assert not reds & blues
