"""E3 — Lemma 4.2 / Theorem 4.4: scattered sets in bounded treewidth.

Sweep treewidth-bounded families (stars, paths, random trees,
caterpillars, 2-trees) and run the constructive proof of Lemma 4.2.
Shape: every instance succeeds with at most ``k`` removals; stars force
Case 1 (bag of a high-degree tree node), long paths succeed without
removals, and the removal count never exceeds the treewidth bound.
"""

from _tables import emit_table, run_once

from repro.core import lemma_4_2_witness
from repro.graphtheory import (
    caterpillar,
    k_tree,
    path_graph,
    random_tree,
    spider_graph,
    star_graph,
)


def run_experiment():
    d, m = 1, 4
    workloads = [
        ("star(30)", star_graph(30), 2),
        ("star(60)", star_graph(60), 2),
        ("path(40)", path_graph(40), 2),
        ("path(80)", path_graph(80), 2),
        ("random_tree(40)", random_tree(40, seed=1), 2),
        ("random_tree(80)", random_tree(80, seed=2), 2),
        ("caterpillar(12,3)", caterpillar(12, 3), 2),
        ("spider(8,3)", spider_graph(8, 3), 2),
        ("2-tree(30)", k_tree(2, 30, seed=3), 3),
        ("2-tree(50)", k_tree(2, 50, seed=4), 3),
    ]
    rows = []
    for name, graph, k in workloads:
        witness = lemma_4_2_witness(graph, k, d, m)
        rows.append((
            name,
            k,
            graph.num_vertices(),
            witness is not None,
            witness.method if witness else "-",
            len(witness.removed) if witness else -1,
        ))
    return rows


def bench_e03_treewidth_scattered(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit_table(
        "e03_treewidth_scattered",
        "E3  Lemma 4.2: d=1, m=4; remove <= k vertices, scatter the rest",
        ["family", "k", "n", "found", "proof case", "|B|"],
        rows,
    )
    assert all(row[3] for row in rows)
    assert all(row[5] <= row[1] for row in rows)
    # stars need a removal; long paths do not
    star_rows = [r for r in rows if r[0].startswith("star")]
    path_rows = [r for r in rows if r[0].startswith("path")]
    assert all(r[5] >= 1 for r in star_rows)
    assert all(r[5] == 0 for r in path_rows)
