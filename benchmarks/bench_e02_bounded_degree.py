"""E2 — Lemma 3.4 / Theorem 3.5: scattered sets in bounded degree.

Sweep bounded-degree families (cycles, grids, random 3-regular graphs)
against both the bound ``N = m * k^d`` *as printed* and the corrected
bound ``N_safe = m * B(k, 2d)`` (ball of radius 2d).

**Reproduction finding (erratum):** the printed constant is too small —
the proof's packing blocks balls of radius ``2d``.  ``C_13`` (degree 2)
has ``13 > N(2,1,6) = 12`` vertices but its largest 1-scattered set has
only 4 members.  Shape: above the *corrected* bound the witness always
exists (greedily); between the bounds the greedy can fail while exact
search may still succeed; ``C_13`` fails outright.
"""

from _tables import emit_table, run_once

from repro.core import lemma_3_4_bound, lemma_3_4_safe_bound, lemma_3_4_witness
from repro.graphtheory import cycle_graph, grid_graph, random_regular_graph


def run_experiment():
    d, m = 2, 4
    rows = []
    workloads = []
    for n in (10, 20, 50, 100, 200):
        workloads.append((f"cycle({n})", cycle_graph(n), 2, d, m))
    for side in (6, 8, 12):
        workloads.append(
            (f"grid({side}x{side})", grid_graph(side, side), 4, d, m)
        )
    for n in (40, 80, 160):
        workloads.append(
            (f"3-regular({n})", random_regular_graph(n, 3, seed=n), 3, d, m)
        )
    # the erratum witness: printed bound fails on C_13 at (k,d,m)=(2,1,6)
    workloads.append(("cycle(13) [erratum]", cycle_graph(13), 2, 1, 6))
    for name, graph, k, dd, mm in workloads:
        bound = lemma_3_4_bound(k, dd, mm)
        safe = lemma_3_4_safe_bound(k, dd, mm)
        witness = lemma_3_4_witness(graph, k, dd, mm)
        rows.append((
            name,
            k,
            graph.num_vertices(),
            bound,
            safe,
            graph.num_vertices() > bound,
            graph.num_vertices() > safe,
            witness.method if witness else "none",
        ))
    return rows


def bench_e02_bounded_degree(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit_table(
        "e02_bounded_degree",
        "E2  Lemma 3.4: printed bound m*k^d vs corrected m*B(k,2d)",
        ["family", "k", "n", "N printed", "N safe", "n>N", "n>N_safe",
         "witness"],
        rows,
    )
    # Above the corrected bound, the greedy proof always succeeds.
    for row in rows:
        if row[6]:
            assert row[7] == "greedy", row
    # The erratum instance exceeds the printed bound yet has no witness.
    erratum = rows[-1]
    assert erratum[5] and not erratum[6]
    assert erratum[7] == "none"
