"""E16 — Section 7.3's boundary: Datalog with ~EDB / != escapes
homomorphism preservation.

"The Ajtai–Gurevich theorem fails both for Datalog programs with negated
extensional predicates and for Datalog programs with inequalities ... the
results are very tightly connected to preservation under homomorphisms."

The sweep: pure Datalog queries (bounded and unbounded) always pass the
sampled homomorphism-preservation check; semipositive queries violate it
with explicit witnesses — the precise reason the Section 7 machinery
stops at them.
"""

from _tables import emit_table, run_once

from repro.core import check_preserved_under_homomorphisms
from repro.datalog import (
    asymmetric_edge_program,
    bounded_two_step_program,
    distinct_pair_program,
    evaluate_semi_naive,
    evaluate_semipositive,
    semipositive_breaks_hom_preservation,
    transitive_closure_program,
)
from repro.structures import (
    directed_clique,
    directed_cycle,
    directed_path,
    random_directed_graph,
    single_loop,
)


def run_experiment():
    samples = [random_directed_graph(3, 0.4, s) for s in range(6)]
    samples += [directed_path(2), directed_path(3), directed_cycle(3),
                single_loop(), directed_clique(3)]

    def pure_query(program, predicate):
        def q(structure):
            return bool(
                evaluate_semi_naive(program, structure).relations[predicate]
            )
        return q

    def semi_query(program, predicate):
        def q(structure):
            return bool(evaluate_semipositive(program, structure)[predicate])
        return q

    workloads = [
        ("TC (pure)", pure_query(transitive_closure_program(), "T")),
        ("two-step (pure)", pure_query(bounded_two_step_program(), "R")),
        ("asym edge (~EDB)", semi_query(asymmetric_edge_program(), "Hit")),
        ("distinct pair (!=)", semi_query(distinct_pair_program(), "Pair")),
    ]
    rows = []
    for name, query in workloads:
        violation = check_preserved_under_homomorphisms(query, samples)
        rows.append((
            name,
            violation is None,
            "-" if violation is None else
            f"{violation.source.size()}->{violation.target.size()} elts",
        ))
    canonical = semipositive_breaks_hom_preservation()
    return rows, canonical


def bench_e16_semipositive(benchmark):
    rows, canonical = run_once(benchmark, run_experiment)
    emit_table(
        "e16_semipositive",
        "E16 §7.3: pure Datalog is hom-preserved; Datalog(~EDB, !=) is not",
        ["query", "preserved on sample", "violation"],
        rows,
    )
    named = {row[0]: row[1] for row in rows}
    assert named["TC (pure)"] and named["two-step (pure)"]
    assert not named["asym edge (~EDB)"]
    assert not named["distinct pair (!=)"]
    assert canonical
