"""P4 — substrate performance: Datalog evaluation engines.

Naive vs semi-naive bottom-up evaluation of transitive closure across
instance sizes — the classical crossover the Datalog literature reports
(semi-naive asymptotically dominates).  Also times stage unfolding and
the boundedness probes, which now run semi-naively; the naive benches
stay as the ablation baseline that crossover is measured against.
"""

import pytest

from repro.datalog import (
    evaluate_naive,
    evaluate_semi_naive,
    rounds_to_fixpoint,
    stage_ucqs,
    transitive_closure_program,
    unboundedness_evidence,
)
from repro.structures import directed_cycle, directed_path, random_directed_graph


@pytest.mark.parametrize("n", [8, 16, 24])
def bench_p04_naive_tc_path(benchmark, n):
    program = transitive_closure_program()
    result = benchmark(evaluate_naive, program, directed_path(n))
    assert len(result.relations["T"]) == n * (n - 1) // 2


@pytest.mark.parametrize("n", [8, 16, 24])
def bench_p04_semi_naive_tc_path(benchmark, n):
    program = transitive_closure_program()
    result = benchmark(evaluate_semi_naive, program, directed_path(n))
    assert len(result.relations["T"]) == n * (n - 1) // 2


@pytest.mark.parametrize("n", [6, 10])
def bench_p04_semi_naive_tc_dense(benchmark, n):
    program = transitive_closure_program()
    target = random_directed_graph(n, 0.4, seed=n)
    benchmark(evaluate_semi_naive, program, target)


def bench_p04_tc_on_cycle(benchmark):
    program = transitive_closure_program()
    result = benchmark(evaluate_semi_naive, program, directed_cycle(12))
    assert len(result.relations["T"]) == 144


@pytest.mark.parametrize("stage", [2, 3, 4])
def bench_p04_stage_unfolding(benchmark, stage):
    program = transitive_closure_program()
    stages = benchmark(stage_ucqs, program, stage)
    assert len(stages[stage]["T"]) == stage


@pytest.mark.parametrize("n", [12, 24])
def bench_p04_boundedness_probe(benchmark, n):
    # the rounds-to-fixpoint probe is the hot path of the empirical
    # unboundedness sweeps; routed through the semi-naive engine
    program = transitive_closure_program()
    rounds = benchmark(rounds_to_fixpoint, program, directed_path(n))
    assert rounds == n - 1


def bench_p04_unboundedness_evidence(benchmark):
    program = transitive_closure_program()
    growth = benchmark(
        unboundedness_evidence, program, directed_path, [4, 8, 12]
    )
    assert growth == [3, 7, 11]
