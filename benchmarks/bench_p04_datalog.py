"""P4 — substrate performance: Datalog evaluation engines.

Naive vs semi-naive bottom-up evaluation of transitive closure across
instance sizes — the classical crossover the Datalog literature reports
(semi-naive asymptotically dominates).  Also times stage unfolding and
the boundedness probes, which now run semi-naively; the naive benches
stay as the ablation baseline that crossover is measured against.

Run as a script for the *crossover* mode, which races both engines on a
named instance grid and reports per-instance timings as JSON::

    python benchmarks/bench_p04_datalog.py --repeat 3
    python benchmarks/bench_p04_datalog.py --only path-16

``--only SUBSTRING`` restricts to instances whose name contains the
substring; an unmatched filter exits 2 with the valid names
(:class:`~repro.exceptions.UnknownInstanceError`).
"""

import argparse
import json
import sys
import time

import pytest

from repro.datalog import (
    evaluate_naive,
    evaluate_semi_naive,
    rounds_to_fixpoint,
    stage_ucqs,
    transitive_closure_program,
    unboundedness_evidence,
)
from repro.structures import directed_cycle, directed_path, random_directed_graph


@pytest.mark.parametrize("n", [8, 16, 24])
def bench_p04_naive_tc_path(benchmark, n):
    program = transitive_closure_program()
    result = benchmark(evaluate_naive, program, directed_path(n))
    assert len(result.relations["T"]) == n * (n - 1) // 2


@pytest.mark.parametrize("n", [8, 16, 24])
def bench_p04_semi_naive_tc_path(benchmark, n):
    program = transitive_closure_program()
    result = benchmark(evaluate_semi_naive, program, directed_path(n))
    assert len(result.relations["T"]) == n * (n - 1) // 2


@pytest.mark.parametrize("n", [6, 10])
def bench_p04_semi_naive_tc_dense(benchmark, n):
    program = transitive_closure_program()
    target = random_directed_graph(n, 0.4, seed=n)
    benchmark(evaluate_semi_naive, program, target)


def bench_p04_tc_on_cycle(benchmark):
    program = transitive_closure_program()
    result = benchmark(evaluate_semi_naive, program, directed_cycle(12))
    assert len(result.relations["T"]) == 144


@pytest.mark.parametrize("stage", [2, 3, 4])
def bench_p04_stage_unfolding(benchmark, stage):
    program = transitive_closure_program()
    stages = benchmark(stage_ucqs, program, stage)
    assert len(stages[stage]["T"]) == stage


@pytest.mark.parametrize("n", [12, 24])
def bench_p04_boundedness_probe(benchmark, n):
    # the rounds-to-fixpoint probe is the hot path of the empirical
    # unboundedness sweeps; routed through the semi-naive engine
    program = transitive_closure_program()
    rounds = benchmark(rounds_to_fixpoint, program, directed_path(n))
    assert rounds == n - 1


def bench_p04_unboundedness_evidence(benchmark):
    program = transitive_closure_program()
    growth = benchmark(
        unboundedness_evidence, program, directed_path, [4, 8, 12]
    )
    assert growth == [3, 7, 11]


# ----------------------------------------------------------------------
# Crossover mode (script entry point)
# ----------------------------------------------------------------------
def crossover_workload():
    """Named TC targets for the naive/semi-naive race, as deterministic
    ``(name, structure)`` pairs."""
    pairs = [(f"path-{n:02d}", directed_path(n)) for n in (8, 16, 24)]
    pairs.extend(
        (f"dense-{n:02d}", random_directed_graph(n, 0.4, seed=n))
        for n in (6, 10)
    )
    pairs.append(("cycle-12", directed_cycle(12)))
    return pairs


def run_crossover(repeat: int, only=None) -> dict:
    """Race naive vs semi-naive TC on each instance (best of ``repeat``)."""
    from repro.parallel.sweeps import filter_instances

    pairs = crossover_workload()
    if only is not None:
        pairs = filter_instances(pairs, only)
    program = transitive_closure_program()
    rows = []
    disagreements = 0
    for name, target in pairs:
        naive_s = semi_s = float("inf")
        naive_result = semi_result = None
        for _ in range(repeat):
            started = time.perf_counter()
            naive_result = evaluate_naive(program, target)
            naive_s = min(naive_s, time.perf_counter() - started)
            started = time.perf_counter()
            semi_result = evaluate_semi_naive(program, target)
            semi_s = min(semi_s, time.perf_counter() - started)
        agree = (
            naive_result.relations["T"] == semi_result.relations["T"]
        )
        disagreements += not agree
        rows.append({
            "instance": name,
            "facts": len(semi_result.relations["T"]),
            "naive_s": naive_s,
            "semi_naive_s": semi_s,
            "speedup": naive_s / semi_s if semi_s > 0 else float("inf"),
            "agree": agree,
        })
    return {
        "mode": "datalog-crossover",
        "repeat": repeat,
        "instances": [name for name, _ in pairs],
        "rows": rows,
        "disagreements": disagreements,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="naive vs semi-naive Datalog crossover (JSON output)"
    )
    parser.add_argument("--repeat", type=int, default=3,
                        help="best-of runs per instance and engine")
    parser.add_argument("--only", metavar="SUBSTRING", default=None,
                        help="restrict to instances whose name contains "
                             "SUBSTRING (unknown filters exit 2 with the "
                             "valid names)")
    args = parser.parse_args(argv)

    from repro.exceptions import UnknownInstanceError

    try:
        report = run_crossover(args.repeat, only=args.only)
    except UnknownInstanceError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(json.dumps(report, indent=2))
    return 0 if not report["disagreements"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
