"""E13 — Proposition 7.9(1) via Ehrenfeucht–Fraïssé games.

The paper: "the query 'is it acyclic?' is not first-order definable
(this can be shown using Ehrenfeucht–Fraïssé games)".  The sweep plays
the actual games: for each quantifier rank ``m``, the pair
``C_n ⊔ P_n`` (cyclic) versus ``P_{2n}`` (acyclic) is ``≡_m``-equivalent
— so no rank-``m`` sentence can be the acyclicity query — while small
control pairs *are* distinguished, pinning the separating ranks.
"""

from _tables import emit_table, run_once

from repro.logic import (
    acyclicity_separating_pair,
    ef_equivalent,
    separating_rank,
)
from repro.pebble import has_directed_cycle
from repro.structures import directed_cycle, directed_path, single_loop


def run_experiment():
    equivalence_rows = []
    for m, n in ((1, 3), (2, 5), (2, 8)):
        cyclic, acyclic = acyclicity_separating_pair(n)
        assert has_directed_cycle(cyclic) and not has_directed_cycle(acyclic)
        equivalence_rows.append((
            m, n, cyclic.size(), acyclic.size(),
            ef_equivalent(cyclic, acyclic, m),
        ))

    control_rows = []
    controls = [
        ("loop vs P2", single_loop(), directed_path(2)),
        ("C3 vs P3", directed_cycle(3), directed_path(3)),
        ("C3 vs C4", directed_cycle(3), directed_cycle(4)),
        ("C4 vs C5", directed_cycle(4), directed_cycle(5)),
    ]
    for name, a, b in controls:
        control_rows.append((name, separating_rank(a, b, max_rounds=3)))
    return equivalence_rows, control_rows


def bench_e13_ef_acyclicity(benchmark):
    equivalence_rows, control_rows = run_once(benchmark, run_experiment)
    emit_table(
        "e13_ef_equivalence",
        "E13a Prop 7.9(1): (C_n + P_n) ≡_m P_2n — no rank-m acyclicity test",
        ["rank m", "n", "|cyclic|", "|acyclic|", "equivalent"],
        equivalence_rows,
    )
    emit_table(
        "e13_ef_controls",
        "E13b separating ranks of control pairs (games do distinguish)",
        ["pair", "separating rank"],
        control_rows,
    )
    assert all(row[4] for row in equivalence_rows)
    ranks = dict(control_rows)
    assert ranks["loop vs P2"] == 1
    assert ranks["C3 vs P3"] == 2   # a path has a sink
    assert ranks["C3 vs C4"] == 2   # non-adjacent pair exists only in C4
