"""P5 — substrate performance: existential k-pebble game solver.

The greatest-fixed-point computation scales with |A|^k * |B|^k; these
benches pin the practical envelope used by experiments E9/E11.
"""

import pytest

from repro.pebble import ExistentialPebbleGame, duplicator_wins
from repro.structures import directed_cycle, directed_path, random_directed_graph


@pytest.mark.parametrize("n", [4, 6, 8])
def bench_p05_two_pebbles_path(benchmark, n):
    result = benchmark(duplicator_wins, directed_cycle(3),
                       directed_path(n), 2)
    assert result is False


@pytest.mark.parametrize("n", [4, 6, 8])
def bench_p05_two_pebbles_cycle(benchmark, n):
    result = benchmark(duplicator_wins, directed_cycle(3),
                       directed_cycle(n), 2)
    assert result is True


@pytest.mark.parametrize("k", [2, 3])
def bench_p05_k_pebbles_random(benchmark, k):
    a = random_directed_graph(4, 0.35, seed=1)
    b = random_directed_graph(5, 0.35, seed=2)
    benchmark(duplicator_wins, a, b, k)


def bench_p05_winning_family_size(benchmark):
    def harness():
        game = ExistentialPebbleGame(directed_cycle(3), directed_cycle(6), 2)
        return len(game.winning_family())

    size = benchmark(harness)
    assert size > 0
