"""P5 — substrate performance: existential k-pebble game solver.

The greatest-fixed-point computation scales with |A|^k * |B|^k; these
benches pin the practical envelope used by experiments E9/E11.

Run as a script for the *envelope* mode, which times the solver on a
named instance grid and reports per-instance results as JSON::

    python benchmarks/bench_p05_pebble.py --repeat 3
    python benchmarks/bench_p05_pebble.py --only k2/c3-vs-cycle

``--only SUBSTRING`` restricts to instances whose name contains the
substring; an unmatched filter exits 2 with the valid names
(:class:`~repro.exceptions.UnknownInstanceError`).
"""

import argparse
import json
import sys
import time

import pytest

from repro.pebble import ExistentialPebbleGame, duplicator_wins
from repro.structures import directed_cycle, directed_path, random_directed_graph


@pytest.mark.parametrize("n", [4, 6, 8])
def bench_p05_two_pebbles_path(benchmark, n):
    result = benchmark(duplicator_wins, directed_cycle(3),
                       directed_path(n), 2)
    assert result is False


@pytest.mark.parametrize("n", [4, 6, 8])
def bench_p05_two_pebbles_cycle(benchmark, n):
    result = benchmark(duplicator_wins, directed_cycle(3),
                       directed_cycle(n), 2)
    assert result is True


@pytest.mark.parametrize("k", [2, 3])
def bench_p05_k_pebbles_random(benchmark, k):
    a = random_directed_graph(4, 0.35, seed=1)
    b = random_directed_graph(5, 0.35, seed=2)
    benchmark(duplicator_wins, a, b, k)


def bench_p05_winning_family_size(benchmark):
    def harness():
        game = ExistentialPebbleGame(directed_cycle(3), directed_cycle(6), 2)
        return len(game.winning_family())

    size = benchmark(harness)
    assert size > 0


# ----------------------------------------------------------------------
# Envelope mode (script entry point)
# ----------------------------------------------------------------------
def envelope_workload():
    """Named pebble-game instances as ``(name, (a, b, k, expected))``
    pairs; ``expected`` is ``None`` where the outcome is not pinned."""
    pairs = []
    for n in (4, 6, 8):
        pairs.append((
            f"k2/c3-vs-path-{n:02d}",
            (directed_cycle(3), directed_path(n), 2, False),
        ))
        pairs.append((
            f"k2/c3-vs-cycle-{n:02d}",
            (directed_cycle(3), directed_cycle(n), 2, True),
        ))
    for k in (2, 3):
        pairs.append((
            f"k{k}/random-4-vs-5",
            (random_directed_graph(4, 0.35, seed=1),
             random_directed_graph(5, 0.35, seed=2), k, None),
        ))
    return pairs


def run_envelope(repeat: int, only=None) -> dict:
    """Time ``duplicator_wins`` per instance (best of ``repeat``)."""
    from repro.parallel.sweeps import filter_instances

    pairs = envelope_workload()
    if only is not None:
        pairs = filter_instances(pairs, only)
    rows = []
    disagreements = 0
    for name, (a, b, k, expected) in pairs:
        best_s = float("inf")
        result = None
        for _ in range(repeat):
            started = time.perf_counter()
            result = duplicator_wins(a, b, k)
            best_s = min(best_s, time.perf_counter() - started)
        agree = expected is None or result is expected
        disagreements += not agree
        rows.append({
            "instance": name,
            "k": k,
            "duplicator_wins": result,
            "expected": expected,
            "elapsed_s": best_s,
            "agree": agree,
        })
    return {
        "mode": "pebble-envelope",
        "repeat": repeat,
        "instances": [name for name, _ in pairs],
        "rows": rows,
        "disagreements": disagreements,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="existential k-pebble game envelope (JSON output)"
    )
    parser.add_argument("--repeat", type=int, default=3,
                        help="best-of runs per instance")
    parser.add_argument("--only", metavar="SUBSTRING", default=None,
                        help="restrict to instances whose name contains "
                             "SUBSTRING (unknown filters exit 2 with the "
                             "valid names)")
    args = parser.parse_args(argv)

    from repro.exceptions import UnknownInstanceError

    try:
        report = run_envelope(args.repeat, only=args.only)
    except UnknownInstanceError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(json.dumps(report, indent=2))
    return 0 if not report["disagreements"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
