"""E1 — Theorem 2.1 (Chandra–Merlin): three-way equivalence sweep.

For random structure pairs across sizes/densities, evaluate the three
statements of the theorem (hom existence, canonical-query satisfaction,
canonical-query implication).  Shape to reproduce: the three columns are
identical on every row; positive rate rises with density.
"""

from _tables import emit_table, run_once

from repro.cq import chandra_merlin_check
from repro.structures import random_directed_graph


def run_experiment():
    rows = []
    for size in (3, 4, 5):
        for density in (0.15, 0.3, 0.5):
            agree = 0
            positive = 0
            trials = 12
            for seed in range(trials):
                a = random_directed_graph(size, density, seed)
                b = random_directed_graph(size + 1, density, seed + 1000)
                result = chandra_merlin_check(a, b)
                if len(set(result.values())) == 1:
                    agree += 1
                if result["hom"]:
                    positive += 1
            rows.append((size, density, trials, agree, positive))
    return rows


def bench_e01_chandra_merlin(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit_table(
        "e01_chandra_merlin",
        "E1  Theorem 2.1: hom <=> B |= phi_A <=> phi_B implies phi_A",
        ["|A|", "density", "pairs", "3-way agree", "hom exists"],
        rows,
    )
    # The theorem: all three statements agree on every pair.
    assert all(row[3] == row[2] for row in rows)
    # Both outcomes are represented across the sweep (non-trivial shape).
    assert any(r[4] > 0 for r in rows)
    assert any(r[4] < r[2] for r in rows)
