"""Machine-readable benchmark emission (the perf trajectory).

Performance benches emit ``BENCH_<name>.json`` files under
``benchmarks/results/`` alongside the prose ``.txt`` tables, so runs
can be diffed and plotted across commits.  Each file carries a schema
version and the raw numbers (wall time, solver counters, speedups) the
CI bench-smoke job asserts on and uploads as artifacts.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Dict

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SCHEMA_VERSION = 1


def write_bench_json(
    name: str, payload: Dict[str, Any], out_dir: str = RESULTS_DIR
) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    The payload is wrapped with a schema version, a wall-clock stamp
    and the python/runtime identification needed to compare runs across
    machines.
    """
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    document = {
        "schema_version": SCHEMA_VERSION,
        "bench": name,
        "unix_time": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        **payload,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
