"""E17 — data exchange: getting to the core (intro citation).

The paper's introduction lists data exchange [Fagin–Kolaitis–Popa 2003]
among the applications of cores.  The sweep chases employee/department
sources of growing size and measures how much the core shrinks the
canonical universal solution: one shared "unknown manager" null per
department instead of one per employee.  Shape: shrinkage grows linearly
with employees-per-department, the core stays a verified universal
solution, and sources without redundancy shrink by zero.
"""

from _tables import emit_table, run_once

from repro.dataexchange import (
    chase,
    core_solution,
    is_solution,
    is_universal_solution,
    parse_mapping,
)
from repro.structures import Structure, Vocabulary

SRC = Vocabulary({"Emp": 2})
TGT = Vocabulary({"Works": 2, "DeptMgr": 2})
MAPPING = parse_mapping(
    "Emp(e, d) -> exists m. Works(e, d) & DeptMgr(d, m).",
    SRC, TGT,
)


def company(employees_per_dept: int, departments: int) -> Structure:
    people = []
    facts = []
    depts = [f"dept{j}" for j in range(departments)]
    for j, dept in enumerate(depts):
        for i in range(employees_per_dept):
            name = f"p{j}_{i}"
            people.append(name)
            facts.append((name, dept))
    return Structure(SRC, people + depts, {"Emp": facts})


def run_experiment():
    rows = []
    for per_dept, departments in ((1, 3), (2, 3), (4, 3), (8, 2), (6, 4)):
        source = company(per_dept, departments)
        canonical = chase(MAPPING, source)
        report = core_solution(MAPPING, source)
        saved_elements, saved_facts = report.shrinkage()
        universal = is_universal_solution(
            MAPPING, source, report.core, [canonical]
        )
        rows.append((
            f"{per_dept}/dept x {departments}",
            canonical.size(),
            report.core.size(),
            saved_elements,
            saved_facts,
            is_solution(MAPPING, source, report.core),
            universal,
        ))
    return rows


def bench_e17_data_exchange(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit_table(
        "e17_data_exchange",
        "E17 data exchange: chase size vs core size (nulls merged per dept)",
        ["source", "|canonical|", "|core|", "elems saved", "facts saved",
         "core solves", "core universal"],
        rows,
    )
    assert all(row[5] and row[6] for row in rows)
    # shrinkage = (per_dept - 1) * departments nulls merged
    expected = {(1, 3): 0, (2, 3): 3, (4, 3): 9, (8, 2): 14, (6, 4): 20}
    for row, (per_dept, departments) in zip(
        rows, ((1, 3), (2, 3), (4, 3), (8, 2), (6, 4))
    ):
        assert row[3] == expected[(per_dept, departments)], row
