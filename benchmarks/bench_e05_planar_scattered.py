"""E5 — Theorem 5.3 / 5.4: scattered sets in K_k-minor-free graphs.

Sweep planar families (grids, fan triangulations, trees, stars) through
the staged construction of Theorem 5.3.  Shape: K_5-minor-free instances
of growing size produce a d-scattered set of size > m after removing
fewer than k - 1 vertices; the dense control (K_6) fails.
"""

from _tables import emit_table, run_once

from repro.core import theorem_5_3_witness, verify_theorem_5_3_witness
from repro.graphtheory import (
    complete_graph,
    grid_graph,
    is_planar,
    random_planar_like,
    random_tree,
    star_graph,
)


def run_experiment():
    k, d, m = 5, 1, 3
    workloads = [
        ("grid(4x4)", grid_graph(4, 4)),
        ("grid(5x5)", grid_graph(5, 5)),
        ("grid(6x6)", grid_graph(6, 6)),
        ("fan(25)", random_planar_like(25, seed=1)),
        ("fan(40)", random_planar_like(40, seed=2)),
        ("tree(40)", random_tree(40, seed=3)),
        ("star(40)", star_graph(40)),
        ("K6 (control)", complete_graph(6)),
    ]
    rows = []
    for name, graph in workloads:
        planar = is_planar(graph)
        witness = theorem_5_3_witness(graph, k, d, m)
        verified = (witness is not None
                    and verify_theorem_5_3_witness(graph, witness, k, m))
        rows.append((
            name,
            graph.num_vertices(),
            planar,
            witness is not None,
            len(witness.removed) if witness else -1,
            len(witness.scattered) if witness else -1,
            verified,
        ))
    return rows


def bench_e05_planar_scattered(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit_table(
        "e05_planar_scattered",
        "E5  Theorem 5.3: k=5, d=1, m=3; |Z| < 4 removals scatter planar hosts",
        ["family", "n", "planar", "found", "|Z|", "|S|", "verified"],
        rows,
    )
    # small instances sit below the theorem's threshold and may fail;
    # all planar hosts with >= 20 vertices must succeed and verify
    large_planar = [r for r in rows if r[2] and r[1] >= 20]
    assert large_planar
    assert all(r[3] and r[6] for r in large_planar)
    assert all(r[4] < 4 for r in large_planar)
    assert all(r[5] > 3 for r in large_planar)
    control = rows[-1]
    assert not control[2] and not control[3]
