"""Serve performance: requests/sec and latency under concurrent clients.

Boots the hom-decision server on a background event loop (the same
:class:`~repro.serve.server.ServerThread` the functional tests use),
fans a mixed decision workload out over concurrent client threads, and
reports end-to-end latency percentiles plus throughput.  Two profiles:

* **no-fault** (always run) — every request admitted and answered
  ``ok``; the CI bench-smoke gate asserts the reported p99 stays
  within ``p99_budget_ms``.
* **overload** (``--overload``) — a deliberately tiny queue with
  non-retrying clients; measures the shed ratio and checks the
  exactly-once accounting (ok + overloaded == sent, nothing lost).

Writes ``benchmarks/results/BENCH_serve.json``::

    python benchmarks/bench_serve.py
    python benchmarks/bench_serve.py --smoke --overload
"""

import argparse
import json
import threading
import time

from repro.engine import HomEngine
from repro.exceptions import ServeOverloadedError
from repro.parallel.retry import RetryPolicy
from repro.serve.admission import AdmissionController
from repro.serve.client import (
    CLIENT_RETRYABLE,
    ServeClient,
    containment_query,
    core_query,
    hom_query,
    treewidth_query,
)
from repro.serve.server import ServerThread
from repro.serve.service import DecisionService
from repro.structures import (
    directed_cycle,
    directed_path,
    random_directed_graph,
    undirected_cycle,
)

#: The no-fault p99 budget the CI bench-smoke job gates on.  The
#: workload is tiny instances on a single compute thread; end-to-end
#: p99 in the hundreds of milliseconds would mean queueing pathology,
#: not slow solves.
P99_BUDGET_MS = 250.0


def decision_workload():
    """A mixed bag of small decision queries (all answer definitely)."""
    c3, c6 = directed_cycle(3), directed_cycle(6)
    p4, p6 = directed_path(4), directed_path(6)
    r5 = random_directed_graph(5, 0.35, seed=11)
    return [
        hom_query(p4, c3),               # TRUE: path folds into cycle
        hom_query(c3, p6),               # FALSE: cycle into a path
        hom_query(c6, c3),               # TRUE: even cycle halves
        hom_query(r5, c3),
        containment_query(c6, c3),
        core_query(undirected_cycle(5)),
        treewidth_query(undirected_cycle(6), limit=10),
    ]


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(q * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def _client_loop(host, port, queries, requests, latencies, failures,
                 overloaded, retry_policy, key):
    client = ServeClient(
        host, port, timeout_s=60.0, retry_policy=retry_policy,
        retry_key=key,
    )
    try:
        for i in range(requests):
            query = queries[i % len(queries)]
            started = time.perf_counter()
            try:
                entry = client.decide(query, request_id=f"{key}-{i}")
            except ServeOverloadedError:
                overloaded.append(i)
                continue
            latencies.append(time.perf_counter() - started)
            if entry.get("status") not in (None, "ok"):
                failures.append(entry)
            elif "verdict" in entry and (
                entry["verdict"]["value"] == "UNKNOWN"
            ):
                failures.append(entry)
    finally:
        client.close()


def _run_profile(clients, requests, *, queue_limit, retry_policy):
    """One server lifetime, ``clients`` threads, per-request latency."""
    from repro.engine.instrumentation import SERVE

    SERVE.reset()  # the serve counters are process-global; per-profile
    service = DecisionService(engine=HomEngine())
    thread = ServerThread(
        service=service,
        admission=AdmissionController(queue_limit=queue_limit),
        idle_timeout_s=30.0,
        drain_grace_s=2.0,
    )
    host, port = thread.start()
    queries = decision_workload()
    latencies, failures, overloaded = [], [], []
    try:
        workers = [
            threading.Thread(
                target=_client_loop,
                args=(host, port, queries, requests, latencies,
                      failures, overloaded, retry_policy,
                      f"client-{c:02d}"),
            )
            for c in range(clients)
        ]
        started = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        elapsed = time.perf_counter() - started
        with ServeClient(host, port) as probe:
            stats = probe.stats()
    finally:
        thread.stop()

    latencies.sort()
    sent = clients * requests
    completed = len(latencies)
    return {
        "clients": clients,
        "requests_per_client": requests,
        "sent": sent,
        "completed": completed,
        "overloaded": len(overloaded),
        "failures": len(failures),
        "unanswered": sent - completed - len(overloaded),
        "elapsed_s": elapsed,
        "requests_per_s": completed / elapsed if elapsed > 0 else 0.0,
        "latency_p50_ms": _percentile(latencies, 0.50) * 1e3,
        "latency_p99_ms": _percentile(latencies, 0.99) * 1e3,
        "serve_counters": stats["serve"],
    }


def run_no_fault(clients, requests):
    """Uncontended profile: ample queue, retrying clients, p99 gate."""
    report = _run_profile(
        clients, requests,
        queue_limit=max(64, clients * 4),
        retry_policy=RetryPolicy(
            max_attempts=4, base_delay=0.05, max_delay=1.0,
            jitter=0.25, retryable=CLIENT_RETRYABLE,
        ),
    )
    report["p99_budget_ms"] = P99_BUDGET_MS
    report["p99_within_budget"] = (
        report["latency_p99_ms"] < P99_BUDGET_MS
    )
    return report


def run_overload(clients, requests):
    """Contended profile: queue of 1, non-retrying clients, count sheds."""
    report = _run_profile(
        clients, requests,
        queue_limit=1,
        retry_policy=RetryPolicy(
            max_attempts=1, retryable=CLIENT_RETRYABLE
        ),
    )
    report["shed_ratio"] = (
        report["overloaded"] / report["sent"] if report["sent"] else 0.0
    )
    report["accounted_exactly_once"] = report["unanswered"] == 0
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="hom-decision server throughput/latency benchmark "
                    "(JSON output, BENCH_serve.json)"
    )
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads")
    parser.add_argument("--requests", type=int, default=50,
                        help="requests per client")
    parser.add_argument("--overload", action="store_true",
                        help="also run the tiny-queue overload profile")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer clients/requests)")
    args = parser.parse_args(argv)

    clients = 2 if args.smoke else args.clients
    requests = 20 if args.smoke else args.requests

    report = {
        "mode": "serve-bench",
        "smoke": args.smoke,
        "no_fault": run_no_fault(clients, requests),
    }
    if args.overload:
        report["overload"] = run_overload(max(clients, 3), requests)

    from _json import write_bench_json

    report["json_path"] = write_bench_json("serve", report)
    print(json.dumps(report, indent=2))

    ok = (
        report["no_fault"]["failures"] == 0
        and report["no_fault"]["unanswered"] == 0
        and report["no_fault"]["p99_within_budget"]
    )
    if args.overload:
        ok = ok and report["overload"]["accounted_exactly_once"]
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
