"""E6 — Theorem 3.1 + Section 8: the effective FO -> UCQ rewriting.

For FO sentences preserved under homomorphisms, enumerate minimal models
on the full class and on restricted classes (T(3), degree <= 2), emit
the union of canonical conjunctive queries, and verify the equivalence
on a sample.  Shape: the rewriting verifies on every sampled structure,
minimal models are cores, and restricting the class can only shrink the
set of minimal models.
"""

from _tables import emit_table, run_once

from repro.core import (
    bounded_degree_class,
    bounded_treewidth_class,
    minimal_models_are_cores,
    rewrite_to_ucq,
)
from repro.logic import parse_formula
from repro.structures import (
    GRAPH_VOCABULARY,
    directed_cycle,
    directed_path,
    random_directed_graph,
    single_loop,
)


QUERIES = [
    ("edge", "exists x y. E(x, y)", 2),
    ("closed-walk-2", "exists x y. E(x, y) & E(y, x)", 2),
    ("closed-walk-3", "exists x y z. E(x, y) & E(y, z) & E(z, x)", 3),
    ("out-star-2", "exists x y z. E(x, y) & E(x, z)", 3),
    ("edge-or-loop", "exists x. (E(x, x) | exists y. E(x, y))", 2),
]


def run_experiment():
    samples = [random_directed_graph(4, 0.35, s) for s in range(10)]
    samples += [directed_cycle(3), directed_path(4), single_loop()]
    classes = [
        ("all", None),
        ("T(3)", bounded_treewidth_class(3)),
        ("deg<=2", bounded_degree_class(2)),
    ]
    rows = []
    for name, text, cap in QUERIES:
        query = parse_formula(text, GRAPH_VOCABULARY)
        for cls_name, cls in classes:
            members = [
                s for s in samples if cls is None or cls.contains(s)
            ]
            result = rewrite_to_ucq(
                query, GRAPH_VOCABULARY, structure_class=cls,
                max_size=cap, verification_sample=members,
            )
            rows.append((
                name,
                cls_name,
                len(result.minimal_models),
                len(result.ucq),
                minimal_models_are_cores(result.minimal_models),
                result.verified_on,
            ))
    return rows


def bench_e06_rewriting(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit_table(
        "e06_rewriting",
        "E6  Theorem 3.1: minimal models -> UCQ, verified per class",
        ["query", "class", "min models", "UCQ disjuncts", "cores",
         "verified on"],
        rows,
    )
    assert all(row[4] for row in rows)           # models are cores
    assert all(row[5] > 0 for row in rows)       # every rewrite verified
    # restricting the class never increases the number of minimal models
    by_query = {}
    for row in rows:
        by_query.setdefault(row[0], {})[row[1]] = row[2]
    for counts in by_query.values():
        assert counts["T(3)"] <= counts["all"]
        assert counts["deg<=2"] <= counts["all"]
