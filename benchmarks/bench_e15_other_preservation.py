"""E15 — the classical preservation landscape of Section 1, sampled.

The paper's introduction orders the preservation properties:
homomorphism-preserved ⇒ extension-preserved, and hom-preserved ⇒
monotone; the classical theorems (Łoś–Tarski, Lyndon) match them with
syntax on all structures but fail in the finite.  The sweep classifies
concrete queries on a sampled class and runs the Łoś–Tarski rewriting
(the Section 8 outlook toward Atserias–Dawar–Grohe).
"""

from _tables import emit_table, run_once

from repro.core import (
    extension_closure_sample,
    rewrite_to_existential,
    section_1_implications,
)
from repro.logic import parse_formula
from repro.structures import (
    GRAPH_VOCABULARY,
    directed_cycle,
    directed_path,
    random_directed_graph,
    single_loop,
)


QUERIES = [
    ("edge (EP)", "exists x y. E(x, y)"),
    ("loop (EP)", "exists x. E(x, x)"),
    ("asym edge (∃,¬)", "exists x y. E(x, y) & ~E(y, x)"),
    ("no loop (¬∃)", "~(exists x. E(x, x))"),
    ("total (∀∃)", "forall x. exists y. E(x, y)"),
    ("sym closure (∀)", "forall x y. (E(x, y) -> E(y, x))"),
]


def run_experiment():
    samples = extension_closure_sample(
        [random_directed_graph(3, 0.4, s) for s in range(8)]
        + [directed_cycle(3), directed_path(3), single_loop()]
    )
    classification_rows = []
    for name, text in QUERIES:
        query = parse_formula(text, GRAPH_VOCABULARY)
        report = section_1_implications(query, samples)
        classification_rows.append((
            name,
            report["homomorphism"],
            report["extensions"],
            report["monotone"],
        ))

    rewrite_rows = []
    for name, text in (("loop (EP)", "exists x. E(x, x)"),
                       ("asym edge (∃,¬)",
                        "exists x y. E(x, y) & ~E(y, x)")):
        query = parse_formula(text, GRAPH_VOCABULARY)
        result = rewrite_to_existential(
            query, GRAPH_VOCABULARY, max_size=2,
            verification_sample=samples,
        )
        rewrite_rows.append((
            name, len(result.minimal_models), result.verified_on,
        ))
    return classification_rows, rewrite_rows


def bench_e15_other_preservation(benchmark):
    classification_rows, rewrite_rows = run_once(benchmark, run_experiment)
    emit_table(
        "e15_classification",
        "E15a Section 1's landscape: hom- / extension- / monotone-preserved",
        ["query", "hom", "extensions", "monotone"],
        classification_rows,
    )
    emit_table(
        "e15_los_tarski",
        "E15b Łoś–Tarski rewriting: minimal induced models -> ∃-sentence",
        ["query", "minimal induced models", "verified on"],
        rewrite_rows,
    )
    by_name = {row[0]: row for row in classification_rows}
    # Section 1's implications hold on every row
    for name, hom, ext, mono in classification_rows:
        if hom:
            assert ext and mono, name
    # the landscape is non-trivial: each property separates some queries
    assert not by_name["asym edge (∃,¬)"][1]   # not hom-preserved
    assert by_name["asym edge (∃,¬)"][2]       # but extension-preserved
    assert not by_name["total (∀∃)"][2]        # ∀∃ loses extensions
    assert by_name["total (∀∃)"][3]            # yet stays monotone
    assert not by_name["no loop (¬∃)"][3]      # negation kills monotone
    assert all(row[2] > 0 for row in rewrite_rows)
