"""A1 — ablations of the design choices DESIGN.md calls out.

Three switchable mechanisms, each timed on a workload where it matters:

* constraint propagation in the homomorphism solver (AC pruning on/off)
  on negative odd-cycle coloring instances;
* containment-based minimization inside Datalog stage unfolding
  (disjunct counts with/without);
* greedy vs exact scattered-set search (solution quality gap).
"""

import time

from _tables import emit_table, run_once

from repro.datalog import (nonlinear_transitive_closure_program,
                           transitive_closure_program)
from repro.datalog.stages import stage_ucqs
from repro.graphtheory import (
    greedy_scattered_set,
    grid_graph,
    max_scattered_set,
    random_regular_graph,
    star_graph,
)
from repro.homomorphism import HomomorphismSearch
from repro.structures import undirected_cycle, undirected_path


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_experiment():
    # -- propagation ablation on negative 2-coloring instances
    propagation_rows = []
    for n in (7, 9, 11):
        source, target = undirected_cycle(n), undirected_path(2)
        with_prop, t_on = _time(
            lambda: HomomorphismSearch(source, target).first()
        )
        without, t_off = _time(
            lambda: HomomorphismSearch(source, target,
                                       propagate=False).first()
        )
        assert with_prop is None and without is None
        propagation_rows.append(
            (f"C{n} -> K2", round(t_on * 1000, 2), round(t_off * 1000, 2))
        )

    # -- stage minimization ablation (nonlinear TC squares its stages)
    stage_rows = []
    for m in (2, 3, 4):
        program = nonlinear_transitive_closure_program()
        minimized = stage_ucqs(program, m, minimize=True)
        raw = stage_ucqs(program, m, minimize=False)
        stage_rows.append((
            m, len(minimized[m]["T"]), len(raw[m]["T"]),
        ))

    # -- greedy vs exact scattered sets
    scattered_rows = []
    for name, graph, d in (
        ("grid(5x5)", grid_graph(5, 5), 1),
        ("star(20)", star_graph(20), 1),
        ("3-regular(30)", random_regular_graph(30, 3, seed=5), 2),
    ):
        greedy = len(greedy_scattered_set(graph, d))
        exact = len(max_scattered_set(graph, d))
        scattered_rows.append((name, d, greedy, exact))
    return propagation_rows, stage_rows, scattered_rows


def bench_a01_ablations(benchmark):
    propagation_rows, stage_rows, scattered_rows = run_once(
        benchmark, run_experiment
    )
    emit_table(
        "a01_propagation",
        "A1a hom-search propagation ablation (negative coloring, ms)",
        ["instance", "with AC", "without AC"],
        propagation_rows,
    )
    emit_table(
        "a01_stage_minimization",
        "A1b stage-unfolding minimization ablation (disjunct counts)",
        ["stage", "minimized", "raw"],
        stage_rows,
    )
    emit_table(
        "a01_scattered",
        "A1c greedy vs exact scattered sets",
        ["graph", "d", "greedy", "exact"],
        scattered_rows,
    )
    # minimization can only shrink; exact can only beat greedy
    assert all(row[1] <= row[2] for row in stage_rows)
    assert all(row[2] <= row[3] for row in scattered_rows)
    # the raw stage-m TC unfolding has exponentially many disjuncts
    assert stage_rows[-1][2] > stage_rows[-1][1]
