"""Table emission for experiment benchmarks.

Each benchmark regenerates one of the paper-indexed experiments
(DESIGN.md Section 3) and reports a paper-style table.  Tables are
printed to stdout *and* written under ``benchmarks/results/`` so the
rows survive pytest's output capture; ``EXPERIMENTS.md`` records the
reference run.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """A plain fixed-width table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(row))))
    return "\n".join(lines)


def emit_table(name: str, title: str, headers: Sequence[str],
               rows: Iterable[Sequence]) -> str:
    """Print the table and persist it under ``benchmarks/results/``."""
    body = format_table(headers, list(rows))
    text = f"== {title} ==\n{body}\n"
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


def run_once(benchmark, fn):
    """Benchmark a deterministic harness exactly once and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
