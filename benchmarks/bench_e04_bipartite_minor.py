"""E4 — Lemma 5.2: scattered left sides of K_k-minor-free bipartite graphs.

Sweep bipartite hosts (matchings, single/double hubs, forests) and
search for the lemma's ``(A', B')``: ``|A'| > m`` left vertices whose
only common neighbours are the exceptional ``B'`` with ``|B'| < k - 1``.
Shape: K_k-minor-free instances succeed; the exceptional set stays below
``k - 1``; complete bipartite hosts (which *have* the minor) fail.
"""

from _tables import emit_table, run_once

from repro.core import lemma_5_2_witness, verify_lemma_5_2_witness
from repro.graphtheory import Graph, complete_bipartite_graph, has_clique_minor


def matching(n):
    left = [("L", i) for i in range(n)]
    right = [("R", i) for i in range(n)]
    return Graph(left + right, [(("L", i), ("R", i)) for i in range(n)]), left


def hubbed(leaves, hubs):
    left = [("L", i) for i in range(leaves)]
    right = [("R", j) for j in range(hubs)]
    return Graph(left + right, [(l, r) for l in left for r in right]), left


def comb(n):
    """Left vertices in a chain through right 'spine' vertices."""
    left = [("L", i) for i in range(n)]
    right = [("R", i) for i in range(n - 1)]
    edges = []
    for i in range(n - 1):
        edges.append((("L", i), ("R", i)))
        edges.append((("L", i + 1), ("R", i)))
    return Graph(left + right, edges), left


def run_experiment():
    m = 3
    workloads = [
        ("matching(8)", *matching(8), 3),
        ("hub(10,1)", *hubbed(10, 1), 4),
        ("hub(12,2)", *hubbed(12, 2), 5),
        ("comb(10)", *comb(10), 3),
        ("K_{3,3}", complete_bipartite_graph(3, 3),
         [("L", i) for i in range(3)], 3),
    ]
    rows = []
    for name, graph, left, k in workloads:
        minor_free = not has_clique_minor(graph, k)
        witness = lemma_5_2_witness(graph, left, k, m)
        ok = (witness is not None
              and verify_lemma_5_2_witness(graph, left, witness, k, m))
        rows.append((
            name,
            k,
            minor_free,
            witness is not None,
            ok if witness else "-",
            len(witness.exceptional) if witness else -1,
        ))
    return rows


def bench_e04_bipartite_minor(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit_table(
        "e04_bipartite_minor",
        "E4  Lemma 5.2: m=3; A' 1-scattered after removing B' (|B'| < k-1)",
        ["host", "k", "K_k-minor-free", "witness", "verified", "|B'|"],
        rows,
    )
    for row in rows:
        if row[2] and row[0] != "K_{3,3}":
            assert row[3] and row[4] is True, row
            assert row[5] < row[1] - 1
    # the K_{3,3} control has the K_3 minor and fails the lemma's search
    control = rows[-1]
    assert not control[2]
