"""E14 — the intro's tractability claims on bounded treewidth, executed.

"Classes of structures of bounded treewidth ... possess good algorithmic
properties: various NP-complete problems, including constraint
satisfaction problems and database query evaluation problems, are
solvable in polynomial time when restricted to inputs of bounded
treewidth [Dechter–Pearl; Grohe et al.]".

Three instantiations, each cross-checked against an exponential oracle:

* maximum independent set via nice-decomposition DP;
* counting proper 3-colorings (= homomorphisms into K_3) via DP;
* CQ evaluation by a tree decomposition of the *query* (Lemma 7.2 makes
  every CQ^2 path sentence width-1, so arbitrarily long such queries
  stay cheap).
"""

from _tables import emit_table, run_once

from repro.cq import (
    canonical_query,
    canonical_structure_of_cqk,
    evaluate_by_tree_decomposition,
    path_sentence_two_variables,
    query_treewidth,
)
from repro.graphtheory import (
    count_proper_colorings_treewidth,
    cycle_graph,
    grid_graph,
    k_tree,
    max_independent_set_treewidth,
    nice_decomposition,
    random_tree,
    treewidth_exact,
)
from repro.graphtheory.scattered import _max_independent_set
from repro.structures import directed_path


def run_experiment():
    dp_rows = []
    for name, graph in (
        ("tree(30)", random_tree(30, seed=1)),
        ("cycle(20)", cycle_graph(20)),
        ("2-tree(20)", k_tree(2, 20, seed=2)),
        ("grid(3x5)", grid_graph(3, 5)),
    ):
        nd = nice_decomposition(graph)
        mis = max_independent_set_treewidth(graph, nd)
        mis_oracle = len(_max_independent_set(graph, 10 ** 7))
        colorings = count_proper_colorings_treewidth(graph, 3, nd)
        dp_rows.append((
            name,
            graph.num_vertices(),
            treewidth_exact(graph),
            mis,
            mis == mis_oracle,
            colorings,
        ))

    query_rows = []
    for length in (3, 6, 10, 14):
        sentence = path_sentence_two_variables(length)
        structure = canonical_structure_of_cqk(sentence)
        q = canonical_query(structure)
        target = directed_path(length + 3)
        answer = evaluate_by_tree_decomposition(q, target)
        query_rows.append((
            f"CQ^2 path-{length}",
            len(q.variables()),
            query_treewidth(q),
            target.size(),
            answer == {()},
        ))
    return dp_rows, query_rows


def bench_e14_tractability(benchmark):
    dp_rows, query_rows = run_once(benchmark, run_experiment)
    emit_table(
        "e14_treewidth_dp",
        "E14a bounded-treewidth DP: MIS (vs oracle) and 3-coloring counts",
        ["graph", "n", "tw", "MIS", "matches oracle", "#3-colorings"],
        dp_rows,
    )
    emit_table(
        "e14_query_evaluation",
        "E14b CQ evaluation via query decompositions (width-1 CQ^2 paths)",
        ["query", "#vars", "query tw", "|D|", "correct"],
        query_rows,
    )
    assert all(row[4] for row in dp_rows)
    assert all(row[2] == 1 for row in query_rows)   # Lemma 7.2's width
    assert all(row[4] for row in query_rows)
    # proper colorings exist on all (bipartite or sparse) inputs swept
    assert all(row[5] > 0 for row in dp_rows)
