"""P3 — substrate performance: exact treewidth and minor search.

Times the branch-and-bound treewidth solver and the minor tester on the
graph families the experiments sweep.
"""

import pytest

from repro.graphtheory import (
    complete_graph,
    cycle_graph,
    grid_graph,
    has_clique_minor,
    is_planar,
    k_tree,
    random_graph,
    random_tree,
    treewidth_exact,
)


@pytest.mark.parametrize("dims", [(3, 3), (3, 4), (4, 4)])
def bench_p03_treewidth_grid(benchmark, dims):
    g = grid_graph(*dims)
    result = benchmark(treewidth_exact, g)
    assert result == min(dims)


@pytest.mark.parametrize("n", [20, 40])
def bench_p03_treewidth_tree(benchmark, n):
    g = random_tree(n, seed=n)
    assert benchmark(treewidth_exact, g) == 1


@pytest.mark.parametrize("n", [8, 10, 12])
def bench_p03_treewidth_random(benchmark, n):
    g = random_graph(n, 0.35, seed=n)
    benchmark(treewidth_exact, g)


@pytest.mark.parametrize("n", [25, 45])
def bench_p03_treewidth_2tree(benchmark, n):
    g = k_tree(2, n, seed=n)
    assert benchmark(treewidth_exact, g) == 2


def bench_p03_minor_k4_in_grid(benchmark):
    g = grid_graph(3, 3)
    assert benchmark(has_clique_minor, g, 4)


def bench_p03_minor_negative_k5_in_cycle(benchmark):
    g = cycle_graph(12)
    assert not benchmark(has_clique_minor, g, 5)


@pytest.mark.parametrize("dims", [(3, 4), (4, 4)])
def bench_p03_planarity_grid(benchmark, dims):
    g = grid_graph(*dims)
    assert benchmark(is_planar, g)


def bench_p03_planarity_negative(benchmark):
    assert not benchmark(is_planar, complete_graph(6))
