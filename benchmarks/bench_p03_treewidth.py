"""P3 — substrate performance: exact treewidth and minor search.

Times the branch-and-bound treewidth solver and the minor tester on the
graph families the experiments sweep.

Run as a script for the *governed sweep* mode: every instance runs under
a per-instance deadline with graceful degradation to the heuristic upper
bound, and each result is checkpointed to an append-only journal under
``benchmarks/results/`` the moment it completes — killing the sweep and
rerunning it resumes after the last finished instance::

    python benchmarks/bench_p03_treewidth.py --deadline 5
    python benchmarks/bench_p03_treewidth.py --deadline 5   # resumes
    python benchmarks/bench_p03_treewidth.py --fresh        # start over

The sweep runs through :func:`repro.parallel.run_sweep`; ``--workers N``
fans the instances out over a process pool (per-instance governors are
re-installed inside each worker), and ``--compare-workers N`` races the
serial and parallel paths to report the wall-clock speedup.  Either way
the machine-readable ``BENCH_sweep.json`` lands next to the journal.
"""

import argparse
import json
import os

import pytest

from repro.graphtheory import (
    complete_graph,
    cycle_graph,
    grid_graph,
    has_clique_minor,
    is_planar,
    k_tree,
    random_graph,
    random_tree,
    treewidth_exact,
)


@pytest.mark.parametrize("dims", [(3, 3), (3, 4), (4, 4)])
def bench_p03_treewidth_grid(benchmark, dims):
    g = grid_graph(*dims)
    result = benchmark(treewidth_exact, g)
    assert result == min(dims)


@pytest.mark.parametrize("n", [20, 40])
def bench_p03_treewidth_tree(benchmark, n):
    g = random_tree(n, seed=n)
    assert benchmark(treewidth_exact, g) == 1


@pytest.mark.parametrize("n", [8, 10, 12])
def bench_p03_treewidth_random(benchmark, n):
    g = random_graph(n, 0.35, seed=n)
    benchmark(treewidth_exact, g)


@pytest.mark.parametrize("n", [25, 45])
def bench_p03_treewidth_2tree(benchmark, n):
    g = k_tree(2, n, seed=n)
    assert benchmark(treewidth_exact, g) == 2


def bench_p03_minor_k4_in_grid(benchmark):
    g = grid_graph(3, 3)
    assert benchmark(has_clique_minor, g, 4)


def bench_p03_minor_negative_k5_in_cycle(benchmark):
    g = cycle_graph(12)
    assert not benchmark(has_clique_minor, g, 5)


@pytest.mark.parametrize("dims", [(3, 4), (4, 4)])
def bench_p03_planarity_grid(benchmark, dims):
    g = grid_graph(*dims)
    assert benchmark(is_planar, g)


def bench_p03_planarity_negative(benchmark):
    assert not benchmark(is_planar, complete_graph(6))


# ----------------------------------------------------------------------
# Governed, resumable sweep (script entry point)
# ----------------------------------------------------------------------
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
DEFAULT_JOURNAL = os.path.join(RESULTS_DIR, "treewidth_sweep.jsonl")


def sweep_instances(only=None):
    """The (key, spec) pairs the sweep covers, in a deterministic order
    (shared with ``repro sweep treewidth`` via the registry).  ``only``
    keeps the keys containing the substring; an unmatched filter raises
    :class:`~repro.exceptions.UnknownInstanceError`."""
    from repro.parallel.sweeps import filter_instances, treewidth_instances

    instances = treewidth_instances()
    if only is not None:
        instances = filter_instances(instances, only)
    return instances


def _count_fallbacks(results: dict) -> int:
    return sum(
        1
        for record in results.values()
        if record
        and record.get("status") == "ok"
        and not record["result"]["exact"]
    )


def run_sweep(journal_path: str, deadline_s: float, limit: int,
              fresh: bool, workers: int = 1, only=None) -> dict:
    """Run the governed treewidth sweep, resuming from the journal.

    The work goes through :func:`repro.parallel.run_sweep`: each
    instance runs under its own deadline (re-installed inside the
    worker when ``workers > 1``) and degrades to the heuristic upper
    bound on a trip; every completion is flushed to the journal the
    moment it lands, so an interrupted sweep loses at most the
    instances in flight.
    """
    import functools

    from repro.parallel import run_sweep as parallel_sweep
    from repro.parallel.sweeps import treewidth_task
    from repro.resources import SweepJournal

    os.makedirs(os.path.dirname(journal_path), exist_ok=True)
    journal = SweepJournal(journal_path)
    outcome = parallel_sweep(
        functools.partial(treewidth_task, limit=limit),
        sweep_instances(only),
        workers=workers,
        deadline_s=deadline_s,
        journal=journal,
        fresh=fresh,
        mode="treewidth-sweep",
    )
    report = outcome.to_dict()
    report["journal"] = journal_path
    report["fallbacks"] = _count_fallbacks(report["results"])
    return report


def run_worker_compare(deadline_s: float, limit: int, workers: int,
                       only=None) -> dict:
    """Race the serial path against ``workers`` processes (no journal,
    so both runs compute everything) and report the wall-clock speedup.

    On a single-core box the parallel run measures pure overhead; the
    report carries ``cpu_count`` so consumers can gate expectations on
    the hardware instead of pretending a speedup where none is possible.
    """
    import functools

    from repro.parallel import run_sweep as parallel_sweep
    from repro.parallel.sweeps import treewidth_task

    task = functools.partial(treewidth_task, limit=limit)
    instances = sweep_instances(only)
    serial = parallel_sweep(
        task, instances, workers=1, deadline_s=deadline_s,
        mode="treewidth-sweep-serial",
    )
    parallel = parallel_sweep(
        task, instances, workers=workers, deadline_s=deadline_s,
        mode="treewidth-sweep-parallel",
    )
    return {
        "mode": "treewidth-worker-compare",
        "workers": workers,
        "serial_elapsed_s": serial.elapsed_s,
        "parallel_elapsed_s": parallel.elapsed_s,
        "parallel_used_pool": parallel.parallel,
        "speedup": (
            serial.elapsed_s / parallel.elapsed_s
            if parallel.elapsed_s > 0 else float("inf")
        ),
        "serial": serial.to_dict(),
        "parallel": parallel.to_dict(),
    }


def run_fault_bench(fault_rate: float, workers: int, instances: int = 24,
                    work_s: float = 0.02, repeats: int = 5,
                    seed: int = 20260806) -> dict:
    """Measure the supervised runtime's overhead and fault recovery.

    Two measurements on an identical sleep-task workload:

    * **fault-free overhead** — the supervised path vs the legacy
      unsupervised pool map (``supervised=False``), best of ``repeats``
      each; supervision (watchdog thread, windowed submission, retry
      bookkeeping) must cost < 5% wall clock when nothing goes wrong;
    * **faulted run** — each instance crashes its worker with
      probability ``fault_rate`` (seeded, at most once per instance);
      the report carries the retry/quarantine/rebuild counters and a
      correctness check that every instance still produced its exact
      value — supervision pays for itself by losing nothing.
    """
    import tempfile
    import time as _time

    from repro.parallel import RetryPolicy
    from repro.parallel import run_sweep as parallel_sweep
    from repro.parallel.faults import faulty_task

    workload = [
        (f"work-{i}", ("work", work_s, i)) for i in range(instances)
    ]

    def _measure(supervised: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            started = _time.perf_counter()
            outcome = parallel_sweep(
                faulty_task, workload, workers=workers,
                supervised=supervised,
                mode="fault-bench-clean",
            )
            best = min(best, _time.perf_counter() - started)
            assert outcome.computed == instances
        return best

    plain_s = _measure(supervised=False)
    supervised_s = _measure(supervised=True)
    overhead_pct = (
        (supervised_s - plain_s) / plain_s * 100 if plain_s > 0 else 0.0
    )

    with tempfile.TemporaryDirectory() as sentinel_dir:
        faulted_workload = [
            (f"chaos-{i}", ("chaotic", seed + i, fault_rate, sentinel_dir, i))
            for i in range(instances)
        ]
        started = _time.perf_counter()
        faulted = parallel_sweep(
            faulty_task, faulted_workload, workers=workers,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01),
            mode="fault-bench-faulted",
        )
        faulted_s = _time.perf_counter() - started
    wrong = [
        key for key, record in faulted.results.items()
        if record.get("status") != "ok"
        or record["result"]["value"] != int(key.rsplit("-", 1)[1])
    ]
    return {
        "mode": "treewidth-fault-bench",
        "workers": workers,
        "instances": instances,
        "work_s": work_s,
        "fault_rate": fault_rate,
        "seed": seed,
        "plain_elapsed_s": plain_s,
        "supervised_elapsed_s": supervised_s,
        "supervision_overhead_pct": overhead_pct,
        "overhead_budget_pct": 5.0,
        "overhead_within_budget": overhead_pct < 5.0,
        "faulted_elapsed_s": faulted_s,
        "faulted_retries": faulted.retries,
        "faulted_quarantined": faulted.quarantined,
        "faulted_pool_rebuilds": faulted.pool_rebuilds,
        "faulted_worker_crashes": faulted.worker_crashes,
        "faulted_incorrect_instances": wrong,
        "no_silent_loss": not wrong,
    }


def run_shard_bench(shards: int, workers: int, instances: int = 48,
                    work_s: float = 0.15, repeats: int = 3,
                    hard_timeout_s: float = 30.0) -> dict:
    """Measure the sharded runtime's fault-free overhead at ``shards``.

    The same sleep-task workload runs twice, best of ``repeats`` each:

    * **baseline** — one :func:`repro.parallel.run_sweep` over the full
      grid with ``workers`` processes (the single-host path);
    * **sharded** — one runner working a fresh shard directory through
      :func:`repro.distributed.run_sharded_sweep`: ``shards`` leases
      claimed in turn, each shard swept with the same pool width, every
      record landing in a fenced per-shard journal.

    The lease protocol, heartbeats, fencing stamps, and per-shard pool
    turnover must cost < 10% wall clock when nothing goes wrong, and
    the merged journals must equal the baseline modulo timing fields.
    """
    import tempfile
    import time as _time

    from repro.distributed import (
        merge_journals,
        run_sharded_sweep,
        shard_journal_paths,
    )
    from repro.distributed.merge import normalize_results
    from repro.parallel import run_sweep as parallel_sweep
    from repro.parallel.faults import faulty_task

    workload = [
        (f"work-{i:03d}", ("work", work_s, i)) for i in range(instances)
    ]

    baseline_s = float("inf")
    baseline_results = None
    for _ in range(repeats):
        started = _time.perf_counter()
        outcome = parallel_sweep(
            faulty_task, workload, workers=workers,
            hard_timeout_s=hard_timeout_s, mode="shard-bench-baseline",
        )
        baseline_s = min(baseline_s, _time.perf_counter() - started)
        assert outcome.computed == instances
        baseline_results = outcome.results

    sharded_s = float("inf")
    merged = None
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as shard_dir:
            started = _time.perf_counter()
            outcome = run_sharded_sweep(
                faulty_task, workload, shard_dir=shard_dir, shards=shards,
                runner_id="bench", workers=workers,
                hard_timeout_s=hard_timeout_s,
            )
            sharded_s = min(sharded_s, _time.perf_counter() - started)
            assert outcome.complete
            merged = merge_journals(
                shard_journal_paths(shard_dir, shards),
                expected_keys=[key for key, _ in workload],
            )
            assert merged.clean

    overhead_pct = (
        (sharded_s - baseline_s) / baseline_s * 100
        if baseline_s > 0 else 0.0
    )
    equivalent = (
        normalize_results(merged.results)
        == normalize_results(baseline_results)
    )
    return {
        "mode": "treewidth-shard-bench",
        "shards": shards,
        "workers": workers,
        "instances": instances,
        "work_s": work_s,
        "repeats": repeats,
        "baseline_elapsed_s": baseline_s,
        "sharded_elapsed_s": sharded_s,
        "sharding_overhead_pct": overhead_pct,
        "overhead_budget_pct": 10.0,
        "overhead_within_budget": overhead_pct < 10.0,
        "merged_equals_baseline": equivalent,
        "merged_fenced_out": merged.fenced_out,
        "merged_findings": merged.findings,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="governed, resumable treewidth sweep (JSON output)"
    )
    parser.add_argument("--deadline", type=float, default=10.0,
                        help="per-instance wall-clock deadline in seconds")
    parser.add_argument("--limit", type=int, default=40,
                        help="exact-solver vertex limit before fallback")
    parser.add_argument("--journal", default=DEFAULT_JOURNAL,
                        help="checkpoint journal path")
    parser.add_argument("--fresh", action="store_true",
                        help="discard the journal and start over")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = serial in-process)")
    parser.add_argument("--compare-workers", type=int, default=None,
                        metavar="N",
                        help="race serial vs N workers, report the speedup")
    parser.add_argument("--fault-rate", type=float, default=None,
                        metavar="P",
                        help="fault-injection mode: measure supervision "
                             "overhead (fault-free) and recovery under "
                             "per-instance crash probability P; emits "
                             "BENCH_faults.json")
    parser.add_argument("--shards", type=int, default=None, metavar="K",
                        help="sharded-runtime mode: measure the lease/"
                             "fencing/journal overhead of one runner "
                             "working K shards vs the single-host sweep "
                             "(fault-free); emits BENCH_shards.json")
    parser.add_argument("--only", metavar="SUBSTRING", default=None,
                        help="sweep/compare modes: restrict to instances "
                             "whose name contains SUBSTRING (unknown "
                             "filters exit 2 with the valid names)")
    args = parser.parse_args(argv)

    import sys

    from _json import write_bench_json
    from repro.exceptions import UnknownInstanceError

    try:
        if args.shards is not None:
            report = run_shard_bench(
                args.shards, workers=max(args.workers, 2)
            )
            report["json_path"] = write_bench_json("shards", report)
        elif args.fault_rate is not None:
            report = run_fault_bench(
                args.fault_rate, workers=max(args.workers, 2)
            )
            report["json_path"] = write_bench_json("faults", report)
        elif args.compare_workers is not None:
            report = run_worker_compare(
                args.deadline, args.limit, args.compare_workers,
                only=args.only,
            )
            report["json_path"] = write_bench_json("sweep", report)
        else:
            report = run_sweep(
                args.journal, args.deadline, args.limit, args.fresh,
                workers=args.workers, only=args.only,
            )
            report["json_path"] = write_bench_json("sweep", report)
    except UnknownInstanceError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
