"""P3 — substrate performance: exact treewidth and minor search.

Times the branch-and-bound treewidth solver and the minor tester on the
graph families the experiments sweep.

Run as a script for the *governed sweep* mode: every instance runs under
a per-instance deadline with graceful degradation to the heuristic upper
bound, and each result is checkpointed to an append-only journal under
``benchmarks/results/`` the moment it completes — killing the sweep and
rerunning it resumes after the last finished instance::

    python benchmarks/bench_p03_treewidth.py --deadline 5
    python benchmarks/bench_p03_treewidth.py --deadline 5   # resumes
    python benchmarks/bench_p03_treewidth.py --fresh        # start over
"""

import argparse
import json
import os
import time

import pytest

from repro.graphtheory import (
    complete_graph,
    cycle_graph,
    grid_graph,
    has_clique_minor,
    is_planar,
    k_tree,
    random_graph,
    random_tree,
    treewidth_exact,
)


@pytest.mark.parametrize("dims", [(3, 3), (3, 4), (4, 4)])
def bench_p03_treewidth_grid(benchmark, dims):
    g = grid_graph(*dims)
    result = benchmark(treewidth_exact, g)
    assert result == min(dims)


@pytest.mark.parametrize("n", [20, 40])
def bench_p03_treewidth_tree(benchmark, n):
    g = random_tree(n, seed=n)
    assert benchmark(treewidth_exact, g) == 1


@pytest.mark.parametrize("n", [8, 10, 12])
def bench_p03_treewidth_random(benchmark, n):
    g = random_graph(n, 0.35, seed=n)
    benchmark(treewidth_exact, g)


@pytest.mark.parametrize("n", [25, 45])
def bench_p03_treewidth_2tree(benchmark, n):
    g = k_tree(2, n, seed=n)
    assert benchmark(treewidth_exact, g) == 2


def bench_p03_minor_k4_in_grid(benchmark):
    g = grid_graph(3, 3)
    assert benchmark(has_clique_minor, g, 4)


def bench_p03_minor_negative_k5_in_cycle(benchmark):
    g = cycle_graph(12)
    assert not benchmark(has_clique_minor, g, 5)


@pytest.mark.parametrize("dims", [(3, 4), (4, 4)])
def bench_p03_planarity_grid(benchmark, dims):
    g = grid_graph(*dims)
    assert benchmark(is_planar, g)


def bench_p03_planarity_negative(benchmark):
    assert not benchmark(is_planar, complete_graph(6))


# ----------------------------------------------------------------------
# Governed, resumable sweep (script entry point)
# ----------------------------------------------------------------------
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
DEFAULT_JOURNAL = os.path.join(RESULTS_DIR, "treewidth_sweep.jsonl")


def sweep_instances():
    """The (key, graph) pairs the sweep covers, in a deterministic order."""
    instances = []
    for rows, cols in [(3, 3), (3, 4), (4, 4), (4, 5)]:
        instances.append((f"grid-{rows}x{cols}", grid_graph(rows, cols)))
    for n in (20, 40):
        instances.append((f"tree-{n}", random_tree(n, seed=n)))
    for n in (8, 10, 12, 14):
        instances.append((f"random-{n}", random_graph(n, 0.35, seed=n)))
    for n in (25, 45):
        instances.append((f"2tree-{n}", k_tree(2, n, seed=n)))
    return instances


def run_sweep(journal_path: str, deadline_s: float, limit: int,
              fresh: bool) -> dict:
    """Run the governed treewidth sweep, resuming from the journal.

    Each instance runs under its own deadline via
    :func:`repro.resources.governed` and degrades to the heuristic upper
    bound on a trip (the journal records which).  Results are flushed to
    disk per instance, so an interrupted sweep loses at most the
    instance in flight.
    """
    from repro.graphtheory import treewidth_with_fallback
    from repro.resources import SweepJournal, governed

    os.makedirs(os.path.dirname(journal_path), exist_ok=True)
    journal = SweepJournal(journal_path)
    if fresh:
        journal.reset()
    computed = resumed = fallbacks = 0
    for key, graph in sweep_instances():
        if journal.is_done(key):
            resumed += 1
            continue
        started = time.perf_counter()
        with governed(deadline=deadline_s):
            result = treewidth_with_fallback(graph, limit=limit)
        journal.record(key, {
            "width": result.width,
            "exact": result.exact,
            "method": result.method,
            "reason": result.reason,
            "elapsed_s": time.perf_counter() - started,
        })
        computed += 1
        if not result.exact:
            fallbacks += 1
    return {
        "mode": "treewidth-sweep",
        "journal": journal_path,
        "instances": len(journal),
        "computed": computed,
        "resumed": resumed,
        "fallbacks": fallbacks,
        "results": {key: journal.result(key) for key in journal.keys()},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="governed, resumable treewidth sweep (JSON output)"
    )
    parser.add_argument("--deadline", type=float, default=10.0,
                        help="per-instance wall-clock deadline in seconds")
    parser.add_argument("--limit", type=int, default=40,
                        help="exact-solver vertex limit before fallback")
    parser.add_argument("--journal", default=DEFAULT_JOURNAL,
                        help="checkpoint journal path")
    parser.add_argument("--fresh", action="store_true",
                        help="discard the journal and start over")
    args = parser.parse_args(argv)
    report = run_sweep(args.journal, args.deadline, args.limit, args.fresh)
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
