"""E8 — Theorems 7.4/7.5 (Ajtai–Gurevich): Datalog boundedness.

Two sides:

* bounded programs get an actual *certificate* (stage s with
  Φ^{s+1} ≡ Φ^s, decided by Sagiv–Yannakakis) whose stage UCQ defines the
  query on samples;
* unbounded programs (transitive closure, same-generation) admit no
  certificate within the cap, and their rounds-to-fixpoint grow linearly
  (logarithmically for the non-linear variant) with instance size.
"""

from _tables import emit_table, run_once

from repro.datalog import (
    bounded_recursive_program,
    bounded_two_step_program,
    certificate_defines_query,
    find_boundedness_certificate,
    nonlinear_transitive_closure_program,
    path_up_to_length_program,
    transitive_closure_program,
    unboundedness_evidence,
)
from repro.structures import directed_path, random_directed_graph


def run_experiment():
    samples = [random_directed_graph(4, 0.4, s) for s in range(5)]
    samples.append(directed_path(5))
    programs = [
        ("two-step", bounded_two_step_program(), "R"),
        ("sym-pairs (recursive)", bounded_recursive_program(), "P"),
        ("paths<=3", path_up_to_length_program(3), "P"),
        ("TC (linear)", transitive_closure_program(), "T"),
        ("TC (nonlinear)", nonlinear_transitive_closure_program(), "T"),
    ]
    cert_rows = []
    for name, program, predicate in programs:
        cert = find_boundedness_certificate(program, predicate, max_stage=4)
        defines = (
            certificate_defines_query(cert, program, samples)
            if cert is not None else "-"
        )
        cert_rows.append((
            name,
            program.variable_count(),
            cert.stage if cert else "none<=4",
            len(cert.query) if cert else "-",
            defines,
        ))
    growth_rows = []
    sizes = [4, 8, 12, 16]
    for name, program in (
        ("TC (linear)", transitive_closure_program()),
        ("TC (nonlinear)", nonlinear_transitive_closure_program()),
    ):
        rounds = unboundedness_evidence(program, directed_path, sizes)
        growth_rows.append((name, *rounds))
    return cert_rows, growth_rows, sizes


def bench_e08_datalog_boundedness(benchmark):
    cert_rows, growth_rows, sizes = run_once(benchmark, run_experiment)
    emit_table(
        "e08_certificates",
        "E8a Theorem 7.5: boundedness certificates (stage collapse)",
        ["program", "k vars", "collapse stage", "UCQ size",
         "defines query"],
        cert_rows,
    )
    emit_table(
        "e08_stage_growth",
        "E8b rounds-to-fixpoint on P_n (unbounded programs grow)",
        ["program"] + [f"n={n}" for n in sizes],
        growth_rows,
    )
    # bounded programs certified; unbounded ones not
    certified = {row[0]: row[2] for row in cert_rows}
    assert certified["two-step"] != "none<=4"
    assert certified["sym-pairs (recursive)"] != "none<=4"
    assert certified["paths<=3"] != "none<=4"
    assert certified["TC (linear)"] == "none<=4"
    assert certified["TC (nonlinear)"] == "none<=4"
    # certificates define the actual query on every sample
    assert all(row[4] is True for row in cert_rows if row[4] != "-")
    # growth shapes: linear TC grows linearly; nonlinear logarithmically
    linear = growth_rows[0][1:]
    nonlinear = growth_rows[1][1:]
    assert list(linear) == [n - 1 for n in sizes]
    assert nonlinear[-1] < linear[-1]
