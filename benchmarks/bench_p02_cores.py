"""P2 — substrate performance: core computation.

Times the iterated-retraction core algorithm on bipartite structures
(cores collapse to K2), bicycles (collapse to K4) and rigid cores
(no collapse — pure negative retraction searches).

Run as a script for the *repeated-core* mode, which recomputes the
cores of a recurring family through the hom engine and reports timing
plus cache/solver counters as JSON::

    python benchmarks/bench_p02_cores.py --repeat 10
    python benchmarks/bench_p02_cores.py --repeat 10 --no-cache

The *sweep* mode runs the registered ``cores`` instance grid through
the parallel governed executor instead (one core computation per
instance, fanned out over ``--workers`` processes)::

    python benchmarks/bench_p02_cores.py --sweep --workers 4 --deadline 10

``--only SUBSTRING`` restricts either mode to instances whose name
contains the substring; an unmatched filter exits 2 with the valid
names (:class:`~repro.exceptions.UnknownInstanceError`).
"""

import argparse
import json
import sys
import time

import pytest

from repro.engine import HomEngine
from repro.structures import (
    bicycle_structure,
    grid_structure,
    undirected_cycle,
    undirected_path,
)

# The microbenchmarks measure the *core algorithm*, so they bypass the
# memo cache (pytest-benchmark replays each call many times and would
# otherwise time cache hits); the instrumentation stays on.
_UNCACHED = HomEngine(cache_enabled=False)


def _core(structure):
    return _UNCACHED.core(structure)


@pytest.mark.parametrize("n", [6, 10, 14])
def bench_p02_core_of_path(benchmark, n):
    result = benchmark(_core, undirected_path(n))
    assert result.size() == 2


@pytest.mark.parametrize("dims", [(2, 3), (3, 3), (3, 4)])
def bench_p02_core_of_grid(benchmark, dims):
    result = benchmark(_core, grid_structure(*dims))
    assert result.size() == 2


@pytest.mark.parametrize("n", [5, 7])
def bench_p02_core_of_bicycle(benchmark, n):
    result = benchmark(_core, bicycle_structure(n))
    assert result.size() == 4


@pytest.mark.parametrize("n", [5, 7, 9])
def bench_p02_rigid_core_no_collapse(benchmark, n):
    # odd cycles are cores: the algorithm must fail every retraction
    result = benchmark(_core, undirected_cycle(n))
    assert result.size() == n


# ----------------------------------------------------------------------
# Repeated-core mode (script entry point)
# ----------------------------------------------------------------------
def repeated_core_workload():
    """Named structures whose cores the experiment sweeps keep
    recomputing, as deterministic ``(name, structure)`` pairs."""
    pairs = [(f"path-{n:02d}", undirected_path(n)) for n in (6, 10)]
    pairs.append(("grid-2x3", grid_structure(2, 3)))
    pairs.append(("bicycle-5", bicycle_structure(5)))
    pairs.extend((f"cycle-{n}", undirected_cycle(n)) for n in (5, 7))
    return pairs


def run_repeated_cores(repeat: int, use_cache: bool, only=None) -> dict:
    """Recompute the workload's cores ``repeat`` times on a private engine."""
    from repro.parallel.sweeps import filter_instances

    pairs = repeated_core_workload()
    if only is not None:
        pairs = filter_instances(pairs, only)
    engine = HomEngine(cache_enabled=use_cache)
    total_core_size = 0
    started = time.perf_counter()
    for _ in range(repeat):
        for _name, s in pairs:
            total_core_size += engine.core(s).size()
    elapsed = time.perf_counter() - started
    snapshot = engine.snapshot()
    return {
        "mode": "repeated-core",
        "structures": len(pairs),
        "instances": [name for name, _ in pairs],
        "repeat": repeat,
        "queries": repeat * len(pairs),
        "total_core_size": total_core_size,
        "cache_enabled": use_cache,
        "elapsed_s": elapsed,
        "solver": snapshot["solver"],
        "cache": snapshot["cache"],
    }


def run_core_sweep(workers: int, deadline_s: float, only=None) -> dict:
    """The registered ``cores`` grid through the parallel executor."""
    from repro.parallel import get_sweep, run_sweep
    from repro.parallel.sweeps import filter_instances

    sweep = get_sweep("cores")
    instances = sweep.instances()
    if only is not None:
        instances = filter_instances(instances, only)
    outcome = run_sweep(
        sweep.task,
        instances,
        workers=workers,
        deadline_s=deadline_s,
        mode="cores-sweep",
    )
    return outcome.to_dict()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repeated core-computation benchmark (JSON output)"
    )
    parser.add_argument("--repeat", type=int, default=10,
                        help="times the workload is replayed")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the engine's memo cache")
    parser.add_argument("--sweep", action="store_true",
                        help="run the registered cores grid through the "
                             "parallel governed executor")
    parser.add_argument("--workers", type=int, default=1,
                        help="sweep mode: worker processes")
    parser.add_argument("--deadline", type=float, default=None,
                        help="sweep mode: per-instance deadline in seconds")
    parser.add_argument("--only", metavar="SUBSTRING", default=None,
                        help="restrict to instances whose name contains "
                             "SUBSTRING (unknown filters exit 2 with the "
                             "valid names)")
    args = parser.parse_args(argv)

    from repro.exceptions import UnknownInstanceError

    try:
        if args.sweep:
            report = run_core_sweep(args.workers, args.deadline,
                                    only=args.only)
        else:
            report = run_repeated_cores(
                args.repeat, use_cache=not args.no_cache, only=args.only
            )
    except UnknownInstanceError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
