"""P2 — substrate performance: core computation.

Times the iterated-retraction core algorithm on bipartite structures
(cores collapse to K2), bicycles (collapse to K4) and rigid cores
(no collapse — pure negative retraction searches).
"""

import pytest

from repro.homomorphism import compute_core
from repro.structures import (
    bicycle_structure,
    grid_structure,
    undirected_cycle,
    undirected_path,
)


@pytest.mark.parametrize("n", [6, 10, 14])
def bench_p02_core_of_path(benchmark, n):
    result = benchmark(compute_core, undirected_path(n))
    assert result.size() == 2


@pytest.mark.parametrize("dims", [(2, 3), (3, 3), (3, 4)])
def bench_p02_core_of_grid(benchmark, dims):
    result = benchmark(compute_core, grid_structure(*dims))
    assert result.size() == 2


@pytest.mark.parametrize("n", [5, 7])
def bench_p02_core_of_bicycle(benchmark, n):
    result = benchmark(compute_core, bicycle_structure(n))
    assert result.size() == 4


@pytest.mark.parametrize("n", [5, 7, 9])
def bench_p02_rigid_core_no_collapse(benchmark, n):
    # odd cycles are cores: the algorithm must fail every retraction
    result = benchmark(compute_core, undirected_cycle(n))
    assert result.size() == n
