"""E10 — Lemmas 7.2 / 7.3: CQ^k sentences and treewidth < k.

Two parts:

* Lemma 7.2: the canonical structure of each CQ^2 path sentence has
  treewidth 1 < 2, and the parse tree *is* a valid width-1 decomposition;
* Lemma 7.3 + the paper's correction: C_3 is a minimal model of the
  path-of-3 sentence with treewidth 2 (>= k), yet it is the surjective
  homomorphic image of a treewidth-1 minimal model.
"""

from _tables import emit_table, run_once

from repro.core import directed_cycle_is_nonwitness, finite_vcqk, lemma_7_3_witness
from repro.cq import parse_tree_decomposition, path_sentence_two_variables
from repro.logic import distinct_variable_count
from repro.structures import (
    directed_cycle,
    gaifman_graph,
    structure_treewidth,
)


def run_experiment():
    lemma_rows = []
    for length in (1, 2, 3, 4, 6, 8):
        sentence = path_sentence_two_variables(length)
        structure, decomposition = parse_tree_decomposition(sentence)
        valid = decomposition.is_valid(gaifman_graph(structure))
        lemma_rows.append((
            f"path-{length}",
            distinct_variable_count(sentence),
            structure.size(),
            structure_treewidth(structure),
            decomposition.width(),
            valid,
        ))

    c3, c3_treewidth = directed_cycle_is_nonwitness()
    correction_rows = [("C_3 itself", c3.size(), c3_treewidth, "-", "-")]
    for target_n in (3, 4, 5):
        sentence = finite_vcqk([path_sentence_two_variables(3)], 2)
        witness = lemma_7_3_witness(sentence, directed_cycle(target_n))
        correction_rows.append((
            f"Lemma 7.3 on C_{target_n}",
            witness.minimal_model.size(),
            witness.treewidth,
            witness.surjective,
            True,
        ))
    return lemma_rows, correction_rows


def bench_e10_cqk_treewidth(benchmark):
    lemma_rows, correction_rows = run_once(benchmark, run_experiment)
    emit_table(
        "e10_lemma72",
        "E10a Lemma 7.2: CQ^2 sentences -> canonical treewidth < 2",
        ["sentence", "k", "|D|", "tw(D)", "decomp width", "decomp valid"],
        lemma_rows,
    )
    emit_table(
        "e10_correction",
        "E10b Section 7.1 correction: C_3 (tw 2) vs Lemma 7.3 models (tw 1)",
        ["object", "size", "treewidth", "surjective hom", "tw < k"],
        correction_rows,
    )
    for row in lemma_rows:
        assert row[3] < row[1]          # Lemma 7.2's bound
        assert row[4] <= row[1] - 1     # parse-tree width <= k-1
        assert row[5]                   # decomposition validates
    assert correction_rows[0][2] == 2   # the counterexample
    for row in correction_rows[1:]:
        assert row[2] < 2               # the repaired statement
