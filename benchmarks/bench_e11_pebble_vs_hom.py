"""E11 — Theorem 7.6 + Dalmau–Kolaitis–Vardi (Section 7.2).

When core(A) has treewidth < k, the existential k-pebble game on (A, B)
is won by Duplicator exactly when a homomorphism A -> B exists.  Sweep
source structures with small-treewidth cores against assorted targets.
Shape: full agreement whenever the hypothesis holds; the game is never
*harder* for Duplicator than homomorphism existence (soundness).
"""

from _tables import emit_table, run_once

from repro.homomorphism import compute_core, has_homomorphism
from repro.pebble import duplicator_wins
from repro.structures import (
    directed_cycle,
    directed_path,
    grid_structure,
    random_directed_graph,
    structure_treewidth,
    undirected_path,
)


def run_experiment():
    k = 3
    sources = [
        ("P_4", directed_path(4)),
        ("C_3", directed_cycle(3)),
        ("C_4", directed_cycle(4)),
        ("sym P_3", undirected_path(3)),
        ("grid(2,2)", grid_structure(2, 2)),
    ]
    targets = [
        ("P_6", directed_path(6)),
        ("C_3", directed_cycle(3)),
        ("C_5", directed_cycle(5)),
        ("G(4,.4)", random_directed_graph(4, 0.4, 7)),
        ("G(5,.3)", random_directed_graph(5, 0.3, 8)),
    ]
    rows = []
    for source_name, a in sources:
        core_tw = structure_treewidth(compute_core(a))
        for target_name, b in targets:
            game = duplicator_wins(a, b, k)
            hom = has_homomorphism(a, b)
            rows.append((
                source_name, target_name, core_tw,
                core_tw < k, game, hom, game == hom,
            ))
    return rows


def bench_e11_pebble_vs_hom(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit_table(
        "e11_pebble_vs_hom",
        "E11 Dalmau et al.: core tw < 3 => (3-pebble game == hom A->B)",
        ["A", "B", "tw(core A)", "hypothesis", "duplicator", "hom",
         "agree"],
        rows,
    )
    for row in rows:
        if row[3]:
            assert row[6], row          # the cited theorem
        if row[5]:
            assert row[4], row          # hom always implies game win
