"""Incremental engine benchmark: edit streams, warm vs from-scratch.

Races the incremental engine against a from-scratch baseline on
small-edit streams over mutating structures, one stream per workload:

* ``fingerprint`` — WL fingerprint maintenance: ``apply_delta`` with
  retained refinement history vs a full recompute on a rebuilt twin.
* ``hom-true`` — a TRUE homomorphism query under benign edits: warm
  witness revalidation vs a fresh governed search per edit.
* ``hom-false`` — a FALSE query under hardening edits: monotonicity
  warm starts vs re-proving FALSE by exhaustion per edit.
* ``datalog`` — transitive closure over many disjoint components with
  single-component edits: DRed maintenance vs ``evaluate_semi_naive``
  from scratch.

Every step's incremental answer is checked against the from-scratch
answer — ``disagreements`` must stay empty — and the report carries
per-step speedups, per-workload medians and the overall
``median_speedup`` the CI bench gate asserts on.  Writes
``benchmarks/results/BENCH_incr.json``::

    python benchmarks/bench_incr.py
    python benchmarks/bench_incr.py --steps 5 --smoke
"""

import argparse
import json
import random
import statistics
import time

from repro.datalog.evaluation import evaluate_semi_naive
from repro.datalog.program import parse_program
from repro.engine.engine import HomEngine
from repro.engine.fingerprint import structure_fingerprint
from repro.engine.instrumentation import INCREMENTAL
from repro.incremental import (
    Delta,
    IncrementalFixpoint,
    IncrementalHomSession,
    apply_delta,
)
from repro.structures import (
    Structure,
    Vocabulary,
    undirected_cycle,
)

GRAPH = Vocabulary({"E": 2})


def rebuilt(structure):
    """A fresh instance equal to ``structure`` (no cached WL state)."""
    return Structure(
        structure.vocabulary,
        structure.universe,
        {
            name: structure.relation(name)
            for name in structure.vocabulary.relation_names
        },
        structure.constants,
    )


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


# ----------------------------------------------------------------------
# Workloads — each yields (incr_s, scratch_s, agree) per step
# ----------------------------------------------------------------------
def fingerprint_stream(steps, seed=0, n=600):
    # A sparse random digraph: WL colors converge in a few rounds, so
    # the edit's refinement radius stays far below the fallback frontier.
    rng = random.Random(seed)
    facts = sorted(
        {(i, (i + 1) % n) for i in range(n)}
        | {(rng.randrange(n), rng.randrange(n)) for _ in range(2 * n)}
    )
    current = Structure(GRAPH, range(n), {"E": facts})
    current, _ = apply_delta(current, Delta(add_facts=[("E", (0, n // 2))]))
    for _ in range(steps):
        a, b = rng.randrange(n), rng.randrange(n)
        if current.has_fact("E", (a, b)):
            delta = Delta(remove_facts=[("E", (a, b))])
        else:
            delta = Delta(add_facts=[("E", (a, b))])

        def incr():
            edited, record = apply_delta(current, delta)
            return edited, record.new_fingerprint

        incr_s, (edited, got) = _timed(incr)
        scratch_s, want = _timed(
            lambda: structure_fingerprint(rebuilt(edited))
        )
        current = edited
        yield incr_s, scratch_s, got == want


def hom_true_stream(steps, seed=1, n=450, edges=600):
    # A random 3-colorable source (hidden 3-partition, cross-class
    # edges only) mapping into the triangle.  Toggling cross-class
    # edges keeps the coloring witness alive, so every edit warm-starts
    # on an O(facts) revalidation while the from-scratch baseline
    # re-runs a genuine 3-coloring search.
    rng = random.Random(seed)
    cls = {i: i % 3 for i in range(n)}
    chosen = set()
    while len(chosen) < edges:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b and cls[a] != cls[b]:
            chosen.add((min(a, b), max(a, b)))
    facts = sorted(
        {(a, b) for a, b in chosen} | {(b, a) for a, b in chosen}
    )
    source = Structure(GRAPH, range(n), {"E": facts})
    target = undirected_cycle(3)
    session = IncrementalHomSession(source, target, engine=HomEngine())
    session.decide()
    for step in range(steps):
        while True:
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b and cls[a] != cls[b]:
                break
        if session.source.has_fact("E", (a, b)):
            delta = Delta(remove_facts=[("E", (a, b)), ("E", (b, a))])
        else:
            delta = Delta(add_facts=[("E", (a, b)), ("E", (b, a))])
        incr_s, verdict = _timed(lambda: session.edit_source(delta))
        # The baseline is the system's own non-incremental path: a cold
        # default engine (fingerprint for the cache key, target
        # compilation, full search).
        scratch_s, want = _timed(
            lambda: HomEngine().decide_homomorphism(
                rebuilt(session.source), rebuilt(session.target)
            )
        )
        yield incr_s, scratch_s, verdict.is_true == want.is_true


def hom_false_stream(steps, seed=2, girth=15):
    rng = random.Random(seed)
    source = undirected_cycle(girth)
    # C_girth -> C_{girth+2} has no homomorphism (odd girth too small);
    # every hardening edit preserves FALSE by monotonicity while the
    # baseline re-proves it by exhausting the search.
    target = undirected_cycle(girth + 2)
    session = IncrementalHomSession(source, target, engine=HomEngine())
    session.decide()
    for step in range(steps):
        # Hardening edits only: keep adding fresh pendant structure.
        new = 10_000 + step
        anchor = rng.randrange(girth)
        delta = Delta(
            add_elements=(new,),
            add_facts=[("E", (anchor, new)), ("E", (new, anchor))],
        )
        incr_s, verdict = _timed(lambda: session.edit_source(delta))
        scratch_s, want = _timed(
            lambda: HomEngine().decide_homomorphism(
                rebuilt(session.source), rebuilt(session.target)
            )
        )
        yield incr_s, scratch_s, verdict.is_false == want.is_false


TC_PROGRAM = parse_program(
    "T(x, y) <- E(x, y).\nT(x, z) <- E(x, y), T(y, z).", GRAPH
)


def datalog_stream(steps, seed=3, components=40, length=7):
    # Transitive closure over many disjoint path components; each edit
    # toggles a chord inside ONE component, so DRed maintenance touches
    # a 1/components fraction of what the from-scratch evaluation
    # recomputes.  Edits are addition-biased: DRed's rederivation phase
    # re-runs full joins, so deletions are the scheme's worst case and
    # appear at a realistic minority rate.
    rng = random.Random(seed)
    facts = []
    for c in range(components):
        base = c * length
        facts.extend(
            (base + i, base + i + 1) for i in range(length - 1)
        )
    structure = Structure(
        GRAPH, range(components * length), {"E": facts}
    )
    fix = IncrementalFixpoint(TC_PROGRAM, structure)
    fix.relation("T")
    added = []
    for _ in range(steps):
        if added and rng.random() < 0.25:
            tup = added.pop(rng.randrange(len(added)))
            delta = Delta(remove_facts=[("E", tup)])
        else:
            while True:
                base = rng.randrange(components) * length
                a = base + rng.randrange(length - 2)
                tup = (a, a + 2)
                if not fix.structure.has_fact("E", tup):
                    break
            added.append(tup)
            delta = Delta(add_facts=[("E", tup)])

        def incr():
            fix.apply(delta)
            return fix.relation("T")

        incr_s, got = _timed(incr)
        scratch_s, result = _timed(
            lambda: evaluate_semi_naive(TC_PROGRAM, rebuilt(fix.structure))
        )
        yield incr_s, scratch_s, got == set(result.relations["T"])


WORKLOADS = {
    "fingerprint": fingerprint_stream,
    "hom-true": hom_true_stream,
    "hom-false": hom_false_stream,
    "datalog": datalog_stream,
}


# ----------------------------------------------------------------------
def run(steps):
    INCREMENTAL.reset()
    workloads = []
    disagreements = []
    for name, stream in WORKLOADS.items():
        incr_total = scratch_total = 0.0
        speedups = []
        for step, (incr_s, scratch_s, agree) in enumerate(stream(steps)):
            if not agree:
                disagreements.append({"workload": name, "step": step})
            incr_total += incr_s
            scratch_total += scratch_s
            speedups.append(scratch_s / max(incr_s, 1e-9))
        workloads.append(
            {
                "workload": name,
                "steps": steps,
                "incremental_s": incr_total,
                "scratch_s": scratch_total,
                "median_speedup": statistics.median(speedups),
                "min_speedup": min(speedups),
                "max_speedup": max(speedups),
            }
        )
    return {
        "mode": "incr-compare",
        "steps_per_workload": steps,
        "disagreements": disagreements,
        "median_speedup": statistics.median(
            w["median_speedup"] for w in workloads
        ),
        "workloads": workloads,
        "incremental": INCREMENTAL.snapshot(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="incremental vs from-scratch edit-stream benchmark "
        "(writes BENCH_incr.json)"
    )
    parser.add_argument(
        "--steps", type=int, default=40, help="edits per workload stream"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="assert only correctness (zero disagreements), not speedups",
    )
    args = parser.parse_args(argv)

    report = run(args.steps)
    from _json import write_bench_json

    report["json_path"] = write_bench_json("incr", report)
    print(json.dumps(report, indent=2))
    if report["disagreements"]:
        return 1
    if not args.smoke and report["median_speedup"] < 5.0:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
