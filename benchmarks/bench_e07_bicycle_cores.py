"""E7 — Section 6.2: wheels, bicycles and cores of expansions.

Sweep odd n: the cores of the bicycles B_n stay K_4 (degree 3), while
the expansions (B_n, h) are their own cores with hub degree n.  Shape:
the left columns are constant, the right column grows linearly —
the paper's witness that Theorem 6.5 cannot extend to non-Boolean
queries via plebian companions.
"""

from _tables import emit_table, run_once

from repro.core import bicycle_core_is_k4, bicycle_sweep, wheel_is_core


def run_experiment():
    reports = bicycle_sweep([5, 7, 9, 11])
    rows = []
    for report in reports:
        rows.append((
            report.n,
            wheel_is_core(report.n),
            report.core_size,
            report.core_degree,
            bicycle_core_is_k4(report.n),
            report.expansion_is_core,
            report.expansion_core_degree,
        ))
    return rows


def bench_e07_bicycle_cores(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit_table(
        "e07_bicycle_cores",
        "E7  Section 6.2: core(B_n) = K_4 vs (B_n, h) a core of degree n",
        ["n", "W_n core", "core size", "core deg", "core = K4",
         "(B_n,h) core", "(B_n,h) core deg"],
        rows,
    )
    assert all(row[1] for row in rows)            # odd wheels are cores
    assert all(row[2] == 4 and row[3] == 3 for row in rows)
    assert all(row[4] and row[5] for row in rows)
    degrees = [row[6] for row in rows]
    assert degrees == [5, 7, 9, 11]               # unbounded growth
