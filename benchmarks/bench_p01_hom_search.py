"""P1 — substrate performance: homomorphism search scaling.

Times the CSP solver on positive and negative instances as the target
grows.  Shape: sub-second on all experiment-scale inputs; negative
odd-cycle coloring instances are the hardest (as CSP theory predicts).

Run as a script for the *repeated-query* mode, which replays a mixed
workload of recurring (source, target) pairs through the hom engine and
reports timing plus cache/solver counters as JSON::

    python benchmarks/bench_p01_hom_search.py --repeat 25
    python benchmarks/bench_p01_hom_search.py --repeat 25 --no-cache
    python benchmarks/bench_p01_hom_search.py --repeat 25 --compare

``--compare`` runs both configurations and reports the speedup (the
engine's acceptance bar is >= 5x with the cache on).
"""

import argparse
import json
import time

import pytest

from repro.engine import HomEngine
from repro.structures import (
    directed_path,
    random_directed_graph,
    undirected_cycle,
    undirected_path,
)

# The microbenchmarks measure the *solver*, so they bypass the memo
# cache (pytest-benchmark replays each call many times and would
# otherwise time cache hits); the instrumentation stays on.
_UNCACHED = HomEngine(cache_enabled=False)


def _solve(source, target):
    return _UNCACHED.find_homomorphism(source, target)


@pytest.mark.parametrize("n", [8, 16, 32])
def bench_p01_path_into_random(benchmark, n):
    source = directed_path(6)
    target = random_directed_graph(n, 0.3, seed=n)
    result = benchmark(_solve, source, target)
    assert result is not None


@pytest.mark.parametrize("n", [5, 7, 9])
def bench_p01_odd_cycle_coloring_negative(benchmark, n):
    # no hom from odd cycle to K2: the classic hard negative
    source = undirected_cycle(n)
    target = undirected_path(2)
    result = benchmark(_solve, source, target)
    assert result is None


@pytest.mark.parametrize("size", [4, 6, 8])
def bench_p01_random_pairs(benchmark, size):
    source = random_directed_graph(size, 0.25, seed=1)
    target = random_directed_graph(size + 2, 0.35, seed=2)
    benchmark(_solve, source, target)


# ----------------------------------------------------------------------
# Repeated-query mode (script entry point)
# ----------------------------------------------------------------------
def repeated_query_workload():
    """The recurring (source, target) pairs the sweeps keep re-asking."""
    pairs = []
    for n in (7, 9, 11):
        # hard negatives: odd cycle has no 2-coloring
        pairs.append((undirected_cycle(n), undirected_path(2)))
    for n in (8, 16, 32):
        pairs.append((directed_path(6), random_directed_graph(n, 0.3, seed=n)))
    for size in (4, 6, 8):
        pairs.append((
            random_directed_graph(size, 0.25, seed=1),
            random_directed_graph(size + 2, 0.35, seed=2),
        ))
    return pairs


def run_repeated_queries(repeat: int, use_cache: bool) -> dict:
    """Replay the workload ``repeat`` times through a private engine."""
    pairs = repeated_query_workload()
    engine = HomEngine(cache_enabled=use_cache)
    found = 0
    started = time.perf_counter()
    for _ in range(repeat):
        for source, target in pairs:
            if engine.find_homomorphism(source, target) is not None:
                found += 1
    elapsed = time.perf_counter() - started
    snapshot = engine.snapshot()
    return {
        "mode": "repeated-query",
        "pairs": len(pairs),
        "repeat": repeat,
        "queries": repeat * len(pairs),
        "positive": found,
        "cache_enabled": use_cache,
        "elapsed_s": elapsed,
        "solver": snapshot["solver"],
        "cache": snapshot["cache"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repeated-query homomorphism benchmark (JSON output)"
    )
    parser.add_argument("--repeat", type=int, default=25,
                        help="times the workload is replayed")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the engine's memo cache")
    parser.add_argument("--compare", action="store_true",
                        help="run cached and uncached, report the speedup")
    args = parser.parse_args(argv)

    if args.compare:
        uncached = run_repeated_queries(args.repeat, use_cache=False)
        cached = run_repeated_queries(args.repeat, use_cache=True)
        report = {
            "mode": "repeated-query-compare",
            "repeat": args.repeat,
            "queries": cached["queries"],
            "cached": cached,
            "uncached": uncached,
            "speedup": (
                uncached["elapsed_s"] / cached["elapsed_s"]
                if cached["elapsed_s"] > 0 else float("inf")
            ),
            "cache": cached["cache"],
        }
        print(json.dumps(report, indent=2))
        return 0

    report = run_repeated_queries(args.repeat, use_cache=not args.no_cache)
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
