"""P1 — substrate performance: homomorphism search scaling.

Times the CSP solver on positive and negative instances as the target
grows.  Shape: sub-second on all experiment-scale inputs; negative
odd-cycle coloring instances are the hardest (as CSP theory predicts).
"""

import pytest

from repro.homomorphism import find_homomorphism
from repro.structures import (
    directed_path,
    random_directed_graph,
    undirected_cycle,
    undirected_path,
)


@pytest.mark.parametrize("n", [8, 16, 32])
def bench_p01_path_into_random(benchmark, n):
    source = directed_path(6)
    target = random_directed_graph(n, 0.3, seed=n)
    result = benchmark(find_homomorphism, source, target)
    assert result is not None


@pytest.mark.parametrize("n", [5, 7, 9])
def bench_p01_odd_cycle_coloring_negative(benchmark, n):
    # no hom from odd cycle to K2: the classic hard negative
    source = undirected_cycle(n)
    target = undirected_path(2)
    result = benchmark(find_homomorphism, source, target)
    assert result is None


@pytest.mark.parametrize("size", [4, 6, 8])
def bench_p01_random_pairs(benchmark, size):
    source = random_directed_graph(size, 0.25, seed=1)
    target = random_directed_graph(size + 2, 0.35, seed=2)
    benchmark(find_homomorphism, source, target)
