"""P1 — substrate performance: homomorphism search scaling.

Times the CSP solver on positive and negative instances as the target
grows.  Shape: sub-second on all experiment-scale inputs; negative
odd-cycle coloring instances are the hardest (as CSP theory predicts).

Run as a script for the *repeated-query* mode, which replays a mixed
workload of recurring (source, target) pairs through the hom engine and
reports timing plus cache/solver counters as JSON::

    python benchmarks/bench_p01_hom_search.py --repeat 25
    python benchmarks/bench_p01_hom_search.py --repeat 25 --no-cache
    python benchmarks/bench_p01_hom_search.py --repeat 25 --compare

``--compare`` runs both configurations and reports the speedup (the
engine's acceptance bar is >= 5x with the cache on).

The *kernel-compare* mode races the compiled bitset kernel against the
reference backtracking solver on the same grid (memo caches off, so it
times solving, not caching), checks the verdicts agree on every
instance, and writes the machine-readable ``BENCH_hom.json`` next to
the journals under ``benchmarks/results/``::

    python benchmarks/bench_p01_hom_search.py --kernel-compare
    python benchmarks/bench_p01_hom_search.py --kernel-compare --grid tiny

The kernel's acceptance bar is a >= 5x median speedup on the medium
grid with zero disagreements.
"""

import argparse
import json
import statistics
import time

import pytest

from repro.engine import HomEngine
from repro.structures import (
    directed_path,
    path_with_random_chords,
    random_directed_graph,
    undirected_cycle,
    undirected_path,
)

# The microbenchmarks measure the *solver*, so they bypass the memo
# cache (pytest-benchmark replays each call many times and would
# otherwise time cache hits); the instrumentation stays on.
_UNCACHED = HomEngine(cache_enabled=False)


def _solve(source, target):
    return _UNCACHED.find_homomorphism(source, target)


@pytest.mark.parametrize("n", [8, 16, 32])
def bench_p01_path_into_random(benchmark, n):
    source = directed_path(6)
    target = random_directed_graph(n, 0.3, seed=n)
    result = benchmark(_solve, source, target)
    assert result is not None


@pytest.mark.parametrize("n", [5, 7, 9])
def bench_p01_odd_cycle_coloring_negative(benchmark, n):
    # no hom from odd cycle to K2: the classic hard negative
    source = undirected_cycle(n)
    target = undirected_path(2)
    result = benchmark(_solve, source, target)
    assert result is None


@pytest.mark.parametrize("size", [4, 6, 8])
def bench_p01_random_pairs(benchmark, size):
    source = random_directed_graph(size, 0.25, seed=1)
    target = random_directed_graph(size + 2, 0.35, seed=2)
    benchmark(_solve, source, target)


# ----------------------------------------------------------------------
# Repeated-query mode (script entry point)
# ----------------------------------------------------------------------
def repeated_query_workload():
    """The recurring (source, target) pairs the sweeps keep re-asking."""
    pairs = []
    for n in (7, 9, 11):
        # hard negatives: odd cycle has no 2-coloring
        pairs.append((undirected_cycle(n), undirected_path(2)))
    for n in (8, 16, 32):
        pairs.append((directed_path(6), random_directed_graph(n, 0.3, seed=n)))
    for size in (4, 6, 8):
        pairs.append((
            random_directed_graph(size, 0.25, seed=1),
            random_directed_graph(size + 2, 0.35, seed=2),
        ))
    return pairs


def run_repeated_queries(repeat: int, use_cache: bool) -> dict:
    """Replay the workload ``repeat`` times through a private engine."""
    pairs = repeated_query_workload()
    engine = HomEngine(cache_enabled=use_cache)
    found = 0
    started = time.perf_counter()
    for _ in range(repeat):
        for source, target in pairs:
            if engine.find_homomorphism(source, target) is not None:
                found += 1
    elapsed = time.perf_counter() - started
    snapshot = engine.snapshot()
    return {
        "mode": "repeated-query",
        "pairs": len(pairs),
        "repeat": repeat,
        "queries": repeat * len(pairs),
        "positive": found,
        "cache_enabled": use_cache,
        "elapsed_s": elapsed,
        "solver": snapshot["solver"],
        "cache": snapshot["cache"],
    }


# ----------------------------------------------------------------------
# Kernel-vs-reference compare mode (script entry point)
# ----------------------------------------------------------------------
def kernel_compare_workload(grid: str):
    """Named (source, target) pairs for the kernel/reference race.

    The ``medium`` grid is the acceptance grid: it includes the
    chorded-path refutations whose node-by-node AC-3 re-scans dominate
    the reference solver.  ``tiny`` is the CI smoke subset (seconds,
    not minutes, on a cold runner).
    """
    pairs = [
        ("odd-cycle-7-vs-k2", undirected_cycle(7), undirected_path(2)),
        ("odd-cycle-9-vs-k2", undirected_cycle(9), undirected_path(2)),
        ("path6-into-random-8",
         directed_path(6), random_directed_graph(8, 0.3, seed=8)),
        ("random-pair-4",
         random_directed_graph(4, 0.25, seed=1),
         random_directed_graph(6, 0.35, seed=2)),
        ("chorded-30-6-s1-vs-c7",
         path_with_random_chords(30, 6, seed=1), undirected_cycle(7)),
    ]
    if grid == "tiny":
        return pairs
    pairs += [
        ("odd-cycle-11-vs-k2", undirected_cycle(11), undirected_path(2)),
        ("path6-into-random-16",
         directed_path(6), random_directed_graph(16, 0.3, seed=16)),
        ("path6-into-random-32",
         directed_path(6), random_directed_graph(32, 0.3, seed=32)),
        ("random-pair-6",
         random_directed_graph(6, 0.25, seed=1),
         random_directed_graph(8, 0.35, seed=2)),
        ("random-pair-8",
         random_directed_graph(8, 0.25, seed=1),
         random_directed_graph(10, 0.35, seed=2)),
        ("chorded-40-8-s1-vs-c7",
         path_with_random_chords(40, 8, seed=1), undirected_cycle(7)),
        ("chorded-50-10-s3-vs-c7",
         path_with_random_chords(50, 10, seed=3), undirected_cycle(7)),
        ("chorded-60-12-s5-vs-c7",
         path_with_random_chords(60, 12, seed=5), undirected_cycle(7)),
    ]
    return pairs


def _time_solver(engine, source, target, repeat):
    """Best-of-``repeat`` wall time plus the first run's search counters."""
    best = float("inf")
    nodes = backtracks = 0
    found = None
    for attempt in range(repeat):
        before_nodes = engine.stats.nodes
        before_backtracks = engine.stats.backtracks
        started = time.perf_counter()
        result = engine.find_homomorphism(source, target)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        if attempt == 0:
            found = result is not None
            nodes = engine.stats.nodes - before_nodes
            backtracks = engine.stats.backtracks - before_backtracks
    return {
        "found": found,
        "best_s": best,
        "nodes": nodes,
        "backtracks": backtracks,
    }


def run_kernel_compare(grid: str, repeat: int) -> dict:
    """Race the bitset kernel against the reference solver per instance.

    Memo caches are disabled on both engines so the race times solving;
    the kernel engine still reuses its compiled target across repeats,
    exactly as the production engine does across queries.
    """
    from _json import write_bench_json

    reference = HomEngine(cache_enabled=False, use_kernel=False)
    kernel = HomEngine(cache_enabled=False, use_kernel=True)
    rows = []
    disagreements = []
    speedups = []
    for name, source, target in kernel_compare_workload(grid):
        ref = _time_solver(reference, source, target, repeat)
        ker = _time_solver(kernel, source, target, repeat)
        speedup = (
            ref["best_s"] / ker["best_s"] if ker["best_s"] > 0
            else float("inf")
        )
        speedups.append(speedup)
        if ref["found"] != ker["found"]:
            disagreements.append(name)
        rows.append({
            "instance": name,
            "found": ker["found"],
            "reference": ref,
            "kernel": ker,
            "speedup": speedup,
        })
    report = {
        "mode": "kernel-compare",
        "grid": grid,
        "repeat": repeat,
        "instances": len(rows),
        "disagreements": disagreements,
        "median_speedup": statistics.median(speedups),
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "kernel_snapshot": kernel.snapshot()["compiled_targets"],
        "results": rows,
    }
    report["json_path"] = write_bench_json("hom", report)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repeated-query homomorphism benchmark (JSON output)"
    )
    parser.add_argument("--repeat", type=int, default=25,
                        help="times the workload is replayed "
                             "(kernel-compare: best-of runs per instance)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the engine's memo cache")
    parser.add_argument("--compare", action="store_true",
                        help="run cached and uncached, report the speedup")
    parser.add_argument("--kernel-compare", action="store_true",
                        help="race the bitset kernel against the reference "
                             "solver; writes BENCH_hom.json")
    parser.add_argument("--grid", choices=("tiny", "medium"),
                        default="medium",
                        help="kernel-compare instance grid")
    args = parser.parse_args(argv)

    if args.kernel_compare:
        # --repeat defaults to 25 for the replay mode; best-of-3 is
        # plenty for per-instance timing.
        repeat = 3 if args.repeat == 25 else args.repeat
        report = run_kernel_compare(args.grid, repeat)
        print(json.dumps(report, indent=2))
        return 0 if not report["disagreements"] else 1

    if args.compare:
        uncached = run_repeated_queries(args.repeat, use_cache=False)
        cached = run_repeated_queries(args.repeat, use_cache=True)
        report = {
            "mode": "repeated-query-compare",
            "repeat": args.repeat,
            "queries": cached["queries"],
            "cached": cached,
            "uncached": uncached,
            "speedup": (
                uncached["elapsed_s"] / cached["elapsed_s"]
                if cached["elapsed_s"] > 0 else float("inf")
            ),
            "cache": cached["cache"],
        }
        print(json.dumps(report, indent=2))
        return 0

    report = run_repeated_queries(args.repeat, use_cache=not args.no_cache)
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
