"""P1 — substrate performance: homomorphism search scaling.

Times the CSP solver on positive and negative instances as the target
grows.  Shape: sub-second on all experiment-scale inputs; negative
odd-cycle coloring instances are the hardest (as CSP theory predicts).

Run as a script for the *repeated-query* mode, which replays a mixed
workload of recurring (source, target) pairs through the hom engine and
reports timing plus cache/solver counters as JSON::

    python benchmarks/bench_p01_hom_search.py --repeat 25
    python benchmarks/bench_p01_hom_search.py --repeat 25 --no-cache
    python benchmarks/bench_p01_hom_search.py --repeat 25 --compare

``--compare`` runs both configurations and reports the speedup (the
engine's acceptance bar is >= 5x with the cache on).

The *kernel-compare* mode races the compiled bitset kernel against the
reference backtracking solver on the same grid (memo caches off, so it
times solving, not caching), checks the verdicts agree on every
instance, and writes the machine-readable ``BENCH_hom.json`` next to
the journals under ``benchmarks/results/``::

    python benchmarks/bench_p01_hom_search.py --kernel-compare
    python benchmarks/bench_p01_hom_search.py --kernel-compare --grid tiny

The kernel's acceptance bar is a >= 5x median speedup on the medium
grid with zero disagreements.

The *batch* mode times ``solve_batch`` (one compiled target + shared
scratch for a whole query list) against a loop of single solves that
recompiles the target per query, and merges a ``batch`` section into
``BENCH_hom.json`` without clobbering the kernel-compare keys::

    python benchmarks/bench_p01_hom_search.py --batch

The batch acceptance bar is >= 2x over the recompile loop (the CI
bench-smoke gate asserts >= 1.0, i.e. batch-not-slower).

The *dp-compare* mode checks the treewidth-DP path against the
backtracking kernel on DP-eligible instances (low-treewidth sources
past the variable-count gate) and writes ``BENCH_dp.json``; its gate is
zero disagreements with ``dp_solves >= 1`` (the DP path actually ran)::

    python benchmarks/bench_p01_hom_search.py --dp-compare

``--only SUBSTRING`` filters the kernel-compare grid by instance name;
an unmatched filter is a structured error (exit 2) listing the valid
names.
"""

import argparse
import json
import os
import statistics
import sys
import time

import pytest

from repro.engine import HomEngine
from repro.exceptions import UnknownInstanceError
from repro.kernel import BitsetHomomorphismSolver, CompiledTarget
from repro.structures import (
    directed_cycle,
    directed_path,
    path_with_random_chords,
    random_directed_graph,
    undirected_cycle,
    undirected_path,
)

# The microbenchmarks measure the *solver*, so they bypass the memo
# cache (pytest-benchmark replays each call many times and would
# otherwise time cache hits); the instrumentation stays on.
_UNCACHED = HomEngine(cache_enabled=False)


def _solve(source, target):
    return _UNCACHED.find_homomorphism(source, target)


@pytest.mark.parametrize("n", [8, 16, 32])
def bench_p01_path_into_random(benchmark, n):
    source = directed_path(6)
    target = random_directed_graph(n, 0.3, seed=n)
    result = benchmark(_solve, source, target)
    assert result is not None


@pytest.mark.parametrize("n", [5, 7, 9])
def bench_p01_odd_cycle_coloring_negative(benchmark, n):
    # no hom from odd cycle to K2: the classic hard negative
    source = undirected_cycle(n)
    target = undirected_path(2)
    result = benchmark(_solve, source, target)
    assert result is None


@pytest.mark.parametrize("size", [4, 6, 8])
def bench_p01_random_pairs(benchmark, size):
    source = random_directed_graph(size, 0.25, seed=1)
    target = random_directed_graph(size + 2, 0.35, seed=2)
    benchmark(_solve, source, target)


# ----------------------------------------------------------------------
# Repeated-query mode (script entry point)
# ----------------------------------------------------------------------
def repeated_query_workload():
    """The recurring (source, target) pairs the sweeps keep re-asking."""
    pairs = []
    for n in (7, 9, 11):
        # hard negatives: odd cycle has no 2-coloring
        pairs.append((undirected_cycle(n), undirected_path(2)))
    for n in (8, 16, 32):
        pairs.append((directed_path(6), random_directed_graph(n, 0.3, seed=n)))
    for size in (4, 6, 8):
        pairs.append((
            random_directed_graph(size, 0.25, seed=1),
            random_directed_graph(size + 2, 0.35, seed=2),
        ))
    return pairs


def run_repeated_queries(repeat: int, use_cache: bool) -> dict:
    """Replay the workload ``repeat`` times through a private engine."""
    pairs = repeated_query_workload()
    engine = HomEngine(cache_enabled=use_cache)
    found = 0
    started = time.perf_counter()
    for _ in range(repeat):
        for source, target in pairs:
            if engine.find_homomorphism(source, target) is not None:
                found += 1
    elapsed = time.perf_counter() - started
    snapshot = engine.snapshot()
    return {
        "mode": "repeated-query",
        "pairs": len(pairs),
        "repeat": repeat,
        "queries": repeat * len(pairs),
        "positive": found,
        "cache_enabled": use_cache,
        "elapsed_s": elapsed,
        "solver": snapshot["solver"],
        "cache": snapshot["cache"],
    }


# ----------------------------------------------------------------------
# Kernel-vs-reference compare mode (script entry point)
# ----------------------------------------------------------------------
def kernel_compare_workload(grid: str):
    """Named (source, target) pairs for the kernel/reference race.

    The ``medium`` grid is the acceptance grid: it includes the
    chorded-path refutations whose node-by-node AC-3 re-scans dominate
    the reference solver.  ``tiny`` is the CI smoke subset (seconds,
    not minutes, on a cold runner).
    """
    pairs = [
        ("odd-cycle-7-vs-k2", undirected_cycle(7), undirected_path(2)),
        ("odd-cycle-9-vs-k2", undirected_cycle(9), undirected_path(2)),
        ("path6-into-random-8",
         directed_path(6), random_directed_graph(8, 0.3, seed=8)),
        ("random-pair-4",
         random_directed_graph(4, 0.25, seed=1),
         random_directed_graph(6, 0.35, seed=2)),
        ("chorded-30-6-s1-vs-c7",
         path_with_random_chords(30, 6, seed=1), undirected_cycle(7)),
    ]
    if grid == "tiny":
        return pairs
    pairs += [
        ("odd-cycle-11-vs-k2", undirected_cycle(11), undirected_path(2)),
        ("path6-into-random-16",
         directed_path(6), random_directed_graph(16, 0.3, seed=16)),
        ("path6-into-random-32",
         directed_path(6), random_directed_graph(32, 0.3, seed=32)),
        ("random-pair-6",
         random_directed_graph(6, 0.25, seed=1),
         random_directed_graph(8, 0.35, seed=2)),
        ("random-pair-8",
         random_directed_graph(8, 0.25, seed=1),
         random_directed_graph(10, 0.35, seed=2)),
        ("chorded-40-8-s1-vs-c7",
         path_with_random_chords(40, 8, seed=1), undirected_cycle(7)),
        ("chorded-50-10-s3-vs-c7",
         path_with_random_chords(50, 10, seed=3), undirected_cycle(7)),
        ("chorded-60-12-s5-vs-c7",
         path_with_random_chords(60, 12, seed=5), undirected_cycle(7)),
    ]
    return pairs


def _time_solver(engine, source, target, repeat):
    """Best-of-``repeat`` wall time plus the first run's search counters."""
    best = float("inf")
    nodes = backtracks = 0
    found = None
    for attempt in range(repeat):
        before_nodes = engine.stats.nodes
        before_backtracks = engine.stats.backtracks
        started = time.perf_counter()
        result = engine.find_homomorphism(source, target)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        if attempt == 0:
            found = result is not None
            nodes = engine.stats.nodes - before_nodes
            backtracks = engine.stats.backtracks - before_backtracks
    return {
        "found": found,
        "best_s": best,
        "nodes": nodes,
        "backtracks": backtracks,
    }


def _load_existing_bench(name: str) -> dict:
    """The prior ``BENCH_<name>.json`` payload, wrapper fields stripped.

    Lets modes that share one bench file merge their sections instead
    of clobbering each other's keys.
    """
    from _json import RESULTS_DIR

    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return {}
    if not isinstance(document, dict):
        return {}
    for key in ("schema_version", "bench", "unix_time", "python",
                "machine", "cpu_count", "json_path"):
        document.pop(key, None)
    return document


def filter_workload(pairs, only):
    """The instances whose name contains ``only`` (all if ``None``).

    Raises :class:`~repro.exceptions.UnknownInstanceError` when nothing
    matches, listing the valid names.
    """
    if only is None:
        return pairs
    matched = [row for row in pairs if only in row[0]]
    if not matched:
        raise UnknownInstanceError(only, [row[0] for row in pairs])
    return matched


def run_kernel_compare(grid: str, repeat: int, only=None) -> dict:
    """Race the bitset kernel against the reference solver per instance.

    Memo caches are disabled on both engines so the race times solving;
    the kernel engine still reuses its compiled target across repeats,
    exactly as the production engine does across queries.
    """
    # validate the filter before touching engines or result files, so
    # an unknown --only name fails fast and structurally
    workload = filter_workload(kernel_compare_workload(grid), only)
    from _json import write_bench_json

    reference = HomEngine(cache_enabled=False, use_kernel=False)
    kernel = HomEngine(cache_enabled=False, use_kernel=True)
    rows = []
    disagreements = []
    speedups = []
    for name, source, target in workload:
        ref = _time_solver(reference, source, target, repeat)
        ker = _time_solver(kernel, source, target, repeat)
        speedup = (
            ref["best_s"] / ker["best_s"] if ker["best_s"] > 0
            else float("inf")
        )
        speedups.append(speedup)
        if ref["found"] != ker["found"]:
            disagreements.append(name)
        rows.append({
            "instance": name,
            "found": ker["found"],
            "reference": ref,
            "kernel": ker,
            "speedup": speedup,
        })
    report = {
        "mode": "kernel-compare",
        "grid": grid,
        "repeat": repeat,
        "instances": len(rows),
        "disagreements": disagreements,
        "median_speedup": statistics.median(speedups),
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "kernel_snapshot": kernel.snapshot()["compiled_targets"],
        "results": rows,
    }
    prior_batch = _load_existing_bench("hom").get("batch")
    if prior_batch is not None:
        report["batch"] = prior_batch
    report["json_path"] = write_bench_json("hom", report)
    return report


# ----------------------------------------------------------------------
# Batch-vs-loop compare mode (script entry point)
# ----------------------------------------------------------------------
def batch_workload():
    """One medium target plus a list of small recurring queries.

    The shape sweeps ask: many small patterns probed against one shared
    instance, where per-query target compilation dominates a naive loop.
    """
    target = random_directed_graph(64, 0.1, seed=64)
    sources = []
    for n in (2, 3, 4, 5, 6):
        sources.append((f"path-{n}", directed_path(n)))
    for n in (3, 4, 5):
        sources.append((f"cycle-{n}", directed_cycle(n)))
    for seed in range(6):
        sources.append((
            f"random-4-s{seed}",
            random_directed_graph(4, 0.3, seed=seed),
        ))
    for seed in range(4):
        sources.append((
            f"random-5-s{seed}",
            random_directed_graph(5, 0.25, seed=seed),
        ))
    # duplicates: the batch session's dedup memo answers them for free
    sources.append(("path-4-again", directed_path(4)))
    sources.append(("cycle-3-again", directed_cycle(3)))
    return target, sources


def _time_batch_strategies(target, sources, repeat):
    """Best-of-``repeat`` wall time for each solving strategy."""
    structures = [s for _, s in sources]

    def loop_singles():
        # the naive loop: a fresh target compilation for every query
        return [
            BitsetHomomorphismSolver(s, CompiledTarget(target)).first()
            for s in structures
        ]

    def engine_loop():
        engine = HomEngine(cache_enabled=False)
        return [engine.find_homomorphism(s, target) for s in structures]

    def batch():
        return BitsetHomomorphismSolver.solve_batch(structures, target)

    timings = {}
    verdicts = {}
    for name, strategy in (
        ("loop_singles", loop_singles),
        ("engine_loop", engine_loop),
        ("batch", batch),
    ):
        best = float("inf")
        for _ in range(repeat):
            started = time.perf_counter()
            results = strategy()
            best = min(best, time.perf_counter() - started)
        timings[name] = best
        verdicts[name] = [r is not None for r in results]
    return timings, verdicts


def run_batch_compare(repeat: int) -> dict:
    """Time ``solve_batch`` against loops of single solves.

    Merges the report under the ``batch`` key of ``BENCH_hom.json``,
    preserving any kernel-compare results already there.
    """
    from _json import write_bench_json

    target, sources = batch_workload()
    timings, verdicts = _time_batch_strategies(target, sources, repeat)
    disagreements = [
        name
        for index, (name, _) in enumerate(sources)
        if len({verdicts[k][index] for k in verdicts}) > 1
    ]
    report = {
        "mode": "batch-compare",
        "repeat": repeat,
        "queries": len(sources),
        "target_size": target.size(),
        "found": sum(verdicts["batch"]),
        "disagreements": disagreements,
        "timings_s": timings,
        "speedup_vs_loop": (
            timings["loop_singles"] / timings["batch"]
            if timings["batch"] > 0 else float("inf")
        ),
        "speedup_vs_engine_loop": (
            timings["engine_loop"] / timings["batch"]
            if timings["batch"] > 0 else float("inf")
        ),
    }
    payload = _load_existing_bench("hom")
    payload["batch"] = report
    report["json_path"] = write_bench_json("hom", payload)
    return report


# ----------------------------------------------------------------------
# DP-vs-backtracking compare mode (script entry point)
# ----------------------------------------------------------------------
def dp_compare_workload():
    """DP-eligible instances: large low-treewidth sources.

    Cycles and paths have treewidth <= 2, so with ``dp_min_vars=8``
    every instance here routes through the tree-decomposition DP.
    """
    return [
        ("even-cycle-12-vs-k2", undirected_cycle(12), undirected_path(2)),
        ("odd-cycle-13-vs-k2", undirected_cycle(13), undirected_path(2)),
        ("even-cycle-18-vs-k2", undirected_cycle(18), undirected_path(2)),
        ("odd-cycle-19-vs-k2", undirected_cycle(19), undirected_path(2)),
        ("cycle-14-vs-c7", undirected_cycle(14), undirected_cycle(7)),
        ("cycle-15-vs-c5", undirected_cycle(15), undirected_cycle(5)),
        ("odd-13-vs-odd-15", undirected_cycle(13), undirected_cycle(15)),
        ("path-16-into-random-8",
         directed_path(16), random_directed_graph(8, 0.3, seed=8)),
    ]


def run_dp_compare(repeat: int) -> dict:
    """Race the treewidth DP against the plain backtracking kernel.

    The acceptance gate is *correctness*, not speed: zero verdict
    disagreements and proof (via the ``dp_solves`` counter) that the DP
    path actually handled the instances.  Writes ``BENCH_dp.json``.
    """
    from _json import write_bench_json

    dp_engine = HomEngine(cache_enabled=False, use_dp=True, dp_min_vars=8)
    bt_engine = HomEngine(cache_enabled=False, use_dp=False)
    rows = []
    disagreements = []
    for name, source, target in dp_compare_workload():
        dp = _time_solver(dp_engine, source, target, repeat)
        bt = _time_solver(bt_engine, source, target, repeat)
        if dp["found"] != bt["found"]:
            disagreements.append(name)
        rows.append({
            "instance": name,
            "found": dp["found"],
            "dp": dp,
            "backtracking": bt,
        })
    stats = dp_engine.stats
    report = {
        "mode": "dp-compare",
        "repeat": repeat,
        "instances": len(rows),
        "disagreements": disagreements,
        "dp_solves": stats.dp_solves,
        "dp_bags": stats.dp_bags,
        "dp_entries": stats.dp_entries,
        "results": rows,
    }
    report["json_path"] = write_bench_json("dp", report)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repeated-query homomorphism benchmark (JSON output)"
    )
    parser.add_argument("--repeat", type=int, default=25,
                        help="times the workload is replayed "
                             "(kernel-compare: best-of runs per instance)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the engine's memo cache")
    parser.add_argument("--compare", action="store_true",
                        help="run cached and uncached, report the speedup")
    parser.add_argument("--kernel-compare", action="store_true",
                        help="race the bitset kernel against the reference "
                             "solver; writes BENCH_hom.json")
    parser.add_argument("--grid", choices=("tiny", "medium"),
                        default="medium",
                        help="kernel-compare instance grid")
    parser.add_argument("--only", metavar="SUBSTRING", default=None,
                        help="kernel-compare: restrict to instances whose "
                             "name contains SUBSTRING")
    parser.add_argument("--batch", action="store_true",
                        help="time solve_batch against loops of single "
                             "solves; merges into BENCH_hom.json")
    parser.add_argument("--dp-compare", action="store_true",
                        help="check the treewidth DP against backtracking; "
                             "writes BENCH_dp.json")
    args = parser.parse_args(argv)

    # --repeat defaults to 25 for the replay mode; best-of-3 is plenty
    # for per-instance timing in the compare modes.
    best_of = 3 if args.repeat == 25 else args.repeat

    if args.kernel_compare:
        try:
            report = run_kernel_compare(args.grid, best_of, only=args.only)
        except UnknownInstanceError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        print(json.dumps(report, indent=2))
        return 0 if not report["disagreements"] else 1

    if args.batch:
        report = run_batch_compare(best_of)
        print(json.dumps(report, indent=2))
        return 0 if not report["disagreements"] else 1

    if args.dp_compare:
        report = run_dp_compare(best_of)
        print(json.dumps(report, indent=2))
        ok = not report["disagreements"] and report["dp_solves"] >= 1
        return 0 if ok else 1

    if args.compare:
        uncached = run_repeated_queries(args.repeat, use_cache=False)
        cached = run_repeated_queries(args.repeat, use_cache=True)
        report = {
            "mode": "repeated-query-compare",
            "repeat": args.repeat,
            "queries": cached["queries"],
            "cached": cached,
            "uncached": uncached,
            "speedup": (
                uncached["elapsed_s"] / cached["elapsed_s"]
                if cached["elapsed_s"] > 0 else float("inf")
            ),
            "cache": cached["cache"],
        }
        print(json.dumps(report, indent=2))
        return 0

    report = run_repeated_queries(args.repeat, use_cache=not args.no_cache)
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
