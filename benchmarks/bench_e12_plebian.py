"""E12 — Section 6.1: plebian companions (Observations 6.1–6.3).

Sweep structures expanded with constants: the companion's Gaifman graph
is a subgraph of the original's (Obs 6.1) and companion vocabulary sizes
follow the ``R_m`` combinatorics.

**Reproduction finding (gap in Obs 6.2):** the direction
"hom(pA, pB) => hom(A, B)" verifies with explicit witnesses, but the
paper's claimed converse fails when a homomorphism maps an unnamed
element of A onto a constant of B — the minimal counterexample (an edge
into the constant vs a loop on the constant) is part of the sweep.
"""

from _tables import emit_table, run_once

from repro.core import (
    observation_6_1_holds,
    observation_6_2_counterexample,
    observation_6_2_extension_direction,
    observation_6_2_restriction_direction,
    plebian_companion,
    plebian_vocabulary,
)
from repro.structures import (
    bicycle_with_hub_constant,
    directed_cycle,
    gaifman_graph,
    random_directed_graph,
)


def expand(structure, element):
    return structure.expand_with_constants({"c1": element})


def run_experiment():
    workloads = [
        ("(C_3, 0)", expand(directed_cycle(3), 0)),
        ("(C_5, 0)", expand(directed_cycle(5), 0)),
        ("(B_5, h)", bicycle_with_hub_constant(5)),
        ("(B_7, h)", bicycle_with_hub_constant(7)),
        ("(G(4,.5), 0)", expand(random_directed_graph(4, 0.5, 3), 0)),
        ("(G(5,.3), 0)", expand(random_directed_graph(5, 0.3, 4), 0)),
    ]
    rows = []
    for name, s in workloads:
        companion = plebian_companion(s)
        rho = plebian_vocabulary(s.vocabulary)
        rows.append((
            name,
            s.size(),
            companion.size(),
            gaifman_graph(s).num_edges(),
            gaifman_graph(companion).num_edges(),
            len(rho.relation_names),
            observation_6_1_holds(s),
        ))

    hom_rows = []
    counter_a, counter_b = observation_6_2_counterexample()
    pairs = [
        ("(C_6,0) -> (C_3,0)", expand(directed_cycle(6), 0),
         expand(directed_cycle(3), 0)),
        ("(C_3,0) -> (C_6,0)", expand(directed_cycle(3), 0),
         expand(directed_cycle(6), 0)),
        ("(B_5,h) -> (B_7,h)", bicycle_with_hub_constant(5),
         bicycle_with_hub_constant(7)),
        ("(G4,0) -> (G5,0)", expand(random_directed_graph(4, 0.5, 5), 0),
         expand(random_directed_graph(5, 0.5, 6), 0)),
        ("edge->loop [gap]", counter_a, counter_b),
    ]
    from repro.homomorphism import find_homomorphism

    for name, a, b in pairs:
        hom_exists = find_homomorphism(a, b) is not None
        hom_rows.append((
            name,
            hom_exists,
            observation_6_2_extension_direction(a, b),
            observation_6_2_restriction_direction(a, b),
        ))
    return rows, hom_rows


def bench_e12_plebian(benchmark):
    rows, hom_rows = run_once(benchmark, run_experiment)
    emit_table(
        "e12_companions",
        "E12a Obs 6.1: pA drops named elements, Gaifman subgraph",
        ["A", "|A|", "|pA|", "G(A) edges", "G(pA) edges", "|rho|",
         "obs 6.1"],
        rows,
    )
    emit_table(
        "e12_hom_transfer",
        "E12b Obs 6.2 by direction: pA->pB => A->B sound; converse has a gap",
        ["pair", "hom A->B", "extension dir", "restriction dir"],
        hom_rows,
    )
    assert all(row[6] for row in rows)
    assert all(row[2] == row[1] - 1 for row in rows)  # one constant dropped
    assert all(row[4] <= row[3] for row in rows)
    # the extension direction (pA->pB => A->B) is always verified
    assert all(row[2] for row in hom_rows)
    # REPRODUCTION FINDING: the restriction direction fails when a hom
    # maps unnamed elements onto constants — at minimum on the canonical
    # counterexample, sometimes on the cycle pair as well.
    gap_row = hom_rows[-1]
    assert gap_row[1] and not gap_row[3]
