"""E9 — Proposition 7.9 / Corollary 7.10: q(C_3, 2) is cyclicity.

Sweep paths, cycles, DAGs and random digraphs: Duplicator wins the
existential 2-pebble game on (C_3, B) exactly when B has a directed
cycle.  The non-FO shape: the query separates P_n from C_n for *every*
n — no fixed-size local test does that, which is the observable face of
Proposition 7.9(1).
"""

from _tables import emit_table, run_once

from repro.pebble import duplicator_wins, has_directed_cycle
from repro.structures import (
    directed_cycle,
    directed_path,
    path_with_random_chords,
    random_directed_graph,
)


def run_experiment():
    c3 = directed_cycle(3)
    rows = []
    workloads = []
    for n in (3, 5, 7):
        workloads.append((f"P_{n}", directed_path(n)))
        workloads.append((f"C_{n}", directed_cycle(n)))
    for n in (6, 8):
        workloads.append((f"DAG({n})", path_with_random_chords(n, 4, seed=n)))
    for seed in range(4):
        workloads.append(
            (f"G(5,.25)#{seed}", random_directed_graph(5, 0.25, seed))
        )
    for name, b in workloads:
        game = duplicator_wins(c3, b, 2)
        cyclic = has_directed_cycle(b)
        rows.append((name, b.size(), cyclic, game, game == cyclic))
    return rows


def bench_e09_pebble_acyclicity(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit_table(
        "e09_pebble_acyclicity",
        "E9  Prop 7.9: Duplicator wins (C3, B; 2 pebbles) <=> B cyclic",
        ["B", "|B|", "has cycle", "duplicator wins", "agree"],
        rows,
    )
    assert all(row[4] for row in rows)
    # the P_n / C_n separation holds at every size probed
    for n in (3, 5, 7):
        path_row = next(r for r in rows if r[0] == f"P_{n}")
        cycle_row = next(r for r in rows if r[0] == f"C_{n}")
        assert not path_row[3] and cycle_row[3]
