"""Datalog boundedness certificates (the Ajtai–Gurevich theorem, §7).

Scenario: a query optimizer wants to unfold recursive Datalog views into
plain SPJU views — legal exactly when the program is *bounded*, which by
Theorem 7.5 coincides with first-order definability.  Boundedness is
undecidable in general; this example shows the *sound certificate*
approach of the library:

* stage UCQs via rule unfolding (Theorem 7.1);
* a collapse ``Φ^{s+1} ≡ Φ^s`` decided by Sagiv–Yannakakis containment
  is a machine-checked proof of boundedness, and the stage-s UCQ *is*
  the rewritten view;
* for unbounded programs, rounds-to-fixpoint grow along a witness family.

Run:  python examples/datalog_boundedness.py
"""

from repro.datalog import (
    bounded_recursive_program,
    bounded_two_step_program,
    certificate_defines_query,
    evaluate_semi_naive,
    find_boundedness_certificate,
    nonlinear_transitive_closure_program,
    stage_ucqs,
    transitive_closure_program,
    unboundedness_evidence,
)
from repro.structures import directed_path, random_directed_graph


def inspect(name, program, predicate):
    print(f"\n-- program {name!r} ({program.variable_count()} variables)")
    for rule in program.rules:
        print(f"     {rule}")

    stages = stage_ucqs(program, 3)
    print("   stage sizes (disjuncts after minimization):",
          [len(stages[m][predicate]) for m in range(4)])

    certificate = find_boundedness_certificate(program, predicate,
                                               max_stage=4)
    if certificate is None:
        print("   no collapse up to stage 4 -> unbounded (evidence below)")
        sizes = [3, 6, 9, 12]
        rounds = unboundedness_evidence(program, directed_path, sizes)
        print(f"   rounds to fixpoint on P_n, n={sizes}: {rounds}")
        return

    print(f"   BOUNDED: stage {certificate.stage + 1} == stage "
          f"{certificate.stage} (Sagiv-Yannakakis certificate)")
    print("   the program IS this SPJU view:")
    for line in str(certificate.query).splitlines():
        print(f"     {line}")

    samples = [random_directed_graph(4, 0.4, s) for s in range(6)]
    ok = certificate_defines_query(certificate, program, samples)
    print(f"   certificate cross-checked against the fixpoint engine on "
          f"{len(samples)} structures: {ok}")


def main() -> None:
    inspect("two-step reachability", bounded_two_step_program(), "R")
    inspect("symmetric pairs (recursive but bounded)",
            bounded_recursive_program(), "P")
    inspect("transitive closure (linear)",
            transitive_closure_program(), "T")
    inspect("transitive closure (nonlinear)",
            nonlinear_transitive_closure_program(), "T")

    # boundedness is about *uniform* stage counts, not single instances:
    print("\n-- nonlinear TC reaches fixpoints fast but is still unbounded:")
    program = nonlinear_transitive_closure_program()
    for n in (8, 16, 32):
        result = evaluate_semi_naive(program, directed_path(n))
        print(f"   P_{n}: {result.rounds} rounds, "
              f"{len(result.relations['T'])} tuples")


if __name__ == "__main__":
    main()
