"""Existential pebble games and constraint satisfaction (Section 7.2).

Scenario: a CSP solver wants a cheap relaxation of "is there a
homomorphism A -> B?".  The existential k-pebble game is exactly that
relaxation (Kolaitis–Vardi): Duplicator's win is decidable in
polynomial time for fixed k, is implied by homomorphism existence, and
— when core(A) has treewidth < k (Dalmau–Kolaitis–Vardi, cited in
Section 7.2) — coincides with it.

The example also reproduces Proposition 7.9: the pebble query
q(C_3, 2) *is* graph cyclicity, a non-first-order property.

Run:  python examples/pebble_games_csp.py
"""

from repro.homomorphism import compute_core, has_homomorphism
from repro.pebble import (
    ExistentialPebbleGame,
    duplicator_wins,
    has_directed_cycle,
)
from repro.structures import (
    directed_cycle,
    directed_path,
    random_directed_graph,
    structure_treewidth,
)


def main() -> None:
    # ------------------------------------------------------------------
    # The game as a CSP relaxation.
    # ------------------------------------------------------------------
    print("== pebble game vs homomorphism (k = 3) ==")
    print(f"{'A':>6} {'B':>9} {'tw(core A)':>11} {'game':>6} {'hom':>6}")
    sources = [("C3", directed_cycle(3)), ("C4", directed_cycle(4)),
               ("P4", directed_path(4))]
    targets = [("C3", directed_cycle(3)), ("C5", directed_cycle(5)),
               ("G(5)", random_directed_graph(5, 0.3, 11))]
    for source_name, a in sources:
        core_tw = structure_treewidth(compute_core(a))
        for target_name, b in targets:
            game = duplicator_wins(a, b, 3)
            hom = has_homomorphism(a, b)
            print(f"{source_name:>6} {target_name:>9} {core_tw:>11} "
                  f"{str(game):>6} {str(hom):>6}")
    print("core treewidth < 3 on every row => game == hom "
          "(Dalmau-Kolaitis-Vardi)")

    # ------------------------------------------------------------------
    # Proposition 7.9: q(C3, 2) = cyclicity.
    # ------------------------------------------------------------------
    print("\n== q(C3, 2) is cyclicity (Proposition 7.9) ==")
    workloads = [(f"P_{n}", directed_path(n)) for n in (3, 5, 7)]
    workloads += [(f"C_{n}", directed_cycle(n)) for n in (3, 5, 7)]
    workloads += [(f"G(5,.25)#{s}", random_directed_graph(5, 0.25, s))
                  for s in range(3)]
    for name, b in workloads:
        game = duplicator_wins(directed_cycle(3), b, 2)
        cycle = has_directed_cycle(b)
        print(f"   {name:<12} duplicator={str(game):<6} "
              f"has_cycle={str(cycle):<6} agree={game == cycle}")
    print("cyclicity is not FO-definable, so q(C3, 2) is not FO —")
    print("yet with 2 pebbles it is decided in polynomial time.")

    # ------------------------------------------------------------------
    # Playing the winning strategy interactively.
    # ------------------------------------------------------------------
    print("\n== playing Duplicator's strategy on (C3, C4), k = 2 ==")
    game = ExistentialPebbleGame(directed_cycle(3), directed_cycle(4), 2)
    position = frozenset()
    trace = []
    # Spoiler walks around the triangle, sliding pebbles forever; we
    # show the first few rounds of Duplicator's answers.
    pebbled = {}
    for step in range(6):
        spoiler = step % 3
        if len(pebbled) == 2:  # slide: lift the oldest pebble
            oldest = sorted(pebbled)[0] if spoiler not in pebbled else spoiler
            victim = next(x for x in pebbled if x != (step - 1) % 3)
            position = position - {(victim, pebbled.pop(victim))}
        answer = game.extend(position, spoiler)
        position = position | {(spoiler, answer)}
        pebbled[spoiler] = answer
        trace.append(f"Spoiler -> {spoiler}, Duplicator -> {answer}")
    for line in trace:
        print(f"   {line}")
    print("every position stayed a partial homomorphism — Duplicator "
          "survives forever because C4 has a cycle to walk.")


if __name__ == "__main__":
    main()
