"""Quickstart: a tour of the repro public API.

Covers the objects of Section 2 of the paper: structures, homomorphisms,
cores, canonical conjunctive queries (Chandra–Merlin), UCQ rewriting of
an existential-positive sentence, and a first Datalog program.

Run:  python examples/quickstart.py
"""

from repro.cq import canonical_query, chandra_merlin_check, ucq_from_formula
from repro.datalog import evaluate_semi_naive, transitive_closure_program
from repro.homomorphism import compute_core, find_homomorphism, is_core
from repro.logic import parse_formula, satisfies
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    directed_cycle,
    directed_path,
    grid_structure,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Structures: a vocabulary is a schema; a structure is a database.
    # ------------------------------------------------------------------
    print("== structures ==")
    triangle = directed_cycle(3)
    path = directed_path(4)
    print(f"triangle: {triangle}")
    print(f"path:     {path}")

    # ------------------------------------------------------------------
    # 2. Homomorphisms (Section 2.1).
    # ------------------------------------------------------------------
    print("\n== homomorphisms ==")
    hom = find_homomorphism(path, triangle)
    print(f"P4 -> C3: {hom}")
    print(f"C3 -> P4: {find_homomorphism(triangle, path)}")

    # ------------------------------------------------------------------
    # 3. Cores (Sections 1 and 6.2): every structure retracts onto a
    #    unique minimal substructure.
    # ------------------------------------------------------------------
    print("\n== cores ==")
    grid = grid_structure(3, 3)
    core = compute_core(grid)
    print(f"grid 3x3 (bipartite) has core of size {core.size()} "
          f"(a single symmetric edge); is_core: {is_core(core)}")

    # ------------------------------------------------------------------
    # 4. Chandra–Merlin (Theorem 2.1): canonical queries tie conjunctive
    #    queries to homomorphisms.
    # ------------------------------------------------------------------
    print("\n== Chandra-Merlin ==")
    phi = canonical_query(triangle)
    print(f"phi_C3 = {phi}")
    print(f"C6 |= phi_C3: {phi.holds_in(directed_cycle(6))}  "
          "(no hom C3 -> C6)")
    print(f"three-way check on (P4, C3): {chandra_merlin_check(path, triangle)}")

    # ------------------------------------------------------------------
    # 5. Existential-positive sentences rewrite to unions of CQs
    #    (Section 1's normal form).
    # ------------------------------------------------------------------
    print("\n== SPJU normal form ==")
    sentence = parse_formula(
        "exists x. (E(x, x) | exists y. (E(x, y) & E(y, x)))",
        GRAPH_VOCABULARY,
    )
    ucq = ucq_from_formula(sentence, GRAPH_VOCABULARY)
    print(f"EP sentence -> UCQ with {len(ucq)} disjuncts:")
    print(f"  {ucq}")
    two_cycle = Structure(GRAPH_VOCABULARY, [0, 1], {"E": [(0, 1), (1, 0)]})
    print(f"holds in a 2-cycle: {ucq.holds_in(two_cycle)} "
          f"(matches FO: {satisfies(two_cycle, sentence)})")

    # ------------------------------------------------------------------
    # 6. Datalog (Section 2.3): recursion via least fixed points.
    # ------------------------------------------------------------------
    print("\n== Datalog ==")
    tc = transitive_closure_program()
    print(tc)
    result = evaluate_semi_naive(tc, directed_path(5))
    print(f"TC of P5 has {len(result.relations['T'])} pairs, "
          f"fixed point after {result.rounds} rounds")


if __name__ == "__main__":
    main()
