"""The classical preservation landscape, mapped empirically (Sections 1, 8).

Scenario: given an arbitrary FO view definition, decide *which* syntactic
normal form a query engine may rewrite it into.  Section 1 orders the
candidates:

    preserved under homomorphisms  =>  SPJU (UCQ)        [the paper]
    preserved under extensions     =>  ∃-sentence        [Łoś–Tarski]
    monotone                       =>  positive sentence [Lyndon]

This example classifies a battery of queries by sampled semantic checks,
runs the matching rewriting pipeline for the first two rows, and shows
the Section 7.3 boundary: a Datalog(~EDB) view that no preservation-based
rewriting can handle.

Run:  python examples/preservation_landscape.py
"""

from repro.core import (
    bounded_treewidth_class,
    extension_closure_sample,
    rewrite_to_existential,
    rewrite_to_ucq,
    section_1_implications,
)
from repro.datalog import (
    asymmetric_edge_program,
    evaluate_semipositive,
    semipositive_breaks_hom_preservation,
)
from repro.logic import parse_formula
from repro.structures import (
    GRAPH_VOCABULARY,
    directed_cycle,
    directed_path,
    random_directed_graph,
    single_loop,
)

QUERIES = [
    ("mutual pair", "exists x y. E(x, y) & E(y, x)"),
    ("asymmetric edge", "exists x y. E(x, y) & ~E(y, x)"),
    ("loop-free", "~(exists x. E(x, x))"),
    ("total out-degree", "forall x. exists y. E(x, y)"),
]


def main() -> None:
    samples = extension_closure_sample(
        [random_directed_graph(3, 0.4, s) for s in range(8)]
        + [directed_cycle(3), directed_path(3), single_loop()]
    )

    print("== classification (sampled) ==")
    print(f"{'query':<18} {'hom':>5} {'ext':>5} {'mono':>5}   rewrite target")
    reports = {}
    for name, text in QUERIES:
        query = parse_formula(text, GRAPH_VOCABULARY)
        report = section_1_implications(query, samples)
        reports[name] = report
        if report["homomorphism"]:
            target = "union of conjunctive queries (this paper)"
        elif report["extensions"]:
            target = "existential sentence (Łoś–Tarski)"
        elif report["monotone"]:
            target = "positive sentence (Lyndon)"
        else:
            target = "none of the classical normal forms"
        print(f"{name:<18} {str(report['homomorphism']):>5} "
              f"{str(report['extensions']):>5} {str(report['monotone']):>5}"
              f"   {target}")

    print("\n== rewriting the hom-preserved query (Theorem 4.4 pipeline) ==")
    query = parse_formula(QUERIES[0][1], GRAPH_VOCABULARY)
    result = rewrite_to_ucq(
        query, GRAPH_VOCABULARY,
        structure_class=bounded_treewidth_class(3),
        max_size=2,
        verification_sample=[
            s for s in samples if bounded_treewidth_class(3).contains(s)
        ],
    )
    print(f"   {result.summary()}")
    print(f"   SPJU: {result.ucq}")

    print("\n== rewriting the extension-preserved query (Łoś–Tarski) ==")
    query = parse_formula(QUERIES[1][1], GRAPH_VOCABULARY)
    lt = rewrite_to_existential(
        query, GRAPH_VOCABULARY, max_size=2, verification_sample=samples
    )
    print(f"   {len(lt.minimal_models)} minimal induced models, verified on "
          f"{lt.verified_on} structures")
    print(f"   ∃-sentence has "
          f"{str(lt.sentence).count('|') + 1} diagram disjuncts")

    print("\n== the Section 7.3 boundary ==")
    program = asymmetric_edge_program()
    print("   Datalog(~EDB) view:  Hit(x) <- E(x, y), ~E(y, x)")
    for name, s in (("P2", directed_path(2)), ("loop", single_loop())):
        hits = sorted(evaluate_semipositive(program, s)["Hit"])
        print(f"   on {name:<5} Hit = {hits}")
    print(f"   collapse P2 -> loop is a homomorphism, so the view is not "
          f"hom-preserved: {semipositive_breaks_hom_preservation()}")
    print("   => no UCQ rewriting exists; the paper's machinery stops "
          "exactly here.")


if __name__ == "__main__":
    main()
