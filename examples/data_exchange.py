"""Data exchange: getting to the core (the intro's cited application).

Scenario: an HR system migrates an employee table into a new schema with
separate assignment and management relations.  The schema mapping leaves
the manager unspecified (an existential), so the chase invents labeled
nulls.  The canonical universal solution over-materializes — one
"unknown manager" per employee even within the same department — and the
**core** (Fagin–Kolaitis–Popa) is the smallest universal solution.

This runs entirely on the library's own machinery: the chase builds
structures, and `core_solution` is the paper's core computation with
source constants frozen.

Run:  python examples/data_exchange.py
"""

from repro.dataexchange import (
    chase,
    core_solution,
    is_null,
    is_solution,
    is_universal_solution,
    parse_mapping,
    solution_homomorphism,
)
from repro.structures import Structure, Vocabulary


def pretty(structure, title):
    print(f"   {title}: {structure.size()} elements, "
          f"{structure.num_facts()} facts")
    for name, tup in structure.facts():
        rendered = tuple(
            "⊥" + str(e[1]) if is_null(e) else e for e in tup
        )
        print(f"     {name}{rendered}")


def main() -> None:
    source_schema = Vocabulary({"Emp": 2})            # Emp(name, dept)
    target_schema = Vocabulary({"Works": 2, "DeptMgr": 2})
    mapping = parse_mapping(
        "Emp(e, d) -> exists m. Works(e, d) & DeptMgr(d, m).",
        source_schema, target_schema,
    )
    print("schema mapping:")
    for tgd in mapping.tgds:
        print(f"   {tgd}")

    source = Structure(
        source_schema,
        ["alice", "bob", "carol", "dave", "eng", "ops"],
        {"Emp": [("alice", "eng"), ("bob", "eng"), ("carol", "eng"),
                 ("dave", "ops")]},
    )
    print("\nsource instance:")
    for name, tup in source.facts():
        print(f"   {name}{tup}")

    print("\n== the chase (canonical universal solution) ==")
    canonical = chase(mapping, source)
    pretty(canonical, "canonical")
    print(f"   solution: {is_solution(mapping, source, canonical)}")
    nulls = sum(1 for e in canonical.universe if is_null(e))
    print(f"   labeled nulls invented: {nulls} "
          "(one 'unknown manager' per employee!)")

    print("\n== the core solution ==")
    report = core_solution(mapping, source)
    pretty(report.core, "core")
    saved_elements, saved_facts = report.shrinkage()
    print(f"   shrinkage: {saved_elements} elements, {saved_facts} facts "
          "(eng's three manager nulls merge into one)")
    print(f"   core is a solution:   "
          f"{is_solution(mapping, source, report.core)}")
    print(f"   core is universal:    "
          f"{is_universal_solution(mapping, source, report.core, [canonical])}")
    hom = solution_homomorphism(canonical, report.core)
    print(f"   canonical -> core homomorphism exists: {hom is not None} "
          "(nulls move, constants stay)")

    print("\nThis is why the paper's introduction lists data exchange "
          "among the applications of cores:")
    print("the smallest universal solution IS the core of the chase result.")


if __name__ == "__main__":
    main()
