"""The paper's main theorem in action: FO -> UCQ rewriting on a class.

Scenario: a data-integration layer receives arbitrary first-order
queries, but its execution engine only supports select-project-join-
union (SPJU) plans.  For queries *preserved under homomorphisms*, the
homomorphism-preservation theorem (Theorem 4.4 on bounded-treewidth
classes) guarantees an equivalent SPJU query exists — and Section 8
notes the proof is effective.  This example runs that effective
procedure end to end:

1. sample the class and check preservation (a counterexample aborts);
2. enumerate minimal models up to the size cap;
3. emit the union of their canonical conjunctive queries;
4. verify equivalence on a held-out sample;
5. show a non-preserved query being rejected with a witness.

Run:  python examples/query_rewriting.py
"""

from repro.core import (
    bounded_treewidth_class,
    check_preserved_under_homomorphisms,
    rewrite_to_ucq,
)
from repro.logic import parse_formula
from repro.structures import (
    GRAPH_VOCABULARY,
    directed_cycle,
    directed_path,
    random_directed_graph,
    single_loop,
)


def sample_class(cls, count=14):
    """Members of the class drawn from random digraphs + classics."""
    pool = [random_directed_graph(4, 0.35, seed) for seed in range(count)]
    pool += [directed_cycle(3), directed_path(4), single_loop(),
             directed_cycle(4)]
    return [s for s in pool if cls.contains(s)]


def rewrite(name, text, cap, cls, sample):
    query = parse_formula(text, GRAPH_VOCABULARY)
    print(f"\n-- query {name!r}: {text}")

    violation = check_preserved_under_homomorphisms(query, sample)
    if violation is not None:
        print("   NOT preserved under homomorphisms; counterexample:")
        print(f"     q({violation.source}) = 1 --h--> "
              f"q({violation.target}) = 0")
        print("   (the preservation theorem does not apply)")
        return

    result = rewrite_to_ucq(
        query, GRAPH_VOCABULARY, structure_class=cls, max_size=cap,
        verification_sample=sample,
    )
    print(f"   preserved (sampled); {result.summary()}")
    print("   minimal models:")
    for model in result.minimal_models:
        print(f"     {model}  facts: "
              f"{sorted(str(f) + str(t) for f, t in model.facts())}")
    print("   equivalent SPJU (union of conjunctive queries):")
    for line in str(result.ucq).splitlines():
        print(f"     {line}")


def main() -> None:
    cls = bounded_treewidth_class(3)
    print(f"class: {cls.name}")
    sample = sample_class(cls)
    print(f"sampled {len(sample)} members for checking/verification")

    rewrite("has-edge", "exists x y. E(x, y)", 2, cls, sample)
    rewrite("mutual-pair",
            "exists x y. E(x, y) & E(y, x)", 2, cls, sample)
    rewrite("closed-walk-3",
            "exists x y z. E(x, y) & E(y, z) & E(z, x)", 3, cls, sample)
    rewrite("branching",
            "exists x y z. E(x, y) & E(x, z)", 3, cls, sample)

    # A query that mentions negation but is still preserved — the
    # interesting case the theorem covers: syntax is not EP, semantics is.
    rewrite("edge-and-not-nothing",
            "exists x y. E(x, y) & ~false", 2, cls, sample)

    # Non-preserved queries are detected and rejected.
    rewrite("total-out-degree", "forall x. exists y. E(x, y)", 3, cls, sample)
    rewrite("loop-free", "~(exists x. E(x, x))", 2, cls, sample)


if __name__ == "__main__":
    main()
