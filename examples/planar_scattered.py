"""The combinatorial engine: scattered sets via Lemmas 3.4, 4.2, 5.3.

Scenario: the paper's preservation proofs all reduce to one statement —
"every large structure in the class contains a big d-scattered set after
deleting a few vertices" (Corollary 3.3).  This example runs the three
constructions on concrete graphs, prints the actual witnesses (removal
set B, scattered set S), and shows the class boundaries: cliques defeat
them all, and the degree-3 expansion of K_6 shows bounded degree does
not imply an excluded minor (end of Section 5).

Run:  python examples/planar_scattered.py
"""

from repro.core import (
    lemma_3_4_witness,
    lemma_4_2_witness,
    theorem_5_3_witness,
)
from repro.graphtheory import (
    complete_graph,
    cycle_graph,
    degree3_clique_expansion,
    degree3_clique_expansion_model,
    grid_graph,
    has_clique_minor,
    is_planar,
    star_graph,
    treewidth_exact,
    verify_minor_model,
)


def show(title, witness_text):
    print(f"\n-- {title}")
    print(witness_text)


def main() -> None:
    # ------------------------------------------------------------------
    # Bounded degree: greedy ball packing (Lemma 3.4), zero removals.
    # ------------------------------------------------------------------
    cycle = cycle_graph(36)
    witness = lemma_3_4_witness(cycle, k=2, d=2, m=6)
    show(
        "Lemma 3.4 on C_36 (degree 2), d=2, m=6",
        f"   scattered set (no removals): {list(witness.scattered)}\n"
        f"   bound N = m*k^d = {witness.bound}; |V| = {witness.graph_size}",
    )

    # ------------------------------------------------------------------
    # Bounded treewidth: the star needs its hub removed (Section 4's
    # motivating example), via the actual proof cases.
    # ------------------------------------------------------------------
    star = star_graph(25)
    witness = lemma_4_2_witness(star, k=2, d=2, m=6)
    show(
        "Lemma 4.2 on S_25 (treewidth 1), d=2, m=6",
        f"   proof case: {witness.method}\n"
        f"   removed B = {sorted(witness.removed, key=repr)} (<= k = 2)\n"
        f"   scattered S = {list(witness.scattered)}",
    )

    # ------------------------------------------------------------------
    # Excluded minor: planar grids through the staged Theorem 5.3.
    # ------------------------------------------------------------------
    grid = grid_graph(6, 6)
    from repro.graphtheory import treewidth_upper_bound

    width_bound, _ = treewidth_upper_bound(grid)
    print(f"\ngrid 6x6: planar={is_planar(grid)}, "
          f"treewidth<={width_bound} (exact B&B is for smaller graphs), "
          f"K5-minor={has_clique_minor(grid, 5)}")
    witness = theorem_5_3_witness(grid, k=5, d=1, m=4)
    show(
        "Theorem 5.3 on grid 6x6 (K5-minor-free), d=1, m=4",
        f"   removed Z = {sorted(witness.removed, key=repr)} (< k-1 = 4)\n"
        f"   scattered S = {list(witness.scattered)[:8]}"
        f"{' ...' if len(witness.scattered) > 8 else ''}\n"
        f"   per-stage sizes: {witness.stage_sizes}",
    )

    # ------------------------------------------------------------------
    # Boundaries of the theory.
    # ------------------------------------------------------------------
    print("\n-- class boundaries")
    k6 = complete_graph(6)
    print(f"   K6: Lemma 4.2 inapplicable (treewidth {treewidth_exact(k6)}),"
          f" Theorem 5.3 witness: {theorem_5_3_witness(k6, 4, 1, 2)}")

    expansion = degree3_clique_expansion(6)
    model = degree3_clique_expansion_model(6)
    print(f"   degree-3 expansion of K6: max degree "
          f"{expansion.max_degree()}, K6 minor model verifies: "
          f"{verify_minor_model(expansion, complete_graph(6), model)}")
    print("   => bounded degree does NOT imply an excluded minor "
          "(Theorem 3.5 is not a special case of Theorem 5.4)")


if __name__ == "__main__":
    main()
